#include "src/common/thread_pool.h"

#include <algorithm>
#include <string>

#include "src/common/trace.h"

namespace loggrep {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] {
      Tracer::Global().SetCurrentThreadName("pool-worker-" +
                                            std::to_string(i));
      WorkerLoop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  // Capture the submitting thread's innermost span so spans the task opens
  // on a worker nest under it in exported traces (cross-thread stitching).
  const uint64_t parent = Tracer::CurrentSpanId();
  std::function<void()> wrapped;
  if (parent != 0) {
    wrapped = [parent, task = std::move(task)] {
      const ScopedTraceParent stitch(parent);
      task();
    };
  } else {
    wrapped = std::move(task);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(wrapped));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        return;  // shutdown with a drained queue
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

}  // namespace loggrep
