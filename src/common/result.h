// Lightweight Status / Result types for error propagation without exceptions.
//
// The library is built exception-free (Google style): fallible operations
// return Status or Result<T>. Both carry a StatusCode and a human-readable
// message suitable for surfacing to a CLI user.
#ifndef SRC_COMMON_RESULT_H_
#define SRC_COMMON_RESULT_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace loggrep {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller passed something malformed (e.g. bad query syntax)
  kCorruptData,       // serialized CapsuleBox / compressed stream failed validation
  kNotFound,          // requested entity (group, capsule, file) absent
  kInternal,          // invariant violation inside the library
  kUnimplemented,
  // Storage-layer failure taxonomy (see src/store/storage_env.h). The
  // distinction matters to the retry policy: kUnavailable and kIOError are
  // retryable (the backend may heal); kNotFound and kPermissionDenied are
  // deterministic answers that retries cannot change.
  kUnavailable,        // transient backend failure (timeout, throttling, EIO
                       // that a later attempt may not see)
  kPermissionDenied,   // the entity exists but the caller may not touch it
  kIOError,            // hard device / backend error on an existing entity
};

// Short stable name for a code ("OK", "INVALID_ARGUMENT", ...).
const char* StatusCodeName(StatusCode code);

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != StatusCode::kOk && "use OkStatus() for success");
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "CORRUPT_DATA: truncated capsule directory".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status(); }

inline Status InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status CorruptData(std::string msg) {
  return Status(StatusCode::kCorruptData, std::move(msg));
}
inline Status NotFound(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
inline Status Internal(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}
inline Status Unimplemented(std::string msg) {
  return Status(StatusCode::kUnimplemented, std::move(msg));
}
inline Status Unavailable(std::string msg) {
  return Status(StatusCode::kUnavailable, std::move(msg));
}
inline Status PermissionDenied(std::string msg) {
  return Status(StatusCode::kPermissionDenied, std::move(msg));
}
inline Status IOError(std::string msg) {
  return Status(StatusCode::kIOError, std::move(msg));
}

// Result<T>: either a value or an error Status. Accessors assert on misuse.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(data_).ok() && "Result from OK status has no value");
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  Status status() const {
    if (ok()) {
      return OkStatus();
    }
    return std::get<Status>(data_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

// Propagates a non-OK status out of the enclosing function.
#define LOGGREP_RETURN_IF_ERROR(expr)          \
  do {                                         \
    ::loggrep::Status _st = (expr);            \
    if (!_st.ok()) {                           \
      return _st;                              \
    }                                          \
  } while (0)

}  // namespace loggrep

#endif  // SRC_COMMON_RESULT_H_
