#include "src/common/charclass.h"

#include <array>
#include <bit>

namespace loggrep {
namespace {

constexpr std::array<TypeMask, 256> BuildTable() {
  std::array<TypeMask, 256> table{};
  for (int i = 0; i < 256; ++i) {
    const char c = static_cast<char>(i);
    if (c >= '0' && c <= '9') {
      table[i] = kMaskDigit;
    } else if (c >= 'a' && c <= 'f') {
      table[i] = kMaskHexLower;
    } else if (c >= 'A' && c <= 'F') {
      table[i] = kMaskHexUpper;
    } else if (c >= 'g' && c <= 'z') {
      table[i] = kMaskAlphaLower;
    } else if (c >= 'G' && c <= 'Z') {
      table[i] = kMaskAlphaUpper;
    } else {
      table[i] = kMaskOther;
    }
  }
  return table;
}

constexpr std::array<TypeMask, 256> kTable = BuildTable();

}  // namespace

TypeMask CharClassOf(char c) { return kTable[static_cast<unsigned char>(c)]; }

TypeMask TypeMaskOf(std::string_view s) {
  TypeMask mask = 0;
  for (char c : s) {
    mask |= kTable[static_cast<unsigned char>(c)];
    if (mask == kMaskAll) {
      break;
    }
  }
  return mask;
}

int MaskTypeCount(TypeMask mask) { return std::popcount(static_cast<unsigned>(mask)); }

std::string MaskToString(TypeMask mask) {
  static constexpr const char* kNames[6] = {"0-9", "a-f", "A-F", "g-z", "G-Z", "other"};
  std::string out;
  for (int i = 0; i < 6; ++i) {
    if (mask & (1u << i)) {
      if (!out.empty()) {
        out += '|';
      }
      out += kNames[i];
    }
  }
  return out;
}

}  // namespace loggrep
