#include "src/common/charclass.h"

#include <array>
#include <bit>

#include "src/common/simd.h"

#if defined(__x86_64__) || defined(__i386__)
#define LOGGREP_CHARCLASS_X86 1
#include <immintrin.h>
#else
#define LOGGREP_CHARCLASS_X86 0
#endif

namespace loggrep {
namespace {

constexpr std::array<TypeMask, 256> BuildTable() {
  std::array<TypeMask, 256> table{};
  for (int i = 0; i < 256; ++i) {
    const char c = static_cast<char>(i);
    if (c >= '0' && c <= '9') {
      table[i] = kMaskDigit;
    } else if (c >= 'a' && c <= 'f') {
      table[i] = kMaskHexLower;
    } else if (c >= 'A' && c <= 'F') {
      table[i] = kMaskHexUpper;
    } else if (c >= 'g' && c <= 'z') {
      table[i] = kMaskAlphaLower;
    } else if (c >= 'G' && c <= 'Z') {
      table[i] = kMaskAlphaUpper;
    } else {
      table[i] = kMaskOther;
    }
  }
  return table;
}

constexpr std::array<TypeMask, 256> kTable = BuildTable();

TypeMask TypeMaskOfScalar(const char* p, size_t n, TypeMask mask) {
  for (size_t i = 0; i < n; ++i) {
    mask |= kTable[static_cast<unsigned char>(p[i])];
    if (mask == kMaskAll) {
      break;
    }
  }
  return mask;
}

#if LOGGREP_CHARCLASS_X86

// The five character ranges of the §4.3 type number, as (lo, hi, bit).
// Everything outside all five is kMaskOther. All range bounds are < 0x80, so
// signed byte compares classify bytes >= 0x80 as "other" for free (they
// compare negative and fall outside every range).
struct ClassRange {
  char lo;
  char hi;
  TypeMask bit;
};
constexpr ClassRange kRanges[5] = {
    {'0', '9', kMaskDigit},      {'a', 'f', kMaskHexLower},
    {'A', 'F', kMaskHexUpper},   {'g', 'z', kMaskAlphaLower},
    {'G', 'Z', kMaskAlphaUpper},
};

TypeMask TypeMaskOfSse2(const char* p, size_t n, TypeMask mask) {
  size_t i = 0;
  for (; i + 16 <= n && mask != kMaskAll; i += 16) {
    const __m128i c = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i));
    __m128i in_any = _mm_setzero_si128();
    for (const ClassRange& r : kRanges) {
      const __m128i ge = _mm_cmpgt_epi8(c, _mm_set1_epi8(r.lo - 1));
      const __m128i le = _mm_cmpgt_epi8(_mm_set1_epi8(r.hi + 1), c);
      const __m128i in = _mm_and_si128(ge, le);
      if (_mm_movemask_epi8(in) != 0) {
        mask |= r.bit;
      }
      in_any = _mm_or_si128(in_any, in);
    }
    if (_mm_movemask_epi8(in_any) != 0xFFFF) {
      mask |= kMaskOther;
    }
  }
  return TypeMaskOfScalar(p + i, n - i, mask);
}

__attribute__((target("avx2"))) TypeMask TypeMaskOfAvx2(const char* p, size_t n,
                                                        TypeMask mask) {
  size_t i = 0;
  for (; i + 32 <= n && mask != kMaskAll; i += 32) {
    const __m256i c =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i));
    __m256i in_any = _mm256_setzero_si256();
    for (const ClassRange& r : kRanges) {
      const __m256i ge = _mm256_cmpgt_epi8(c, _mm256_set1_epi8(r.lo - 1));
      const __m256i le = _mm256_cmpgt_epi8(_mm256_set1_epi8(r.hi + 1), c);
      const __m256i in = _mm256_and_si256(ge, le);
      if (_mm256_movemask_epi8(in) != 0) {
        mask |= r.bit;
      }
      in_any = _mm256_or_si256(in_any, in);
    }
    if (_mm256_movemask_epi8(in_any) != -1) {
      mask |= kMaskOther;
    }
  }
  return TypeMaskOfSse2(p + i, n - i, mask);
}

#endif  // LOGGREP_CHARCLASS_X86

}  // namespace

TypeMask CharClassOf(char c) { return kTable[static_cast<unsigned char>(c)]; }

TypeMask TypeMaskOf(std::string_view s) {
#if LOGGREP_CHARCLASS_X86
  if (s.size() >= 16) {
    switch (ActiveSimdTier()) {
      case SimdTier::kAvx2:
        return TypeMaskOfAvx2(s.data(), s.size(), 0);
      case SimdTier::kSse2:
        return TypeMaskOfSse2(s.data(), s.size(), 0);
      case SimdTier::kScalar:
        break;
    }
  }
#endif
  return TypeMaskOfScalar(s.data(), s.size(), 0);
}

int MaskTypeCount(TypeMask mask) { return std::popcount(static_cast<unsigned>(mask)); }

std::string MaskToString(TypeMask mask) {
  static constexpr const char* kNames[6] = {"0-9", "a-f", "A-F", "g-z", "G-Z", "other"};
  std::string out;
  for (int i = 0; i < 6; ++i) {
    if (mask & (1u << i)) {
      if (!out.empty()) {
        out += '|';
      }
      out += kNames[i];
    }
  }
  return out;
}

}  // namespace loggrep
