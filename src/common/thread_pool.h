// Minimal fixed-size thread pool.
//
// The paper normalizes all measurements to one CPU but notes that "both
// compression and query execution can easily be parallelized" (§6) and lists
// scale-out as future work (§8); the archive layer uses this pool to fan
// block-level work across cores.
#ifndef SRC_COMMON_THREAD_POOL_H_
#define SRC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace loggrep {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task; tasks may run in any order.
  void Submit(std::function<void()> task);

  // Blocks until every submitted task has finished.
  void Wait();

  size_t size() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::queue<std::function<void()>> tasks_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace loggrep

#endif  // SRC_COMMON_THREAD_POOL_H_
