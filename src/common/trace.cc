#include "src/common/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

namespace loggrep {
namespace {

// Thread-local span context. A single slot suffices because spans are
// strictly scoped: each TraceSpan saves the previous value and restores it
// on destruction (LIFO).
thread_local uint64_t tls_current_span = 0;
thread_local uint32_t tls_thread_id = 0;
thread_local bool tls_thread_id_set = false;

uint64_t SteadyNowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void AppendJsonEscaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

// Microsecond timestamp with sub-microsecond fraction, as Chrome expects.
void AppendMicros(std::string& out, uint64_t nanos) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(nanos / 1000),
                static_cast<unsigned long long>(nanos % 1000));
  out += buf;
}

std::string g_trace_out_path;  // set once by Global() before atexit

void DumpGlobalTraceAtExit() {
  if (!g_trace_out_path.empty()) {
    Tracer::Global().WriteChromeJson(g_trace_out_path);
  }
}

}  // namespace

Tracer::Tracer(size_t capacity) : epoch_ns_(SteadyNowNanos()) {
  ring_.resize(std::max<size_t>(1, capacity));
}

Tracer& Tracer::Global() {
  static Tracer* tracer = [] {
    auto* t = new Tracer();
    const char* on = std::getenv("LOGGREP_TRACE");
    if (on != nullptr && on[0] != '\0' && std::strcmp(on, "0") != 0) {
      t->Enable(true);
    }
    const char* out = std::getenv("LOGGREP_TRACE_OUT");
    if (out != nullptr && out[0] != '\0') {
      t->Enable(true);
      g_trace_out_path = out;
      std::atexit(DumpGlobalTraceAtExit);
    }
    return t;
  }();
  return *tracer;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  head_ = 0;
  count_ = 0;
  dropped_ = 0;
}

size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

uint64_t Tracer::NowNanos() const { return SteadyNowNanos() - epoch_ns_; }

uint64_t Tracer::NextSpanId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

uint64_t Tracer::CurrentSpanId() { return tls_current_span; }

uint32_t Tracer::CurrentThreadId() {
  if (!tls_thread_id_set) {
    static std::atomic<uint32_t> next{0};
    tls_thread_id = next.fetch_add(1, std::memory_order_relaxed);
    tls_thread_id_set = true;
  }
  return tls_thread_id;
}

void Tracer::SetCurrentThreadName(std::string name) {
  const uint32_t tid = CurrentThreadId();
  std::lock_guard<std::mutex> lock(mu_);
  thread_names_[tid] = std::move(name);
}

void Tracer::Record(const TraceEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_[head_] = event;
  head_ = (head_ + 1) % ring_.size();
  if (count_ < ring_.size()) {
    ++count_;
  } else {
    ++dropped_;  // overwrote the oldest event
  }
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(count_);
  const size_t cap = ring_.size();
  const size_t first = (head_ + cap - count_) % cap;
  for (size_t i = 0; i < count_; ++i) {
    out.push_back(ring_[(first + i) % cap]);
  }
  return out;
}

std::string Tracer::ExportChromeJson() const {
  std::vector<TraceEvent> events;
  std::unordered_map<uint32_t, std::string> names;
  {
    std::lock_guard<std::mutex> lock(mu_);
    events.reserve(count_);
    const size_t cap = ring_.size();
    const size_t first = (head_ + cap - count_) % cap;
    for (size_t i = 0; i < count_; ++i) {
      events.push_back(ring_[(first + i) % cap]);
    }
    names = thread_names_;
  }

  // Index by span id for cross-thread flow stitching.
  std::unordered_map<uint64_t, const TraceEvent*> by_id;
  by_id.reserve(events.size());
  for (const TraceEvent& e : events) {
    by_id.emplace(e.span_id, &e);
  }

  std::string out;
  out.reserve(events.size() * 160 + 256);
  out += "{\"traceEvents\":[";
  bool first_event = true;
  auto comma = [&] {
    if (!first_event) {
      out += ",\n";
    }
    first_event = false;
  };

  // Thread-name metadata events.
  for (const auto& [tid, name] : names) {
    comma();
    out += "{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(tid) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    AppendJsonEscaped(out, name.c_str());
    out += "\"}}";
  }

  for (const TraceEvent& e : events) {
    // Complete event.
    comma();
    out += "{\"ph\":\"X\",\"pid\":1,\"tid\":" + std::to_string(e.tid) +
           ",\"name\":\"";
    AppendJsonEscaped(out, e.name != nullptr ? e.name : "?");
    out += "\",\"cat\":\"";
    AppendJsonEscaped(out, e.category != nullptr ? e.category : "loggrep");
    out += "\",\"ts\":";
    AppendMicros(out, e.start_ns);
    out += ",\"dur\":";
    AppendMicros(out, e.dur_ns);
    out += ",\"args\":{\"span\":" + std::to_string(e.span_id) +
           ",\"parent\":" + std::to_string(e.parent_id);
    if (e.arg_name != nullptr) {
      out += ",\"";
      AppendJsonEscaped(out, e.arg_name);
      out += "\":" + std::to_string(e.arg_value);
    }
    out += "}}";

    // Flow arrow when the parent span lives on another thread.
    if (e.parent_id != 0) {
      const auto it = by_id.find(e.parent_id);
      if (it != by_id.end() && it->second->tid != e.tid) {
        const TraceEvent& p = *it->second;
        // Flow start must sit inside the parent slice.
        const uint64_t s_ts =
            std::min(std::max(e.start_ns, p.start_ns), p.start_ns + p.dur_ns);
        comma();
        out += "{\"ph\":\"s\",\"pid\":1,\"tid\":" + std::to_string(p.tid) +
               ",\"id\":" + std::to_string(e.span_id) +
               ",\"name\":\"submit\",\"cat\":\"flow\",\"ts\":";
        AppendMicros(out, s_ts);
        out += "}";
        comma();
        out += "{\"ph\":\"f\",\"bp\":\"e\",\"pid\":1,\"tid\":" +
               std::to_string(e.tid) + ",\"id\":" + std::to_string(e.span_id) +
               ",\"name\":\"submit\",\"cat\":\"flow\",\"ts\":";
        AppendMicros(out, e.start_ns);
        out += "}";
      }
    }
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

bool Tracer::WriteChromeJson(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return false;
  }
  const std::string json = ExportChromeJson();
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  return out.good();
}

TraceSpan::TraceSpan(const char* name, const char* category) {
  if (Tracer::Global().enabled()) {
    Begin(name, category, nullptr, 0);
  }
}

TraceSpan::TraceSpan(const char* name, const char* category,
                     const char* arg_name, uint64_t arg_value) {
  if (Tracer::Global().enabled()) {
    Begin(name, category, arg_name, arg_value);
  }
}

void TraceSpan::Begin(const char* name, const char* category,
                      const char* arg_name, uint64_t arg_value) {
  name_ = name;
  category_ = category;
  arg_name_ = arg_name;
  arg_value_ = arg_value;
  span_id_ = Tracer::NextSpanId();
  parent_id_ = tls_current_span;
  tls_current_span = span_id_;
  start_ns_ = Tracer::Global().NowNanos();
  active_ = true;
}

TraceSpan::~TraceSpan() {
  if (!active_) {
    return;
  }
  tls_current_span = parent_id_;
  Tracer& tracer = Tracer::Global();
  TraceEvent event;
  event.name = name_;
  event.category = category_;
  event.span_id = span_id_;
  event.parent_id = parent_id_;
  event.tid = Tracer::CurrentThreadId();
  event.start_ns = start_ns_;
  const uint64_t now = tracer.NowNanos();
  event.dur_ns = now > start_ns_ ? now - start_ns_ : 0;
  event.arg_name = arg_name_;
  event.arg_value = arg_value_;
  // Record even if tracing was toggled off mid-span: the span began under an
  // enabled tracer, and a half-recorded trace is worse than one extra event.
  tracer.Record(event);
}

ScopedTraceParent::ScopedTraceParent(uint64_t parent_span_id) {
  if (parent_span_id == 0) {
    return;
  }
  saved_ = tls_current_span;
  tls_current_span = parent_span_id;
  installed_ = true;
}

ScopedTraceParent::~ScopedTraceParent() {
  if (installed_) {
    tls_current_span = saved_;
  }
}

}  // namespace loggrep
