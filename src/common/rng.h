// Deterministic pseudo-random number generation (SplitMix64).
//
// Every stochastic choice in the library — sampling 5% of a block, picking
// values for delimiter probing, generating synthetic workloads — goes through
// an explicitly seeded Rng so runs are reproducible.
#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstdint>

namespace loggrep {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t NextU64() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound); bound must be nonzero.
  uint64_t NextBelow(uint64_t bound) { return NextU64() % bound; }

  // Uniform in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(NextBelow(static_cast<uint64_t>(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0);
  }

  bool NextBool(double p_true) { return NextDouble() < p_true; }

 private:
  uint64_t state_;
};

}  // namespace loggrep

#endif  // SRC_COMMON_RNG_H_
