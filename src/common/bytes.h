// Byte-buffer writer/reader with LEB128 varints, used by every serialized
// format in the repository (CapsuleBox, codec containers, baseline stores).
#ifndef SRC_COMMON_BYTES_H_
#define SRC_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "src/common/result.h"

namespace loggrep {

// Appends primitives to an owned std::string. Writes cannot fail.
class ByteWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v);            // fixed-width little endian
  void PutU64(uint64_t v);            // fixed-width little endian
  void PutVarint(uint64_t v);         // LEB128
  void PutBytes(std::string_view s) { buf_.append(s.data(), s.size()); }
  // Varint length prefix followed by raw bytes.
  void PutLengthPrefixed(std::string_view s);

  size_t size() const { return buf_.size(); }
  const std::string& data() const& { return buf_; }
  std::string&& Take() { return std::move(buf_); }

 private:
  std::string buf_;
};

// Bounds-checked sequential reader over a borrowed byte span.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  Result<uint8_t> ReadU8();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<uint64_t> ReadVarint();
  // Returns a view into the underlying buffer (no copy).
  Result<std::string_view> ReadBytes(size_t n);
  Result<std::string_view> ReadLengthPrefixed();

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }
  size_t position() const { return pos_; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace loggrep

#endif  // SRC_COMMON_BYTES_H_
