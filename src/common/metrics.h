// Minimal process-local metrics: named monotonic counters, high-water
// gauges, and log-bucketed histograms behind a registry, designed for hot
// paths shared by many threads.
//
// Usage pattern: resolve `Counter*` / `Histogram*` handles once (registry
// lookup takes a lock), then bump them lock-free from any thread.
// `Snapshot()` returns a stable name -> value map for logging / test
// assertions. Times are recorded as integer **nanoseconds** end-to-end so
// everything stays a uint64 cell; time-valued metric names carry a `_ns`
// suffix (e.g. "ingest.compress_ns", "query.open_ns").
//
// The ingest subsystem was the first consumer (queue depth high-water mark,
// producer stall time, per-stage wall time); the query pipeline mirrors its
// LocatorStats stage timings into the same registry. Text exporters
// (Prometheus exposition + JSON) live in src/common/metrics_export.h.
#ifndef SRC_COMMON_METRICS_H_
#define SRC_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/histogram.h"

namespace loggrep {

// One metric cell. Monotonic by convention for Add(); UpdateMax() turns the
// same cell into a high-water gauge. Never destroyed while its registry
// lives, so handles stay valid.
class Counter {
 public:
  Counter() : value_(0) {}

  void Add(uint64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }

  // Raises the cell to `candidate` if larger (high-water gauge).
  void UpdateMax(uint64_t candidate) {
    uint64_t current = value_.load(std::memory_order_relaxed);
    while (candidate > current &&
           !value_.compare_exchange_weak(current, candidate,
                                         std::memory_order_relaxed)) {
    }
  }

  // Zeroes the cell (used by MetricsRegistry::Reset).
  void Reset() { value_.store(0, std::memory_order_relaxed); }

  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Returns the counter registered under `name`, creating it at zero on first
  // use. The pointer remains valid for the registry's lifetime; cache it
  // outside hot loops.
  Counter* GetOrCreate(const std::string& name);

  // Same contract for histograms. Counters and histograms live in separate
  // namespaces, but sharing a name between them is a bad idea (exporters
  // would emit both).
  Histogram* GetOrCreateHistogram(const std::string& name);

  // Point-in-time copy of every registered counter.
  std::map<std::string, uint64_t> Snapshot() const;

  // Point-in-time snapshot of every registered histogram.
  std::map<std::string, HistogramSnapshot> HistogramSnapshots() const;

  // Zeroes every counter and histogram cell without invalidating handles.
  // Tests share one registry across cases and Reset() between them instead
  // of constructing throwaway registries for isolation.
  void Reset();

 private:
  mutable std::mutex mu_;
  // unique_ptr keeps cell addresses stable across rehashes.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// Converts a seconds measurement to the integer nanoseconds stored in
// counters/histograms (and back).
inline uint64_t SecondsToNanos(double seconds) {
  return seconds <= 0 ? 0 : static_cast<uint64_t>(seconds * 1e9);
}
inline double NanosToSeconds(uint64_t nanos) {
  return static_cast<double>(nanos) / 1e9;
}

}  // namespace loggrep

#endif  // SRC_COMMON_METRICS_H_
