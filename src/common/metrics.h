// Minimal process-local metrics: named monotonic counters and high-water
// gauges behind a registry, designed for hot paths shared by many threads.
//
// Usage pattern: resolve `Counter*` handles once (registry lookup takes a
// lock), then bump them lock-free from any thread. `Snapshot()` returns a
// stable name -> value map for logging / test assertions. Times are recorded
// as integer microseconds so everything stays a uint64 counter.
//
// The ingest subsystem is the first consumer (queue depth high-water mark,
// producer stall time, per-stage wall time), but the registry is deliberately
// generic so query-side metrics can reuse it.
#ifndef SRC_COMMON_METRICS_H_
#define SRC_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace loggrep {

// One metric cell. Monotonic by convention for Add(); UpdateMax() turns the
// same cell into a high-water gauge. Never destroyed while its registry
// lives, so handles stay valid.
class Counter {
 public:
  Counter() : value_(0) {}

  void Add(uint64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }

  // Raises the cell to `candidate` if larger (high-water gauge).
  void UpdateMax(uint64_t candidate) {
    uint64_t current = value_.load(std::memory_order_relaxed);
    while (candidate > current &&
           !value_.compare_exchange_weak(current, candidate,
                                         std::memory_order_relaxed)) {
    }
  }

  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Returns the counter registered under `name`, creating it at zero on first
  // use. The pointer remains valid for the registry's lifetime; cache it
  // outside hot loops.
  Counter* GetOrCreate(const std::string& name);

  // Point-in-time copy of every registered counter.
  std::map<std::string, uint64_t> Snapshot() const;

 private:
  mutable std::mutex mu_;
  // unique_ptr keeps Counter addresses stable across rehashes.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
};

// Converts a seconds measurement to the integer microseconds stored in
// counters (and back).
inline uint64_t SecondsToMicros(double seconds) {
  return seconds <= 0 ? 0 : static_cast<uint64_t>(seconds * 1e6);
}
inline double MicrosToSeconds(uint64_t micros) {
  return static_cast<double>(micros) / 1e6;
}

}  // namespace loggrep

#endif  // SRC_COMMON_METRICS_H_
