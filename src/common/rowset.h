// RowSet: the result of matching a keyword against one group of a log block —
// the set of row indices (entry positions within the group) that match.
//
// Keyword matching on runtime patterns produces several "possible matches";
// each possible match intersects the row sets of the Capsules it constrains,
// and the overall result is the union over possible matches (§5.1). RowSet
// supports those two operations plus an "all rows" fast path for the case
// where a keyword is satisfied by the constant part of a pattern alone.
#ifndef SRC_COMMON_ROWSET_H_
#define SRC_COMMON_ROWSET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace loggrep {

class RowSet {
 public:
  // Empty set over a universe of `universe` rows.
  static RowSet None(uint32_t universe) { return RowSet(universe, false); }
  // Full set: every row in the universe matches.
  static RowSet All(uint32_t universe) { return RowSet(universe, true); }
  // Explicit rows; must be strictly increasing and < universe.
  static RowSet Of(uint32_t universe, std::vector<uint32_t> rows);

  uint32_t universe() const { return universe_; }
  bool IsAll() const { return all_; }
  bool IsEmpty() const { return !all_ && rows_.empty(); }
  // Materialized row list (expands the All representation on demand).
  std::vector<uint32_t> ToRows() const;
  size_t Count() const { return all_ ? universe_ : rows_.size(); }
  bool Contains(uint32_t row) const;

  RowSet IntersectWith(const RowSet& other) const;
  RowSet UnionWith(const RowSet& other) const;
  // Rows in the universe that are NOT in this set (for NOT search strings).
  RowSet Complement() const;

  bool operator==(const RowSet& other) const;

 private:
  RowSet(uint32_t universe, bool all) : universe_(universe), all_(all) {}

  uint32_t universe_ = 0;
  bool all_ = false;
  std::vector<uint32_t> rows_;  // sorted, unique; empty when all_ is true
};

}  // namespace loggrep

#endif  // SRC_COMMON_ROWSET_H_
