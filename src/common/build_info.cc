#include "src/common/build_info.h"

#include <chrono>
#include <cstdio>

#include "src/common/simd.h"

namespace loggrep {

namespace {

#ifndef LOGGREP_GIT_SHA
#define LOGGREP_GIT_SHA "unknown"
#endif

uint64_t SteadyNowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

const char* BuildVersion() { return "0.8.0"; }

const char* BuildGitSha() { return LOGGREP_GIT_SHA; }

uint64_t ProcessUptimeNanos() {
  static const uint64_t epoch = SteadyNowNanos();
  const uint64_t now = SteadyNowNanos();
  return now > epoch ? now - epoch : 0;
}

void AppendBuildInfoMetrics(std::string* out) {
  out->append("# TYPE loggrep_build_info gauge\n");
  out->append("loggrep_build_info{version=\"");
  out->append(BuildVersion());
  out->append("\",git_sha=\"");
  out->append(BuildGitSha());
  out->append("\",simd=\"");
  out->append(SimdTierName(ActiveSimdTier()));
  out->append("\"} 1\n");
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f",
                static_cast<double>(ProcessUptimeNanos()) / 1e9);
  out->append("# TYPE loggrep_process_uptime_seconds gauge\n");
  out->append("loggrep_process_uptime_seconds ");
  out->append(buf);
  out->push_back('\n');
}

void AppendBuildInfoJsonFields(std::string* out) {
  out->append("\"version\":\"");
  out->append(BuildVersion());
  out->append("\",\"git_sha\":\"");
  out->append(BuildGitSha());
  out->append("\",\"simd\":\"");
  out->append(SimdTierName(ActiveSimdTier()));
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f",
                static_cast<double>(ProcessUptimeNanos()) / 1e9);
  out->append("\",\"uptime_seconds\":");
  out->append(buf);
}

}  // namespace loggrep
