// Runtime-dispatched SIMD primitives for the hot scan path.
//
// The query kernel (§5.2 fixed-length matching) spends its time in three
// byte-level operations: finding a byte (pad-char trim, first-byte skip),
// comparing short blocks (fragment verification), and enumerating substring
// occurrences across a padded column. This header provides exactly those
// three primitives with one implementation per tier:
//
//   kScalar — portable C++ loops, selectable at runtime via the
//             LOGGREP_FORCE_SCALAR=1 environment variable (checked once).
//   kSse2   — 16-byte blocks; baseline on x86-64, always compiled there.
//   kAvx2   — 32-byte blocks; compiled with a per-function target attribute
//             and selected only when CPUID reports AVX2.
//
// Dispatch is a single relaxed atomic load per call; the tier is detected
// once at first use. Tests and benches pin a tier with ScopedSimdTier to
// difference the vector paths against the scalar oracle on the same build.
//
// All three primitives are exact: a tier change can never change results,
// only speed. That property is enforced by tests/fixed_matcher_property_test.
#ifndef SRC_COMMON_SIMD_H_
#define SRC_COMMON_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace loggrep {

enum class SimdTier : uint8_t {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
};

// Highest tier supported by this CPU and build, minus the
// LOGGREP_FORCE_SCALAR override. Detected once, then cached.
SimdTier ActiveSimdTier();

// Tiers worth testing on this machine: kScalar up to ActiveSimdTier()
// ignoring the environment override (so a forced-scalar CI leg still
// exercises the vector code paths it is meant to difference against).
std::vector<SimdTier> SupportedSimdTiers();

const char* SimdTierName(SimdTier tier);  // "scalar" / "sse2" / "avx2"

// Pins the active tier for the lifetime of the object (tests/benches only;
// not thread-safe against concurrent scans in other threads).
class ScopedSimdTier {
 public:
  explicit ScopedSimdTier(SimdTier tier);
  ~ScopedSimdTier();
  ScopedSimdTier(const ScopedSimdTier&) = delete;
  ScopedSimdTier& operator=(const ScopedSimdTier&) = delete;

 private:
  SimdTier prev_;
};

// Index of the first occurrence of `byte` at or after `from`;
// std::string_view::npos when absent. The memchr of the scan kernel.
size_t FindByte(std::string_view haystack, size_t from, char byte);

// True when [a, a+n) and [b, b+n) hold the same bytes (n may be 0).
bool BlocksEqual(const char* a, const char* b, size_t n);

// Appends every (possibly overlapping) occurrence of `needle` in `haystack`
// to `hits`, in ascending order. Empty needles produce no hits, matching
// BoyerMooreSearch/KmpSearch. Uses a first+last-byte skip loop with block
// verification on the vector tiers.
void FindAll(std::string_view haystack, std::string_view needle,
             std::vector<size_t>& hits);

}  // namespace loggrep

#endif  // SRC_COMMON_SIMD_H_
