// Hash-chain LZ77 match finder shared by the Huffman-entropy codecs.
//
// A classic zlib-style structure: a hash of the next 4 bytes selects a chain
// of earlier positions with the same hash; the finder walks at most
// `max_chain` links looking for the longest match within `window_size`.
#ifndef SRC_CODEC_LZ_MATCHER_H_
#define SRC_CODEC_LZ_MATCHER_H_

#include <cstdint>
#include <string_view>
#include <vector>

namespace loggrep {

struct LzParams {
  uint32_t window_size = 32 * 1024;  // how far back matches may reach
  uint32_t max_chain = 64;           // chain links walked per position
  uint32_t nice_len = 128;           // stop searching once a match this long is found
  uint32_t max_match = 1 << 16;      // hard cap on emitted match length
  bool lazy = true;                  // one-step lazy matching
  uint32_t block_tokens = 1u << 17;  // tokens per entropy block
};

inline constexpr uint32_t kMinMatch = 4;

class HashChainMatcher {
 public:
  HashChainMatcher(std::string_view data, const LzParams& params);

  struct Match {
    uint32_t len = 0;  // 0 = no match found
    uint32_t dist = 0;
    int64_t score = 0;  // estimated bit gain over emitting literals
  };

  // Best-scoring match starting at `pos` against earlier inserted positions.
  // `reps` (up to `nreps` recent match distances, 0 entries ignored) are
  // tried first and scored favorably: repeating a recent distance costs only
  // a few bits to encode.
  Match FindBest(size_t pos, const uint32_t* reps = nullptr, int nreps = 0) const;

  // Registers `pos` as a future match source. Positions must be inserted in
  // increasing order; every position the cursor passes should be inserted.
  void Insert(size_t pos);

 private:
  uint32_t HashAt(size_t pos) const;

  std::string_view data_;
  LzParams params_;
  std::vector<int64_t> head_;  // hash -> most recent position (-1 = none)
  std::vector<int64_t> prev_;  // position -> previous position on its chain
};

}  // namespace loggrep

#endif  // SRC_CODEC_LZ_MATCHER_H_
