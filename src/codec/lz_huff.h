// Shared LZSS + canonical-Huffman codec implementation.
//
// GzipCodec and XzCodec are both instances of LzHuffCodec with different
// match-finder parameters (window size, chain depth, laziness), mirroring how
// gzip and LZMA occupy different points on the same speed/ratio curve.
//
// Payload format: a sequence of blocks, each
//   [u8 type: 0 = stored, 1 = huffman][varint raw_len]
//   stored:  raw_len raw bytes
//   huffman: [nibble-packed litlen length table][nibble-packed dist table]
//            [varint bitstream byte count][bitstream]
// Matches may reference data from earlier blocks (the LZ window is
// continuous); only the entropy tables reset at block boundaries.
#ifndef SRC_CODEC_LZ_HUFF_H_
#define SRC_CODEC_LZ_HUFF_H_

#include "src/codec/codec.h"
#include "src/codec/lz_matcher.h"

namespace loggrep {

// Bucketization of unbounded non-negative integers into (code, extra bits),
// deflate-style: codes 0-3 cover v = 0..3 directly; thereafter each group of
// 4 codes shares an extra-bit width eb, covering 4 * 2^eb values.
struct Bucket {
  uint32_t code;
  uint32_t extra_bits;
  uint32_t extra_value;
};
Bucket BucketizeValue(uint32_t v);
// Inverse: start value and extra-bit width of a code.
void BucketRange(uint32_t code, uint32_t* base, uint32_t* extra_bits);

class LzHuffCodec : public Codec {
 public:
  LzHuffCodec(const char* name, uint8_t id, const LzParams& params)
      : name_(name), id_(id), params_(params) {}

  const char* name() const override { return name_; }
  uint8_t id() const override { return id_; }

 protected:
  std::string CompressPayload(std::string_view raw) const override;
  Result<std::string> DecompressPayload(std::string_view payload,
                                        size_t raw_size) const override;

 private:
  const char* name_;
  uint8_t id_;
  LzParams params_;
};

}  // namespace loggrep

#endif  // SRC_CODEC_LZ_HUFF_H_
