// Compression codec interface and registry.
//
// Three codecs are provided, standing in for the tools the paper's systems
// use (see DESIGN.md "Substitutions"):
//   GzipCodec()  - LZSS 32 KiB window + canonical Huffman  (gzip stand-in)
//   ZstdCodec()  - byte-aligned LZ, 64 KiB window, no entropy stage
//                  (zstd stand-in: fastest, moderate ratio)
//   XzCodec()    - LZSS 1 MiB window, lazy matching + canonical Huffman
//                  (LZMA stand-in: slowest, best ratio)
//
// Compressed blobs are self-describing: a one-byte codec id and the raw size
// precede the payload, so DecompressAny() can decode any blob.
#ifndef SRC_CODEC_CODEC_H_
#define SRC_CODEC_CODEC_H_

#include <string>
#include <string_view>

#include "src/common/result.h"

namespace loggrep {

class Codec {
 public:
  virtual ~Codec() = default;

  virtual const char* name() const = 0;
  virtual uint8_t id() const = 0;

  // Container format: [u8 id][varint raw_size][payload].
  std::string Compress(std::string_view raw) const;
  Result<std::string> Decompress(std::string_view blob) const;

 protected:
  virtual std::string CompressPayload(std::string_view raw) const = 0;
  virtual Result<std::string> DecompressPayload(std::string_view payload,
                                                size_t raw_size) const = 0;
};

const Codec& GetGzipCodec();
const Codec& GetZstdCodec();
const Codec& GetXzCodec();

Result<const Codec*> CodecById(uint8_t id);

// Decodes a blob produced by any registered codec.
Result<std::string> DecompressAny(std::string_view blob);

}  // namespace loggrep

#endif  // SRC_CODEC_CODEC_H_
