// Compression codec interface and registry.
//
// Three codecs are provided, standing in for the tools the paper's systems
// use (see DESIGN.md "Substitutions"):
//   GzipCodec()  - LZSS 32 KiB window + canonical Huffman  (gzip stand-in)
//   ZstdCodec()  - byte-aligned LZ, 64 KiB window, no entropy stage
//                  (zstd stand-in: fastest, moderate ratio)
//   XzCodec()    - LZSS 1 MiB window, lazy matching + canonical Huffman
//                  (LZMA stand-in: slowest, best ratio)
//
// Compressed blobs are self-describing: a one-byte codec id and the raw size
// precede the payload, so DecompressAny() can decode any blob.
#ifndef SRC_CODEC_CODEC_H_
#define SRC_CODEC_CODEC_H_

#include <string>
#include <string_view>

#include "src/common/result.h"

namespace loggrep {

// Decompression-bomb limits, enforced by Codec::Decompress before any
// allocation happens (a hostile blob may declare any raw size it likes):
//   * the declared raw size must not exceed kMaxDecompressedBytes, and
//   * it must not exceed max(kExpansionFloorBytes, payload * kMaxExpansionRatio).
// The ratio is deliberately generous — the range coder genuinely reaches
// ~40000x on 64 MiB of zeros (measured; rep0 matches cost a handful of
// direct bits each) — while still turning a 10-byte blob that declares an
// exabyte into a clean kCorruptData instead of a bad_alloc. Codecs
// additionally cap their upfront reserve at kDecompressReserveBytes so even
// an admitted declared size only pre-allocates a bounded amount; memory past
// that grows only as genuinely decoded bytes are produced.
inline constexpr uint64_t kMaxDecompressedBytes = 1ull << 30;    // 1 GiB
inline constexpr uint64_t kMaxExpansionRatio = 1ull << 17;       // 131072x
inline constexpr uint64_t kExpansionFloorBytes = 1ull << 20;     // 1 MiB
inline constexpr size_t kDecompressReserveBytes = size_t{1} << 24;  // 16 MiB

class Codec {
 public:
  virtual ~Codec() = default;

  virtual const char* name() const = 0;
  virtual uint8_t id() const = 0;

  // Container format: [u8 id][varint raw_size][payload].
  std::string Compress(std::string_view raw) const;
  Result<std::string> Decompress(std::string_view blob) const;

 protected:
  virtual std::string CompressPayload(std::string_view raw) const = 0;
  virtual Result<std::string> DecompressPayload(std::string_view payload,
                                                size_t raw_size) const = 0;
};

const Codec& GetGzipCodec();
const Codec& GetZstdCodec();
const Codec& GetXzCodec();

Result<const Codec*> CodecById(uint8_t id);

// Decodes a blob produced by any registered codec.
Result<std::string> DecompressAny(std::string_view blob);

}  // namespace loggrep

#endif  // SRC_CODEC_CODEC_H_
