#include "src/codec/bitstream.h"

namespace loggrep {

void BitWriter::PutBits(uint32_t value, int nbits) {
  acc_ |= static_cast<uint64_t>(value & ((nbits == 32) ? 0xFFFFFFFFu : ((1u << nbits) - 1)))
          << nbits_;
  nbits_ += nbits;
  while (nbits_ >= 8) {
    buf_.push_back(static_cast<char>(acc_ & 0xFF));
    acc_ >>= 8;
    nbits_ -= 8;
  }
}

std::string BitWriter::Finish() {
  if (nbits_ > 0) {
    buf_.push_back(static_cast<char>(acc_ & 0xFF));
    acc_ = 0;
    nbits_ = 0;
  }
  return std::move(buf_);
}

int BitReader::ReadBit() {
  if (byte_pos_ >= data_.size()) {
    overflow_ = true;
    return -1;
  }
  const int bit = (static_cast<uint8_t>(data_[byte_pos_]) >> bit_pos_) & 1;
  if (++bit_pos_ == 8) {
    bit_pos_ = 0;
    ++byte_pos_;
  }
  return bit;
}

int64_t BitReader::ReadBits(int nbits) {
  int64_t v = 0;
  for (int i = 0; i < nbits; ++i) {
    const int bit = ReadBit();
    if (bit < 0) {
      return -1;
    }
    v |= static_cast<int64_t>(bit) << i;
  }
  return v;
}

}  // namespace loggrep
