// LZMA stand-in ("xz-like"), implemented from scratch as LZ with an adaptive
// binary range coder (src/codec/range_coder.h) — the same design recipe as
// LZMA: order-1 context-modeled literals, a four-slot repeat-distance
// history (rep0-rep3), length-conditioned distance slots, and an aligned
// tree for the low distance bits. Slowest codec in the repository, best
// ratio; used as LogGrep's second-stage compressor like LZMA in the paper.
//
// Payload: [u8 mode: 0 = stored, 1 = range-coded][data].
#include <algorithm>
#include <vector>

#include "src/codec/codec.h"
#include "src/codec/lz_huff.h"  // BucketizeValue / BucketRange
#include "src/codec/lz_matcher.h"
#include "src/codec/range_coder.h"

namespace loggrep {
namespace {

constexpr uint8_t kModeStored = 0;
constexpr uint8_t kModeRangeCoded = 1;

constexpr int kLenTreeBits = 6;    // length bucket codes < 64
constexpr int kDistTreeBits = 7;   // distance bucket codes < 128
constexpr int kLiteralContexts = 256;

constexpr int kNumReps = 4;  // repeat-distance history depth (LZMA rep0-rep3)

struct Models {
  BitProb is_match[2];
  BitProb is_rep[2];
  BitProb rep_index[1 << 2];  // bit-tree over the 4 history slots
  BitProb literal[kLiteralContexts][1 << 8];
  BitProb len_tree[2][1 << kLenTreeBits];   // ctx: after rep / after new dist
  BitProb dist_tree[2][1 << kDistTreeBits];  // ctx: short vs long match
  BitProb align[1 << 4];  // low 4 distance bits (padded columns align often)

  Models() {
    auto fill = [](BitProb* p, size_t n) {
      for (size_t i = 0; i < n; ++i) {
        p[i] = kProbInit;
      }
    };
    fill(is_match, 2);
    fill(is_rep, 2);
    fill(rep_index, 1 << 2);
    for (auto& ctx : literal) {
      fill(ctx, 1 << 8);
    }
    for (auto& ctx : len_tree) {
      fill(ctx, 1 << kLenTreeBits);
    }
    for (auto& ctx : dist_tree) {
      fill(ctx, 1 << kDistTreeBits);
    }
    fill(align, 1 << 4);
  }
};

// Recent-distance history with move-to-front semantics.
struct RepHistory {
  uint32_t reps[kNumReps] = {0, 0, 0, 0};

  // Index of `dist` in the history, or -1.
  int Find(uint32_t dist) const {
    for (int i = 0; i < kNumReps; ++i) {
      if (reps[i] == dist) {
        return i;
      }
    }
    return -1;
  }

  void Promote(int index) {
    const uint32_t d = reps[index];
    for (int i = index; i > 0; --i) {
      reps[i] = reps[i - 1];
    }
    reps[0] = d;
  }

  void PushFront(uint32_t dist) {
    for (int i = kNumReps - 1; i > 0; --i) {
      reps[i] = reps[i - 1];
    }
    reps[0] = dist;
  }
};

int LiteralContext(const std::string& out) {
  return out.empty() ? 0 : static_cast<uint8_t>(out.back());
}

int LiteralContextEnc(std::string_view raw, size_t pos) {
  return pos == 0 ? 0 : static_cast<uint8_t>(raw[pos - 1]);
}

class XzLikeCodec : public Codec {
 public:
  const char* name() const override { return "xz-like"; }
  uint8_t id() const override { return 3; }

 protected:
  std::string CompressPayload(std::string_view raw) const override {
    if (raw.empty()) {
      return std::string(1, static_cast<char>(kModeRangeCoded));
    }
    const LzParams params{
        .window_size = 1u << 19,
        .max_chain = 192,
        .nice_len = 384,
        .max_match = 1u << 16,
        .lazy = true,
        .block_tokens = 0,  // unused: models adapt continuously
    };
    HashChainMatcher matcher(raw, params);
    Models models;
    RangeEncoder rc;
    int prev_match = 0;
    RepHistory history;
    size_t pos = 0;
    while (pos < raw.size()) {
      HashChainMatcher::Match best =
          matcher.FindBest(pos, history.reps, kNumReps);
      bool inserted_pos = false;
      if (best.len >= kMinMatch && params.lazy && best.len < params.nice_len &&
          pos + 1 < raw.size()) {
        matcher.Insert(pos);
        inserted_pos = true;
        const HashChainMatcher::Match next =
            matcher.FindBest(pos + 1, history.reps, kNumReps);
        if (next.score > best.score) {
          best.len = 0;  // emit a literal and retry at pos + 1
        }
      }
      if (best.len >= kMinMatch) {
        rc.EncodeBit(models.is_match[prev_match], 1);
        const int rep_index = history.Find(best.dist);
        rc.EncodeBit(models.is_rep[prev_match], rep_index >= 0 ? 1 : 0);
        const Bucket lb = BucketizeValue(best.len - kMinMatch);
        EncodeBitTree(rc, models.len_tree[rep_index >= 0 ? 0 : 1], kLenTreeBits,
                      lb.code);
        if (lb.extra_bits > 0) {
          rc.EncodeDirectBits(lb.extra_value, static_cast<int>(lb.extra_bits));
        }
        if (rep_index >= 0) {
          EncodeBitTree(rc, models.rep_index, 2,
                        static_cast<uint32_t>(rep_index));
          history.Promote(rep_index);
        } else {
          const Bucket db = BucketizeValue(best.dist - 1);
          const int dctx = best.len >= 8 ? 1 : 0;
          EncodeBitTree(rc, models.dist_tree[dctx], kDistTreeBits, db.code);
          if (db.extra_bits > 4) {
            rc.EncodeDirectBits(db.extra_value >> 4,
                                static_cast<int>(db.extra_bits) - 4);
            EncodeBitTree(rc, models.align, 4, db.extra_value & 15u);
          } else if (db.extra_bits > 0) {
            rc.EncodeDirectBits(db.extra_value, static_cast<int>(db.extra_bits));
          }
          history.PushFront(best.dist);
        }
        const size_t insert_end =
            pos + std::min<size_t>(best.len, best.len > 4096 ? 32 : best.len);
        for (size_t p = pos + (inserted_pos ? 1 : 0); p < insert_end; ++p) {
          matcher.Insert(p);
        }
        pos += best.len;
        prev_match = 1;
      } else {
        if (!inserted_pos) {
          matcher.Insert(pos);
        }
        rc.EncodeBit(models.is_match[prev_match], 0);
        EncodeBitTree(rc, models.literal[LiteralContextEnc(raw, pos)], 8,
                      static_cast<uint8_t>(raw[pos]));
        ++pos;
        prev_match = 0;
      }
    }
    std::string coded = rc.Finish();
    if (coded.size() + 1 >= raw.size()) {
      std::string stored(1, static_cast<char>(kModeStored));
      stored.append(raw.data(), raw.size());
      return stored;
    }
    std::string out(1, static_cast<char>(kModeRangeCoded));
    out += coded;
    return out;
  }

  Result<std::string> DecompressPayload(std::string_view payload,
                                        size_t raw_size) const override {
    if (payload.empty()) {
      return CorruptData("xz-like: empty payload");
    }
    const uint8_t mode = static_cast<uint8_t>(payload[0]);
    payload.remove_prefix(1);
    if (mode == kModeStored) {
      if (payload.size() != raw_size) {
        return CorruptData("xz-like: stored size mismatch");
      }
      return std::string(payload);
    }
    if (mode != kModeRangeCoded) {
      return CorruptData("xz-like: unknown payload mode");
    }
    std::string out;
    out.reserve(std::min(raw_size, kDecompressReserveBytes));
    if (raw_size == 0) {
      return out;
    }
    Models models;
    RangeDecoder rc(payload);
    int prev_match = 0;
    RepHistory history;
    while (out.size() < raw_size) {
      if (rc.Overran()) {
        return CorruptData("xz-like: truncated range-coded stream");
      }
      if (rc.DecodeBit(models.is_match[prev_match]) == 0) {
        const int ctx = LiteralContext(out);
        out.push_back(static_cast<char>(
            DecodeBitTree(rc, models.literal[ctx], 8)));
        prev_match = 0;
        continue;
      }
      const int is_rep = rc.DecodeBit(models.is_rep[prev_match]);
      const uint32_t lcode =
          DecodeBitTree(rc, models.len_tree[is_rep ? 0 : 1], kLenTreeBits);
      uint32_t base = 0;
      uint32_t eb = 0;
      BucketRange(lcode, &base, &eb);
      uint32_t len = kMinMatch + base +
                     (eb > 0 ? rc.DecodeDirectBits(static_cast<int>(eb)) : 0);
      uint32_t dist;
      if (is_rep != 0) {
        const uint32_t rep_index = DecodeBitTree(rc, models.rep_index, 2);
        dist = history.reps[rep_index];
        history.Promote(static_cast<int>(rep_index));
      } else {
        const int dctx = len >= 8 ? 1 : 0;
        const uint32_t dcode =
            DecodeBitTree(rc, models.dist_tree[dctx], kDistTreeBits);
        BucketRange(dcode, &base, &eb);
        uint32_t extra = 0;
        if (eb > 4) {
          extra = rc.DecodeDirectBits(static_cast<int>(eb) - 4) << 4;
          extra |= DecodeBitTree(rc, models.align, 4);
        } else if (eb > 0) {
          extra = rc.DecodeDirectBits(static_cast<int>(eb));
        }
        dist = 1 + base + extra;
        history.PushFront(dist);
      }
      if (dist == 0 || dist > out.size()) {
        return CorruptData("xz-like: bad match distance");
      }
      if (out.size() + len > raw_size) {
        return CorruptData("xz-like: match overflows raw size");
      }
      const size_t src = out.size() - dist;
      for (uint32_t i = 0; i < len; ++i) {
        out.push_back(out[src + i]);
      }
      prev_match = 1;
    }
    return out;
  }
};

}  // namespace

const Codec& GetXzCodec() {
  static const XzLikeCodec codec;
  return codec;
}

}  // namespace loggrep
