#include "src/codec/range_coder.h"

namespace loggrep {
namespace {

constexpr uint32_t kTopValue = 1u << 24;
constexpr int kProbBits = 11;
constexpr int kMoveBits = 5;

}  // namespace

void RangeEncoder::ShiftLow() {
  if (low_ < 0xFF000000ull || low_ > 0xFFFFFFFFull) {
    const uint8_t carry = static_cast<uint8_t>(low_ >> 32);
    do {
      out_.push_back(static_cast<char>(cache_ + carry));
      cache_ = 0xFF;
    } while (--cache_size_ != 0);
    cache_ = static_cast<uint8_t>((low_ >> 24) & 0xFF);
  }
  ++cache_size_;
  low_ = (low_ << 8) & 0xFFFFFFFFull;
}

void RangeEncoder::EncodeBit(BitProb& prob, int bit) {
  const uint32_t bound = (range_ >> kProbBits) * prob;
  if (bit == 0) {
    range_ = bound;
    prob += static_cast<BitProb>(((1u << kProbBits) - prob) >> kMoveBits);
  } else {
    low_ += bound;
    range_ -= bound;
    prob -= static_cast<BitProb>(prob >> kMoveBits);
  }
  while (range_ < kTopValue) {
    range_ <<= 8;
    ShiftLow();
  }
}

void RangeEncoder::EncodeDirectBits(uint32_t value, int nbits) {
  for (int i = nbits - 1; i >= 0; --i) {
    range_ >>= 1;
    if ((value >> i) & 1u) {
      low_ += range_;
    }
    while (range_ < kTopValue) {
      range_ <<= 8;
      ShiftLow();
    }
  }
}

std::string RangeEncoder::Finish() {
  for (int i = 0; i < 5; ++i) {
    ShiftLow();
  }
  return std::move(out_);
}

RangeDecoder::RangeDecoder(std::string_view in) : in_(in) {
  NextByte();  // the encoder's initial zero cache byte
  for (int i = 0; i < 4; ++i) {
    code_ = (code_ << 8) | NextByte();
  }
}

uint8_t RangeDecoder::NextByte() {
  if (pos_ >= in_.size()) {
    overran_ = true;
    return 0;
  }
  return static_cast<uint8_t>(in_[pos_++]);
}

void RangeDecoder::Normalize() {
  while (range_ < kTopValue) {
    range_ <<= 8;
    code_ = (code_ << 8) | NextByte();
  }
}

int RangeDecoder::DecodeBit(BitProb& prob) {
  const uint32_t bound = (range_ >> kProbBits) * prob;
  int bit;
  if (code_ < bound) {
    range_ = bound;
    prob += static_cast<BitProb>(((1u << kProbBits) - prob) >> kMoveBits);
    bit = 0;
  } else {
    code_ -= bound;
    range_ -= bound;
    prob -= static_cast<BitProb>(prob >> kMoveBits);
    bit = 1;
  }
  Normalize();
  return bit;
}

uint32_t RangeDecoder::DecodeDirectBits(int nbits) {
  uint32_t result = 0;
  for (int i = 0; i < nbits; ++i) {
    range_ >>= 1;
    code_ -= range_;
    const uint32_t t = 0u - (code_ >> 31);  // all-ones when code_ underflowed
    code_ += range_ & t;
    result = (result << 1) + (t + 1);
    Normalize();
  }
  return result;
}

void EncodeBitTree(RangeEncoder& rc, BitProb* probs, int nbits, uint32_t symbol) {
  uint32_t m = 1;
  for (int i = nbits - 1; i >= 0; --i) {
    const int bit = static_cast<int>((symbol >> i) & 1u);
    rc.EncodeBit(probs[m], bit);
    m = (m << 1) | static_cast<uint32_t>(bit);
  }
}

uint32_t DecodeBitTree(RangeDecoder& rc, BitProb* probs, int nbits) {
  uint32_t m = 1;
  for (int i = 0; i < nbits; ++i) {
    m = (m << 1) | static_cast<uint32_t>(rc.DecodeBit(probs[m]));
  }
  return m - (1u << nbits);
}

}  // namespace loggrep
