#include "src/codec/lz_matcher.h"

#include <algorithm>
#include <bit>
#include <cstring>

namespace loggrep {
namespace {

constexpr int kHashBits = 16;
constexpr uint32_t kHashMul = 2654435761u;

// Approximate bit benefit of a (len, dist) match over emitting literals:
// each matched byte saves roughly 4 bits of literal entropy; the match costs
// a length code + distance code (~10 bits) plus distance extra bits
// (~bit_width(dist) - 3). Only positive-gain matches are worth emitting —
// this is what keeps a large window from hurting ratio with far references.
int64_t MatchScore(uint32_t len, uint32_t dist) {
  const int extra = std::max(0, static_cast<int>(std::bit_width(dist)) - 3);
  return static_cast<int64_t>(len) * 4 - 10 - extra;
}

}  // namespace

HashChainMatcher::HashChainMatcher(std::string_view data, const LzParams& params)
    : data_(data),
      params_(params),
      head_(size_t{1} << kHashBits, -1),
      prev_(data.size(), -1) {}

uint32_t HashChainMatcher::HashAt(size_t pos) const {
  uint32_t v = 0;
  std::memcpy(&v, data_.data() + pos, 4);
  return (v * kHashMul) >> (32 - kHashBits);
}

HashChainMatcher::Match HashChainMatcher::FindBest(size_t pos,
                                                   const uint32_t* reps,
                                                   int nreps) const {
  Match best;
  if (pos + kMinMatch > data_.size()) {
    return best;
  }
  const size_t max_len =
      std::min<size_t>(data_.size() - pos, params_.max_match);
  const size_t window_floor =
      pos > params_.window_size ? pos - params_.window_size : 0;
  const char* base = data_.data();
  // Repeat-distance candidates: encoded as a short symbol with no extra
  // bits, so they get a flat cost instead of a distance penalty.
  for (int r = 0; r < nreps; ++r) {
    const uint32_t rep_dist = reps[r];
    if (rep_dist == 0 || pos < rep_dist) {
      continue;
    }
    const size_t c = pos - rep_dist;
    size_t len = 0;
    while (len < max_len && base[c + len] == base[pos + len]) {
      ++len;
    }
    const int64_t score = static_cast<int64_t>(len) * 4 - 8 - r;
    if (len >= kMinMatch && score > best.score) {
      best.len = static_cast<uint32_t>(len);
      best.dist = rep_dist;
      best.score = score;
    }
  }
  int64_t cand = head_[HashAt(pos)];
  uint32_t chain = params_.max_chain;
  while (cand >= 0 && static_cast<size_t>(cand) >= window_floor && chain-- > 0) {
    const size_t c = static_cast<size_t>(cand);
    // Quick reject: a candidate can only improve the score if it at least
    // matches one byte past the current best length.
    if (best.len == 0 || (best.len < max_len && base[c + best.len] == base[pos + best.len])) {
      size_t len = 0;
      while (len < max_len && base[c + len] == base[pos + len]) {
        ++len;
      }
      if (len >= kMinMatch) {
        const uint32_t dist = static_cast<uint32_t>(pos - c);
        const int64_t score = MatchScore(static_cast<uint32_t>(len), dist);
        if (score > best.score) {
          best.len = static_cast<uint32_t>(len);
          best.dist = dist;
          best.score = score;
          if (len >= params_.nice_len) {
            break;
          }
        }
      }
    }
    cand = prev_[c];
  }
  if (best.score <= 0) {
    return Match{};
  }
  return best;
}

void HashChainMatcher::Insert(size_t pos) {
  if (pos + 4 > data_.size()) {
    return;
  }
  const uint32_t h = HashAt(pos);
  prev_[pos] = head_[h];
  head_[h] = static_cast<int64_t>(pos);
}

}  // namespace loggrep
