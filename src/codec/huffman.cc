#include "src/codec/huffman.h"

#include <algorithm>
#include <cassert>

namespace loggrep {
namespace {

struct PmItem {
  uint64_t weight;
  std::vector<int> symbols;  // original symbols covered by this package
};

void MergeSorted(const std::vector<PmItem>& a, const std::vector<PmItem>& b,
                 std::vector<PmItem>& out) {
  out.clear();
  out.reserve(a.size() + b.size());
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].weight <= b[j].weight) {
      out.push_back(a[i++]);
    } else {
      out.push_back(b[j++]);
    }
  }
  for (; i < a.size(); ++i) {
    out.push_back(a[i]);
  }
  for (; j < b.size(); ++j) {
    out.push_back(b[j]);
  }
}

}  // namespace

std::vector<uint8_t> BuildCodeLengths(const std::vector<uint64_t>& freqs,
                                      int max_bits) {
  std::vector<uint8_t> lengths(freqs.size(), 0);
  std::vector<PmItem> items;
  for (size_t s = 0; s < freqs.size(); ++s) {
    if (freqs[s] > 0) {
      items.push_back(PmItem{freqs[s], {static_cast<int>(s)}});
    }
  }
  if (items.empty()) {
    return lengths;
  }
  if (items.size() == 1) {
    lengths[static_cast<size_t>(items[0].symbols[0])] = 1;
    return lengths;
  }
  assert(items.size() <= (1u << max_bits) && "alphabet too large for max_bits");
  std::sort(items.begin(), items.end(),
            [](const PmItem& a, const PmItem& b) { return a.weight < b.weight; });

  // Package-merge: L_1 = items; L_k = merge(items, package(L_{k-1})).
  std::vector<PmItem> level = items;
  std::vector<PmItem> packaged;
  std::vector<PmItem> next;
  for (int k = 1; k < max_bits; ++k) {
    packaged.clear();
    for (size_t i = 0; i + 1 < level.size(); i += 2) {
      PmItem pkg;
      pkg.weight = level[i].weight + level[i + 1].weight;
      pkg.symbols = level[i].symbols;
      pkg.symbols.insert(pkg.symbols.end(), level[i + 1].symbols.begin(),
                         level[i + 1].symbols.end());
      packaged.push_back(std::move(pkg));
    }
    MergeSorted(items, packaged, next);
    level.swap(next);
  }

  const size_t take = 2 * items.size() - 2;
  assert(take <= level.size());
  for (size_t i = 0; i < take; ++i) {
    for (int s : level[i].symbols) {
      ++lengths[static_cast<size_t>(s)];
    }
  }
  return lengths;
}

HuffmanEncoder::HuffmanEncoder(const std::vector<uint8_t>& lengths)
    : lengths_(lengths), reversed_codes_(lengths.size(), 0) {
  uint32_t bl_count[kMaxHuffmanBits + 2] = {};
  for (uint8_t len : lengths_) {
    assert(len <= kMaxHuffmanBits);
    ++bl_count[len];
  }
  bl_count[0] = 0;
  uint32_t next_code[kMaxHuffmanBits + 2] = {};
  uint32_t code = 0;
  for (int len = 1; len <= kMaxHuffmanBits; ++len) {
    code = (code + bl_count[len - 1]) << 1;
    next_code[len] = code;
  }
  for (size_t s = 0; s < lengths_.size(); ++s) {
    const uint8_t len = lengths_[s];
    if (len == 0) {
      continue;
    }
    uint32_t c = next_code[len]++;
    // Reverse the code so PutBits (LSB-first) emits it MSB-first on the wire.
    uint32_t rev = 0;
    for (int b = 0; b < len; ++b) {
      rev = (rev << 1) | ((c >> b) & 1);
    }
    reversed_codes_[s] = rev;
  }
}

void HuffmanEncoder::Encode(BitWriter& out, int symbol) const {
  assert(symbol >= 0 && static_cast<size_t>(symbol) < lengths_.size());
  assert(lengths_[static_cast<size_t>(symbol)] > 0 && "encoding symbol with no code");
  out.PutBits(reversed_codes_[static_cast<size_t>(symbol)],
              lengths_[static_cast<size_t>(symbol)]);
}

Result<HuffmanDecoder> HuffmanDecoder::Build(const std::vector<uint8_t>& lengths) {
  HuffmanDecoder dec;
  for (uint8_t len : lengths) {
    if (len > kMaxHuffmanBits) {
      return CorruptData("huffman: code length exceeds limit");
    }
    ++dec.count_[len];
  }
  dec.count_[0] = 0;
  // Kraft inequality check: the code must not be over-subscribed.
  uint64_t kraft = 0;
  for (int len = 1; len <= kMaxHuffmanBits; ++len) {
    kraft += static_cast<uint64_t>(dec.count_[len]) << (kMaxHuffmanBits - len);
  }
  if (kraft > (1ull << kMaxHuffmanBits)) {
    return CorruptData("huffman: over-subscribed code length table");
  }
  uint32_t code = 0;
  uint32_t index = 0;
  for (int len = 1; len <= kMaxHuffmanBits; ++len) {
    code = (code + dec.count_[len - 1]) << 1;
    dec.first_code_[len] = code;
    dec.first_index_[len] = index;
    index += dec.count_[len];
  }
  dec.symbols_.resize(index);
  std::vector<uint32_t> fill(kMaxHuffmanBits + 2, 0);
  for (size_t s = 0; s < lengths.size(); ++s) {
    const uint8_t len = lengths[s];
    if (len > 0) {
      dec.symbols_[dec.first_index_[len] + fill[len]++] = static_cast<int>(s);
    }
  }
  return dec;
}

int HuffmanDecoder::Decode(BitReader& in) const {
  uint32_t code = 0;
  for (int len = 1; len <= kMaxHuffmanBits; ++len) {
    const int bit = in.ReadBit();
    if (bit < 0) {
      return -1;
    }
    code = (code << 1) | static_cast<uint32_t>(bit);
    if (code >= first_code_[len] && code - first_code_[len] < count_[len]) {
      return symbols_[first_index_[len] + (code - first_code_[len])];
    }
  }
  return -1;
}

}  // namespace loggrep
