// Canonical, length-limited Huffman coding.
//
// Code lengths are computed with the package-merge algorithm, which yields
// optimal codes under a maximum-length constraint (15 bits here, as in
// deflate). Codes are assigned canonically from the lengths, so only the
// length table needs to be serialized with each compressed block.
#ifndef SRC_CODEC_HUFFMAN_H_
#define SRC_CODEC_HUFFMAN_H_

#include <cstdint>
#include <vector>

#include "src/codec/bitstream.h"
#include "src/common/result.h"

namespace loggrep {

inline constexpr int kMaxHuffmanBits = 15;

// Optimal length-limited code lengths for the given symbol frequencies.
// Symbols with zero frequency get length 0 (no code). If only one symbol has
// nonzero frequency it is assigned length 1.
std::vector<uint8_t> BuildCodeLengths(const std::vector<uint64_t>& freqs,
                                      int max_bits = kMaxHuffmanBits);

class HuffmanEncoder {
 public:
  // `lengths[i]` is the code length of symbol i (0 = unused).
  explicit HuffmanEncoder(const std::vector<uint8_t>& lengths);

  void Encode(BitWriter& out, int symbol) const;
  uint8_t LengthOf(int symbol) const { return lengths_[symbol]; }

 private:
  std::vector<uint8_t> lengths_;
  std::vector<uint32_t> reversed_codes_;  // bit-reversed for LSB-first packing
};

class HuffmanDecoder {
 public:
  // Builds the canonical decoding tables. Fails on an over-subscribed code.
  static Result<HuffmanDecoder> Build(const std::vector<uint8_t>& lengths);

  // Decodes one symbol; returns -1 on malformed input / stream end.
  int Decode(BitReader& in) const;

 private:
  HuffmanDecoder() = default;

  // first_code_[len], first_index_[len]: canonical decode by walking lengths.
  uint32_t first_code_[kMaxHuffmanBits + 2] = {};
  uint32_t first_index_[kMaxHuffmanBits + 2] = {};
  uint32_t count_[kMaxHuffmanBits + 2] = {};
  std::vector<int> symbols_;  // symbols ordered by (length, symbol id)
};

}  // namespace loggrep

#endif  // SRC_CODEC_HUFFMAN_H_
