#include "src/codec/codec.h"

#include "src/common/bytes.h"

namespace loggrep {

std::string Codec::Compress(std::string_view raw) const {
  ByteWriter out;
  out.PutU8(id());
  out.PutVarint(raw.size());
  out.PutBytes(CompressPayload(raw));
  return out.Take();
}

Result<std::string> Codec::Decompress(std::string_view blob) const {
  ByteReader in(blob);
  Result<uint8_t> got_id = in.ReadU8();
  if (!got_id.ok()) {
    return got_id.status();
  }
  if (*got_id != id()) {
    return CorruptData("codec: blob was produced by a different codec");
  }
  Result<uint64_t> raw_size = in.ReadVarint();
  if (!raw_size.ok()) {
    return raw_size.status();
  }
  Result<std::string_view> payload = in.ReadBytes(in.remaining());
  if (!payload.ok()) {
    return payload.status();
  }
  // Decompression-bomb defense: validate the declared raw size before any
  // codec allocates for it. Both checks are overflow-safe (the multiply is
  // guarded by the absolute cap on raw_size, and payload sizes are real
  // in-memory buffer sizes).
  if (*raw_size > kMaxDecompressedBytes) {
    return CorruptData("codec: declared raw size exceeds absolute cap");
  }
  if (*raw_size > kExpansionFloorBytes &&
      *raw_size > payload->size() * kMaxExpansionRatio) {
    return CorruptData("codec: declared raw size exceeds expansion cap");
  }
  return DecompressPayload(*payload, static_cast<size_t>(*raw_size));
}

Result<const Codec*> CodecById(uint8_t id) {
  switch (id) {
    case 1:
      return &GetGzipCodec();
    case 2:
      return &GetZstdCodec();
    case 3:
      return &GetXzCodec();
    default:
      return CorruptData("codec: unknown codec id");
  }
}

Result<std::string> DecompressAny(std::string_view blob) {
  if (blob.empty()) {
    return CorruptData("codec: empty blob");
  }
  Result<const Codec*> codec = CodecById(static_cast<uint8_t>(blob[0]));
  if (!codec.ok()) {
    return codec.status();
  }
  return (*codec)->Decompress(blob);
}

}  // namespace loggrep
