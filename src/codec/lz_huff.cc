#include "src/codec/lz_huff.h"

#include <algorithm>
#include <vector>

#include "src/codec/huffman.h"
#include "src/common/bytes.h"

namespace loggrep {
namespace {

// Alphabet layout for the literal/length code: 0-255 literals, 256 EOB,
// 257+ length buckets of (match_len - kMinMatch).
constexpr int kEob = 256;
constexpr int kLenCodeBase = 257;
constexpr int kNumLenCodes = 64;
constexpr int kLitLenAlphabet = kLenCodeBase + kNumLenCodes;
// Distance symbol 0 repeats the previous match's distance (LZMA's rep0 idea:
// structured logs re-reference the same stride constantly); symbols >= 1 are
// bucket codes shifted by one.
constexpr int kRepDist = 0;
constexpr int kDistCodeBase = 1;
constexpr int kNumDistCodes = 85;  // covers distances beyond a 1 MiB window

constexpr uint8_t kBlockStored = 0;
constexpr uint8_t kBlockHuffman = 1;

// One LZ token: dist == 0 encodes a literal (len_or_lit is the byte value).
struct Tok {
  uint32_t len_or_lit;
  uint32_t dist;
};

void WriteNibbleTable(ByteWriter& out, const std::vector<uint8_t>& lengths) {
  size_t n = lengths.size();
  while (n > 0 && lengths[n - 1] == 0) {
    --n;
  }
  out.PutVarint(n);
  for (size_t i = 0; i < n; i += 2) {
    const uint8_t lo = lengths[i];
    const uint8_t hi = (i + 1 < n) ? lengths[i + 1] : 0;
    out.PutU8(static_cast<uint8_t>(lo | (hi << 4)));
  }
}

Result<std::vector<uint8_t>> ReadNibbleTable(ByteReader& in, size_t alphabet) {
  Result<uint64_t> n = in.ReadVarint();
  if (!n.ok()) {
    return n.status();
  }
  if (*n > alphabet) {
    return CorruptData("lz_huff: length table larger than alphabet");
  }
  std::vector<uint8_t> lengths(alphabet, 0);
  for (size_t i = 0; i < *n; i += 2) {
    Result<uint8_t> b = in.ReadU8();
    if (!b.ok()) {
      return b.status();
    }
    lengths[i] = *b & 0x0F;
    if (i + 1 < *n) {
      lengths[i + 1] = *b >> 4;
    }
  }
  return lengths;
}

// Emits one entropy block covering raw bytes [block_start, block_end).
void EmitBlock(ByteWriter& out, std::string_view raw, size_t block_start,
               size_t block_end, const std::vector<Tok>& tokens) {
  const size_t raw_len = block_end - block_start;
  std::vector<uint64_t> litlen_freq(kLitLenAlphabet, 0);
  std::vector<uint64_t> dist_freq(kNumDistCodes, 0);
  uint64_t extra_bits = 0;
  uint32_t prev_dist = 0;
  for (const Tok& t : tokens) {
    if (t.dist == 0) {
      ++litlen_freq[t.len_or_lit];
    } else {
      const Bucket lb = BucketizeValue(t.len_or_lit - kMinMatch);
      ++litlen_freq[kLenCodeBase + lb.code];
      extra_bits += lb.extra_bits;
      if (t.dist == prev_dist) {
        ++dist_freq[kRepDist];
      } else {
        const Bucket db = BucketizeValue(t.dist - 1);
        ++dist_freq[kDistCodeBase + db.code];
        extra_bits += db.extra_bits;
      }
      prev_dist = t.dist;
    }
  }
  ++litlen_freq[kEob];

  const std::vector<uint8_t> ll_lengths = BuildCodeLengths(litlen_freq);
  const std::vector<uint8_t> d_lengths = BuildCodeLengths(dist_freq);

  uint64_t payload_bits = extra_bits;
  for (int s = 0; s < kLitLenAlphabet; ++s) {
    payload_bits += litlen_freq[s] * ll_lengths[s];
  }
  for (int s = 0; s < kNumDistCodes; ++s) {
    payload_bits += dist_freq[s] * d_lengths[s];
  }
  // Table overhead: ~ (alphabet sizes)/2 bytes. Fall back to a stored block
  // when entropy coding cannot beat the raw bytes.
  const uint64_t est_bytes =
      payload_bits / 8 + (kLitLenAlphabet + kNumDistCodes) / 2 + 16;
  if (est_bytes >= raw_len) {
    out.PutU8(kBlockStored);
    out.PutVarint(raw_len);
    out.PutBytes(raw.substr(block_start, raw_len));
    return;
  }

  out.PutU8(kBlockHuffman);
  out.PutVarint(raw_len);
  WriteNibbleTable(out, ll_lengths);
  WriteNibbleTable(out, d_lengths);

  const HuffmanEncoder ll_enc(ll_lengths);
  const HuffmanEncoder d_enc(d_lengths);
  BitWriter bw;
  prev_dist = 0;
  for (const Tok& t : tokens) {
    if (t.dist == 0) {
      ll_enc.Encode(bw, static_cast<int>(t.len_or_lit));
    } else {
      const Bucket lb = BucketizeValue(t.len_or_lit - kMinMatch);
      ll_enc.Encode(bw, kLenCodeBase + static_cast<int>(lb.code));
      if (lb.extra_bits > 0) {
        bw.PutBits(lb.extra_value, static_cast<int>(lb.extra_bits));
      }
      if (t.dist == prev_dist) {
        d_enc.Encode(bw, kRepDist);
      } else {
        const Bucket db = BucketizeValue(t.dist - 1);
        d_enc.Encode(bw, kDistCodeBase + static_cast<int>(db.code));
        if (db.extra_bits > 0) {
          bw.PutBits(db.extra_value, static_cast<int>(db.extra_bits));
        }
      }
      prev_dist = t.dist;
    }
  }
  ll_enc.Encode(bw, kEob);
  const std::string bits = bw.Finish();
  out.PutLengthPrefixed(bits);
}

}  // namespace

Bucket BucketizeValue(uint32_t v) {
  if (v < 4) {
    return Bucket{v, 0, 0};
  }
  uint32_t eb = 1;
  while (4u * ((1u << (eb + 1)) - 1) <= v) {
    ++eb;
  }
  const uint32_t within = v - 4u * ((1u << eb) - 1);
  return Bucket{4 + 4 * (eb - 1) + (within >> eb), eb, within & ((1u << eb) - 1)};
}

void BucketRange(uint32_t code, uint32_t* base, uint32_t* extra_bits) {
  if (code < 4) {
    *base = code;
    *extra_bits = 0;
    return;
  }
  const uint32_t eb = (code - 4) / 4 + 1;
  const uint32_t idx = (code - 4) % 4;
  *base = 4u * ((1u << eb) - 1) + (idx << eb);
  *extra_bits = eb;
}

std::string LzHuffCodec::CompressPayload(std::string_view raw) const {
  ByteWriter out;
  if (raw.empty()) {
    return out.Take();
  }
  HashChainMatcher matcher(raw, params_);
  std::vector<Tok> tokens;
  tokens.reserve(params_.block_tokens);
  size_t block_start = 0;
  size_t pos = 0;
  uint32_t rep_dist = 0;  // previous emitted match distance
  while (pos < raw.size()) {
    HashChainMatcher::Match best = matcher.FindBest(pos, &rep_dist, 1);
    bool inserted_pos = false;
    if (best.len >= kMinMatch && params_.lazy && best.len < params_.nice_len &&
        pos + 1 < raw.size()) {
      matcher.Insert(pos);
      inserted_pos = true;
      const HashChainMatcher::Match next = matcher.FindBest(pos + 1, &rep_dist, 1);
      if (next.score > best.score) {
        tokens.push_back(Tok{static_cast<uint8_t>(raw[pos]), 0});
        ++pos;
        if (tokens.size() >= params_.block_tokens) {
          EmitBlock(out, raw, block_start, pos, tokens);
          tokens.clear();
          block_start = pos;
        }
        continue;
      }
    }
    if (best.len >= kMinMatch) {
      tokens.push_back(Tok{best.len, best.dist});
      rep_dist = best.dist;
      // Register match-covered positions as future sources. For very long
      // matches only a prefix is inserted (zlib-style fast path).
      const size_t insert_end =
          pos + std::min<size_t>(best.len, best.len > 4096 ? 32 : best.len);
      for (size_t p = pos + (inserted_pos ? 1 : 0); p < insert_end; ++p) {
        matcher.Insert(p);
      }
      pos += best.len;
    } else {
      if (!inserted_pos) {
        matcher.Insert(pos);
      }
      tokens.push_back(Tok{static_cast<uint8_t>(raw[pos]), 0});
      ++pos;
    }
    if (tokens.size() >= params_.block_tokens) {
      EmitBlock(out, raw, block_start, pos, tokens);
      tokens.clear();
      block_start = pos;
    }
  }
  if (!tokens.empty() || block_start < raw.size()) {
    EmitBlock(out, raw, block_start, raw.size(), tokens);
  }
  return out.Take();
}

Result<std::string> LzHuffCodec::DecompressPayload(std::string_view payload,
                                                   size_t raw_size) const {
  std::string out;
  out.reserve(std::min(raw_size, kDecompressReserveBytes));
  ByteReader in(payload);
  while (!in.AtEnd()) {
    Result<uint8_t> type = in.ReadU8();
    if (!type.ok()) {
      return type.status();
    }
    Result<uint64_t> raw_len = in.ReadVarint();
    if (!raw_len.ok()) {
      return raw_len.status();
    }
    if (out.size() + *raw_len > raw_size) {
      return CorruptData("lz_huff: block overflows declared raw size");
    }
    if (*type == kBlockStored) {
      Result<std::string_view> bytes = in.ReadBytes(static_cast<size_t>(*raw_len));
      if (!bytes.ok()) {
        return bytes.status();
      }
      out.append(bytes->data(), bytes->size());
      continue;
    }
    if (*type != kBlockHuffman) {
      return CorruptData("lz_huff: unknown block type");
    }
    Result<std::vector<uint8_t>> ll_lengths = ReadNibbleTable(in, kLitLenAlphabet);
    if (!ll_lengths.ok()) {
      return ll_lengths.status();
    }
    Result<std::vector<uint8_t>> d_lengths = ReadNibbleTable(in, kNumDistCodes);
    if (!d_lengths.ok()) {
      return d_lengths.status();
    }
    Result<HuffmanDecoder> ll_dec = HuffmanDecoder::Build(*ll_lengths);
    if (!ll_dec.ok()) {
      return ll_dec.status();
    }
    Result<HuffmanDecoder> d_dec = HuffmanDecoder::Build(*d_lengths);
    if (!d_dec.ok()) {
      return d_dec.status();
    }
    Result<std::string_view> bits = in.ReadLengthPrefixed();
    if (!bits.ok()) {
      return bits.status();
    }
    BitReader br(*bits);
    const size_t block_end = out.size() + static_cast<size_t>(*raw_len);
    uint32_t prev_dist = 0;
    while (true) {
      const int sym = ll_dec->Decode(br);
      if (sym < 0) {
        return CorruptData("lz_huff: truncated bitstream");
      }
      if (sym == kEob) {
        break;
      }
      if (sym < 256) {
        if (out.size() >= block_end) {
          return CorruptData("lz_huff: literal overflows block");
        }
        out.push_back(static_cast<char>(sym));
        continue;
      }
      uint32_t base = 0;
      uint32_t eb = 0;
      BucketRange(static_cast<uint32_t>(sym - kLenCodeBase), &base, &eb);
      int64_t extra = eb > 0 ? br.ReadBits(static_cast<int>(eb)) : 0;
      if (extra < 0) {
        return CorruptData("lz_huff: truncated length extra bits");
      }
      const uint32_t len = kMinMatch + base + static_cast<uint32_t>(extra);
      const int dsym = d_dec->Decode(br);
      if (dsym < 0) {
        return CorruptData("lz_huff: truncated distance symbol");
      }
      uint32_t dist;
      if (dsym == kRepDist) {
        if (prev_dist == 0) {
          return CorruptData("lz_huff: rep distance with no prior match");
        }
        dist = prev_dist;
      } else {
        BucketRange(static_cast<uint32_t>(dsym - kDistCodeBase), &base, &eb);
        extra = eb > 0 ? br.ReadBits(static_cast<int>(eb)) : 0;
        if (extra < 0) {
          return CorruptData("lz_huff: truncated distance extra bits");
        }
        dist = 1 + base + static_cast<uint32_t>(extra);
      }
      prev_dist = dist;
      if (dist > out.size()) {
        return CorruptData("lz_huff: match distance before stream start");
      }
      if (out.size() + len > block_end) {
        return CorruptData("lz_huff: match overflows block");
      }
      // Byte-wise copy: overlapping matches (dist < len) are well defined.
      size_t src = out.size() - dist;
      for (uint32_t i = 0; i < len; ++i) {
        out.push_back(out[src + i]);
      }
    }
    if (out.size() != block_end) {
      return CorruptData("lz_huff: block shorter than declared");
    }
  }
  if (out.size() != raw_size) {
    return CorruptData("lz_huff: payload does not reproduce declared raw size");
  }
  return out;
}

}  // namespace loggrep
