// gzip stand-in: 32 KiB window, moderate chain depth, one-step lazy matching.
#include "src/codec/lz_huff.h"

namespace loggrep {

const Codec& GetGzipCodec() {
  static const LzHuffCodec codec("gzip-like", 1,
                                 LzParams{
                                     .window_size = 32 * 1024,
                                     .max_chain = 48,
                                     .nice_len = 128,
                                     .max_match = 1u << 15,
                                     .lazy = true,
                                     .block_tokens = 1u << 16,
                                 });
  return codec;
}

}  // namespace loggrep
