// zstd stand-in: byte-aligned LZ with a 64 KiB window and no entropy stage
// (LZ4-style sequence format). Fastest codec in the repository, used by the
// CLP-like baseline as its second-stage compressor.
//
// Payload format (sequence stream):
//   token byte = (literal_len << 4) | match_len_code
//   literal_len == 15  -> 255-continuation extension bytes follow
//   literal bytes
//   [u16 LE offset][match extension bytes if match_len_code == 15]
// The final sequence carries literals only: its offset is absent and its
// match nibble is 0; it is recognized by the input ending after the literals.
#include <algorithm>
#include <cstring>
#include <vector>

#include "src/codec/codec.h"

namespace loggrep {
namespace {

constexpr uint32_t kMinMatchLz4 = 4;
constexpr uint32_t kWindow = 65535;
constexpr int kHashBits = 16;

uint32_t Hash4(const char* p) {
  uint32_t v = 0;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

void PutExtension(std::string& out, uint32_t v) {
  while (v >= 255) {
    out.push_back(static_cast<char>(0xFF));
    v -= 255;
  }
  out.push_back(static_cast<char>(v));
}

// Appends one sequence. A zero `match_len` marks the terminal literals-only
// sequence (no offset is written).
void PutSequence(std::string& out, std::string_view literals, uint32_t match_len,
                 uint32_t offset) {
  const uint32_t lit_len = static_cast<uint32_t>(literals.size());
  const uint32_t lit_nib = lit_len < 15 ? lit_len : 15;
  uint32_t match_nib = 0;
  if (match_len > 0) {
    const uint32_t mcode = match_len - kMinMatchLz4;
    match_nib = mcode < 15 ? mcode : 15;
  }
  out.push_back(static_cast<char>((lit_nib << 4) | match_nib));
  if (lit_nib == 15) {
    PutExtension(out, lit_len - 15);
  }
  out.append(literals.data(), literals.size());
  if (match_len > 0) {
    out.push_back(static_cast<char>(offset & 0xFF));
    out.push_back(static_cast<char>((offset >> 8) & 0xFF));
    if (match_nib == 15) {
      PutExtension(out, match_len - kMinMatchLz4 - 15);
    }
  }
}

class Lz4LikeCodec : public Codec {
 public:
  const char* name() const override { return "zstd-like"; }
  uint8_t id() const override { return 2; }

 protected:
  std::string CompressPayload(std::string_view raw) const override {
    std::string out;
    out.reserve(raw.size() / 2 + 16);
    if (raw.empty()) {
      return out;
    }
    std::vector<int64_t> table(size_t{1} << kHashBits, -1);
    const char* base = raw.data();
    size_t anchor = 0;  // start of pending literals
    size_t pos = 0;
    const size_t limit = raw.size() >= kMinMatchLz4 ? raw.size() - kMinMatchLz4 : 0;
    while (pos < limit) {
      const uint32_t h = Hash4(base + pos);
      const int64_t cand = table[h];
      table[h] = static_cast<int64_t>(pos);
      if (cand >= 0 && pos - static_cast<size_t>(cand) <= kWindow &&
          std::memcmp(base + cand, base + pos, kMinMatchLz4) == 0) {
        size_t len = kMinMatchLz4;
        const size_t max_len = raw.size() - pos;
        while (len < max_len && base[cand + len] == base[pos + len]) {
          ++len;
        }
        PutSequence(out, raw.substr(anchor, pos - anchor),
                    static_cast<uint32_t>(len),
                    static_cast<uint32_t>(pos - static_cast<size_t>(cand)));
        // Seed the table inside the match so runs keep finding sources.
        const size_t step = len > 64 ? 13 : 3;
        for (size_t p = pos + 1; p + kMinMatchLz4 <= raw.size() && p < pos + len;
             p += step) {
          table[Hash4(base + p)] = static_cast<int64_t>(p);
        }
        pos += len;
        anchor = pos;
      } else {
        ++pos;
      }
    }
    PutSequence(out, raw.substr(anchor), 0, 0);
    return out;
  }

  Result<std::string> DecompressPayload(std::string_view payload,
                                        size_t raw_size) const override {
    std::string out;
    out.reserve(std::min(raw_size, kDecompressReserveBytes));
    size_t pos = 0;
    auto read_extension = [&](uint32_t& v) -> bool {
      while (true) {
        if (pos >= payload.size()) {
          return false;
        }
        const uint8_t b = static_cast<uint8_t>(payload[pos++]);
        v += b;
        if (b != 0xFF) {
          return true;
        }
      }
    };
    while (pos < payload.size()) {
      const uint8_t token = static_cast<uint8_t>(payload[pos++]);
      uint32_t lit_len = token >> 4;
      if (lit_len == 15 && !read_extension(lit_len)) {
        return CorruptData("zstd-like: truncated literal length");
      }
      if (pos + lit_len > payload.size()) {
        return CorruptData("zstd-like: truncated literals");
      }
      if (out.size() + lit_len > raw_size) {
        return CorruptData("zstd-like: literals overflow raw size");
      }
      out.append(payload.data() + pos, lit_len);
      pos += lit_len;
      if (pos >= payload.size()) {
        break;  // terminal literals-only sequence
      }
      if (pos + 2 > payload.size()) {
        return CorruptData("zstd-like: truncated offset");
      }
      const uint32_t offset = static_cast<uint8_t>(payload[pos]) |
                              (static_cast<uint32_t>(static_cast<uint8_t>(payload[pos + 1])) << 8);
      pos += 2;
      uint32_t match_len = (token & 0x0F);
      if (match_len == 15 && !read_extension(match_len)) {
        return CorruptData("zstd-like: truncated match length");
      }
      match_len += kMinMatchLz4;
      if (offset == 0 || offset > out.size()) {
        return CorruptData("zstd-like: bad match offset");
      }
      if (out.size() + match_len > raw_size) {
        return CorruptData("zstd-like: match overflows raw size");
      }
      size_t src = out.size() - offset;
      for (uint32_t i = 0; i < match_len; ++i) {
        out.push_back(out[src + i]);
      }
    }
    if (out.size() != raw_size) {
      return CorruptData("zstd-like: payload does not reproduce declared raw size");
    }
    return out;
  }
};

}  // namespace

const Codec& GetZstdCodec() {
  static const Lz4LikeCodec codec;
  return codec;
}

}  // namespace loggrep
