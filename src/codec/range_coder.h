// Binary range coder with adaptive probability models (LZMA-style).
//
// Probabilities are 11-bit adaptive counters updated with shift-by-5 decay.
// The encoder uses the classic carry-propagating low/cache scheme; the
// decoder mirrors it with a 32-bit code register. Bit-tree helpers code
// fixed-width symbols MSB-first through a tree of bit models.
#ifndef SRC_CODEC_RANGE_CODER_H_
#define SRC_CODEC_RANGE_CODER_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace loggrep {

using BitProb = uint16_t;
inline constexpr BitProb kProbInit = 1024;  // p(bit=0) = 0.5 in 11-bit scale

class RangeEncoder {
 public:
  void EncodeBit(BitProb& prob, int bit);
  // `nbits` uniform bits, MSB first.
  void EncodeDirectBits(uint32_t value, int nbits);
  std::string Finish();

 private:
  void ShiftLow();

  std::string out_;
  uint64_t low_ = 0;
  uint32_t range_ = 0xFFFFFFFFu;
  uint8_t cache_ = 0;
  uint64_t cache_size_ = 1;
};

class RangeDecoder {
 public:
  explicit RangeDecoder(std::string_view in);

  int DecodeBit(BitProb& prob);
  uint32_t DecodeDirectBits(int nbits);

  // True when the decoder has consumed bytes past the input (corrupt data).
  bool Overran() const { return overran_; }

 private:
  uint8_t NextByte();
  void Normalize();

  std::string_view in_;
  size_t pos_ = 0;
  uint32_t range_ = 0xFFFFFFFFu;
  uint32_t code_ = 0;
  bool overran_ = false;
};

// Bit-tree coding of `nbits`-wide symbols; `probs` must hold 1 << nbits
// entries initialized to kProbInit.
void EncodeBitTree(RangeEncoder& rc, BitProb* probs, int nbits, uint32_t symbol);
uint32_t DecodeBitTree(RangeDecoder& rc, BitProb* probs, int nbits);

}  // namespace loggrep

#endif  // SRC_CODEC_RANGE_CODER_H_
