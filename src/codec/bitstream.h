// Bit-level IO for the entropy-coded codecs.
//
// Bits are packed LSB-first within each byte (deflate convention). Huffman
// codes are written most-significant-bit first, which means the encoder
// pre-reverses each code so that a decoder reading single bits in stream
// order reconstructs the canonical code value MSB-first.
#ifndef SRC_CODEC_BITSTREAM_H_
#define SRC_CODEC_BITSTREAM_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace loggrep {

class BitWriter {
 public:
  // Writes the low `nbits` bits of `value`, LSB first. nbits <= 32.
  void PutBits(uint32_t value, int nbits);
  // Pads to a byte boundary with zero bits and returns the buffer.
  std::string Finish();

  size_t BitCount() const { return buf_.size() * 8 + static_cast<size_t>(nbits_); }

 private:
  std::string buf_;
  uint64_t acc_ = 0;
  int nbits_ = 0;
};

class BitReader {
 public:
  explicit BitReader(std::string_view data) : data_(data) {}

  // Reads one bit; returns 0/1, or -1 past end of stream.
  int ReadBit();
  // Reads `nbits` bits LSB-first; returns -1 past end of stream.
  int64_t ReadBits(int nbits);

  bool Overflowed() const { return overflow_; }

 private:
  std::string_view data_;
  size_t byte_pos_ = 0;
  int bit_pos_ = 0;
  bool overflow_ = false;
};

}  // namespace loggrep

#endif  // SRC_CODEC_BITSTREAM_H_
