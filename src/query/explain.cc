#include "src/query/explain.h"

#include <cstdio>

namespace loggrep {
namespace {

std::string HumanBytes(uint64_t bytes) {
  char buf[32];
  if (bytes >= 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.2f MB", bytes / (1024.0 * 1024.0));
  } else if (bytes >= 1024) {
    std::snprintf(buf, sizeof(buf), "%.1f KB", bytes / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

void AppendTotals(std::string& out, const ExplainTotals& t) {
  out += "visited " + std::to_string(t.visited) + " = pruned " +
         std::to_string(t.pruned) + " + cached " + std::to_string(t.cached) +
         " + decompressed " + std::to_string(t.decompressed) + " (" +
         HumanBytes(t.bytes_decompressed) + ")";
  out += t.Balanced() ? "  [balanced]" : "  [IMBALANCED]";
}

}  // namespace

const char* CapsuleFateName(CapsuleFate fate) {
  switch (fate) {
    case CapsuleFate::kStaticHit:
      return "static-hit";
    case CapsuleFate::kPatternMiss:
      return "pattern-miss";
    case CapsuleFate::kPatternTrivial:
      return "pattern-trivial";
    case CapsuleFate::kStampMaskReject:
      return "stamp-mask";
    case CapsuleFate::kStampLenReject:
      return "stamp-max-length";
    case CapsuleFate::kCacheHit:
      return "cache-hit";
    case CapsuleFate::kDecompressed:
      return "decompressed";
  }
  return "unknown";
}

bool FateIsOpen(CapsuleFate fate) {
  return fate == CapsuleFate::kCacheHit || fate == CapsuleFate::kDecompressed;
}

ExplainTotals BlockExplain::Totals() const {
  ExplainTotals t;
  for (const CapsuleExplain& c : capsules) {
    ++t.visited;
    if (c.fate == CapsuleFate::kCacheHit) {
      ++t.cached;
    } else if (c.fate == CapsuleFate::kDecompressed) {
      ++t.decompressed;
      t.bytes_decompressed += c.bytes;
    } else {
      ++t.pruned;
    }
  }
  return t;
}

ExplainTotals QueryExplain::Totals() const {
  ExplainTotals t;
  for (const BlockExplain& block : blocks) {
    t.Accumulate(block.Totals());
  }
  return t;
}

bool QueryExplain::CheckInvariant(std::string* detail) const {
  for (const BlockExplain& block : blocks) {
    const ExplainTotals t = block.Totals();
    if (!t.Balanced()) {
      if (detail != nullptr) {
        *detail = "block " + std::to_string(block.seq) + ": " +
                  std::to_string(t.pruned) + " pruned + " +
                  std::to_string(t.cached) + " cached + " +
                  std::to_string(t.decompressed) + " decompressed != " +
                  std::to_string(t.visited) + " visited";
      }
      return false;
    }
  }
  if (!Totals().Balanced()) {
    if (detail != nullptr) {
      *detail = "cross-block totals imbalanced";
    }
    return false;
  }
  return true;
}

std::string QueryExplain::Render() const {
  std::string out = "explain: \"" + command + "\"\n";
  for (const BlockExplain& block : blocks) {
    out += "block " + std::to_string(block.seq);
    if (block.block_pruned) {
      out += "  [pruned: " + block.prune_reason + "]\n";
      continue;
    }
    if (block.block_failed) {
      out += "  [FAILED: " + block.failure + "]\n";
      continue;
    }
    out += "  [queried: " + std::to_string(block.hits) + " hit" +
           (block.hits == 1 ? "" : "s") + "]\n";
    // Group capsule fates under the visit that first decided them.
    for (size_t v = 0; v < block.visits.size(); ++v) {
      bool any = false;
      for (const CapsuleExplain& c : block.capsules) {
        if (c.visit != v) {
          continue;
        }
        if (!any) {
          const VarVisit& visit = block.visits[v];
          out += "  ";
          if (visit.slot >= 0) {
            out += "group " + std::to_string(visit.group) + " slot " +
                   std::to_string(visit.slot) + " [" + visit.kind + "]";
          } else {
            out += "[";
            out += visit.kind;
            out += "]";
          }
          if (!visit.keyword.empty()) {
            out += " keyword \"" + visit.keyword + "\"";
          }
          out += "\n";
          any = true;
        }
        out += "    capsule " + std::to_string(c.capsule) + ": " +
               CapsuleFateName(c.fate);
        if (FateIsOpen(c.fate)) {
          out += " (" + HumanBytes(c.bytes) + ")";
        }
        out += "\n";
      }
    }
    out += "  block accounting: ";
    AppendTotals(out, block.Totals());
    out += "\n";
  }
  out += "total accounting: ";
  AppendTotals(out, Totals());
  out += "\n";
  return out;
}

size_t ExplainRecorder::CurrentVisit() {
  if (!has_visit_) {
    BeginStage("query");
  }
  return block_->visits.size() - 1;
}

void ExplainRecorder::BeginVisit(uint32_t group, int32_t slot,
                                 const char* kind, std::string_view keyword) {
  VarVisit visit;
  visit.group = group;
  visit.slot = slot;
  visit.kind = kind;
  visit.keyword.assign(keyword.data(), keyword.size());
  block_->visits.push_back(std::move(visit));
  has_visit_ = true;
}

void ExplainRecorder::BeginStage(const char* kind) {
  VarVisit visit;
  visit.kind = kind;
  block_->visits.push_back(std::move(visit));
  has_visit_ = true;
}

void ExplainRecorder::Record(uint32_t capsule, CapsuleFate fate,
                             uint64_t bytes) {
  const auto it = index_.find(capsule);
  if (it != index_.end()) {
    CapsuleExplain& existing = block_->capsules[it->second];
    // Opened fates upgrade pruned ones; otherwise the first fate sticks.
    if (FateIsOpen(fate) && !FateIsOpen(existing.fate)) {
      existing.fate = fate;
      existing.bytes = bytes;
    }
    return;
  }
  CapsuleExplain c;
  c.capsule = capsule;
  c.fate = fate;
  c.bytes = bytes;
  c.visit = CurrentVisit();
  index_.emplace(capsule, block_->capsules.size());
  block_->capsules.push_back(std::move(c));
}

}  // namespace loggrep
