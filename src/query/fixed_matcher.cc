#include "src/query/fixed_matcher.h"

#include <array>

#include "src/capsule/capsule.h"

namespace loggrep {

std::vector<size_t> BoyerMooreSearch(std::string_view haystack,
                                     std::string_view needle) {
  std::vector<size_t> hits;
  if (needle.empty() || needle.size() > haystack.size()) {
    return hits;
  }
  // Horspool bad-character shift table.
  std::array<size_t, 256> shift;
  shift.fill(needle.size());
  for (size_t i = 0; i + 1 < needle.size(); ++i) {
    shift[static_cast<unsigned char>(needle[i])] = needle.size() - 1 - i;
  }
  size_t pos = 0;
  const size_t last = needle.size() - 1;
  while (pos + needle.size() <= haystack.size()) {
    const unsigned char tail = static_cast<unsigned char>(haystack[pos + last]);
    if (haystack[pos + last] == needle[last] &&
        haystack.compare(pos, needle.size(), needle) == 0) {
      hits.push_back(pos);
      ++pos;
    } else {
      pos += shift[tail];
    }
  }
  return hits;
}

std::vector<size_t> KmpSearch(std::string_view haystack, std::string_view needle) {
  std::vector<size_t> hits;
  if (needle.empty() || needle.size() > haystack.size()) {
    return hits;
  }
  std::vector<size_t> fail(needle.size(), 0);
  for (size_t i = 1; i < needle.size(); ++i) {
    size_t k = fail[i - 1];
    while (k > 0 && needle[i] != needle[k]) {
      k = fail[k - 1];
    }
    if (needle[i] == needle[k]) {
      ++k;
    }
    fail[i] = k;
  }
  size_t k = 0;
  for (size_t i = 0; i < haystack.size(); ++i) {
    while (k > 0 && haystack[i] != needle[k]) {
      k = fail[k - 1];
    }
    if (haystack[i] == needle[k]) {
      ++k;
    }
    if (k == needle.size()) {
      hits.push_back(i + 1 - needle.size());
      k = fail[k - 1];
    }
  }
  return hits;
}

bool ValueMatchesFragment(std::string_view value, FragmentMode mode,
                          std::string_view fragment) {
  switch (mode) {
    case FragmentMode::kExact:
      return value == fragment;
    case FragmentMode::kPrefix:
      return value.substr(0, fragment.size()) == fragment;
    case FragmentMode::kSuffix:
      return value.size() >= fragment.size() &&
             value.substr(value.size() - fragment.size()) == fragment;
    case FragmentMode::kSub:
      return value.find(fragment) != std::string_view::npos;
  }
  return false;
}

std::vector<uint32_t> SearchPaddedColumn(std::string_view blob, uint32_t width,
                                         FragmentMode mode,
                                         std::string_view fragment, bool use_bm) {
  std::vector<uint32_t> rows;
  if (width == 0) {
    // Zero-width column: every value is empty.
    if (fragment.empty() && mode != FragmentMode::kExact) {
      return rows;  // caller treats empty fragments before reaching here
    }
    return rows;
  }
  const uint32_t count = static_cast<uint32_t>(blob.size() / width);
  if (fragment.size() > width) {
    return rows;
  }
  if (mode == FragmentMode::kSub && fragment.size() > 1) {
    // Whole-blob scan; a hit is valid when it lies inside a single cell
    // (fragments never contain the pad byte, so padding cannot match).
    const std::vector<size_t> hits = use_bm ? BoyerMooreSearch(blob, fragment)
                                            : KmpSearch(blob, fragment);
    uint32_t prev_row = UINT32_MAX;
    for (size_t hit : hits) {
      const uint32_t row = static_cast<uint32_t>(hit / width);
      if (row == prev_row) {
        continue;
      }
      if ((hit + fragment.size() - 1) / width == row) {
        rows.push_back(row);
        prev_row = row;
      }
    }
    return rows;
  }
  // Per-cell check path (prefix/suffix/exact, and single-char substrings where
  // a full scan buys nothing).
  for (uint32_t row = 0; row < count; ++row) {
    const std::string_view value = TrimCell(PaddedCell(blob, width, row));
    if (ValueMatchesFragment(value, mode, fragment)) {
      rows.push_back(row);
    }
  }
  return rows;
}

std::vector<uint32_t> CheckPaddedRows(std::string_view blob, uint32_t width,
                                      FragmentMode mode, std::string_view fragment,
                                      const std::vector<uint32_t>& candidates) {
  std::vector<uint32_t> rows;
  if (width == 0) {
    return rows;
  }
  const uint32_t count = static_cast<uint32_t>(blob.size() / width);
  for (uint32_t row : candidates) {
    if (row >= count) {
      continue;
    }
    const std::string_view value = TrimCell(PaddedCell(blob, width, row));
    if (ValueMatchesFragment(value, mode, fragment)) {
      rows.push_back(row);
    }
  }
  return rows;
}

std::vector<uint32_t> SearchDelimitedColumn(std::string_view blob,
                                            FragmentMode mode,
                                            std::string_view fragment) {
  std::vector<uint32_t> rows;
  uint32_t row = 0;
  size_t start = 0;
  for (size_t i = 0; i < blob.size(); ++i) {
    if (blob[i] != '\n') {
      continue;
    }
    const std::string_view value = blob.substr(start, i - start);
    bool match = false;
    if (mode == FragmentMode::kSub && fragment.size() > 1) {
      match = !KmpSearch(value, fragment).empty();
    } else {
      match = ValueMatchesFragment(value, mode, fragment);
    }
    if (match) {
      rows.push_back(row);
    }
    ++row;
    start = i + 1;
  }
  return rows;
}

}  // namespace loggrep
