#include "src/query/fixed_matcher.h"

#include <algorithm>
#include <array>

#include "src/capsule/capsule.h"
#include "src/common/simd.h"

namespace loggrep {
namespace {

// Validates raw-blob hit positions against per-cell trim semantics and
// appends the surviving rows. A hit at byte `pos` lands in row pos/width at
// cell offset pos%width; it counts only when the matched bytes lie entirely
// inside the cell's *value* (the cell up to its first pad byte), and — for
// the anchored modes — at the right place in that value. This is what makes
// the whole-blob scan exactly equivalent to checking TrimCell(cell) per row,
// even on adversarial blobs with garbage after an interior pad byte.
void AppendHitRows(std::string_view blob, uint32_t width, uint32_t count,
                   FragmentMode mode, size_t frag_size,
                   const std::vector<size_t>& hits,
                   std::vector<uint32_t>& rows) {
  uint64_t prev_row = kMaxColumnRows + 1;
  for (size_t pos : hits) {
    const uint64_t row = pos / width;
    if (row >= count) {
      break;  // clamped region or partial trailing cell: not a real row
    }
    if (row == prev_row) {
      continue;  // overlapping kSub hits in one cell
    }
    const size_t off = pos % width;
    const size_t end = off + frag_size;
    if (end > width) {
      continue;  // straddles into the next cell
    }
    const std::string_view cell = blob.substr(row * width, width);
    bool ok = false;
    switch (mode) {
      case FragmentMode::kExact:
        // value == fragment: starts the cell and is terminated right after.
        ok = off == 0 && (end == width || cell[end] == kPadChar);
        break;
      case FragmentMode::kPrefix:
        // Fragment bytes are pad-free, so a hit at offset 0 is inside the
        // value by construction.
        ok = off == 0;
        break;
      case FragmentMode::kSuffix: {
        // Fragment must end the value: terminated right after, and no pad
        // byte before it (else the value ended earlier).
        const bool terminated = end == width || cell[end] == kPadChar;
        ok = terminated && FindByte(cell.substr(0, off), 0, kPadChar) ==
                               std::string_view::npos;
        break;
      }
      case FragmentMode::kSub:
        // Inside the value: no pad byte before the hit.
        ok = FindByte(cell.substr(0, off), 0, kPadChar) ==
             std::string_view::npos;
        break;
    }
    if (ok) {
      rows.push_back(static_cast<uint32_t>(row));
      prev_row = row;
    }
  }
}

}  // namespace

std::vector<size_t> BoyerMooreSearch(std::string_view haystack,
                                     std::string_view needle) {
  std::vector<size_t> hits;
  if (needle.empty() || needle.size() > haystack.size()) {
    return hits;
  }
  // Horspool bad-character shift table.
  std::array<size_t, 256> shift;
  shift.fill(needle.size());
  for (size_t i = 0; i + 1 < needle.size(); ++i) {
    shift[static_cast<unsigned char>(needle[i])] = needle.size() - 1 - i;
  }
  size_t pos = 0;
  const size_t last = needle.size() - 1;
  while (pos + needle.size() <= haystack.size()) {
    const unsigned char tail = static_cast<unsigned char>(haystack[pos + last]);
    if (haystack[pos + last] == needle[last] &&
        haystack.compare(pos, needle.size(), needle) == 0) {
      hits.push_back(pos);
      ++pos;
    } else {
      pos += shift[tail];
    }
  }
  return hits;
}

std::vector<size_t> KmpSearch(std::string_view haystack, std::string_view needle) {
  std::vector<size_t> hits;
  if (needle.empty() || needle.size() > haystack.size()) {
    return hits;
  }
  std::vector<size_t> fail(needle.size(), 0);
  for (size_t i = 1; i < needle.size(); ++i) {
    size_t k = fail[i - 1];
    while (k > 0 && needle[i] != needle[k]) {
      k = fail[k - 1];
    }
    if (needle[i] == needle[k]) {
      ++k;
    }
    fail[i] = k;
  }
  size_t k = 0;
  for (size_t i = 0; i < haystack.size(); ++i) {
    while (k > 0 && haystack[i] != needle[k]) {
      k = fail[k - 1];
    }
    if (haystack[i] == needle[k]) {
      ++k;
    }
    if (k == needle.size()) {
      hits.push_back(i + 1 - needle.size());
      k = fail[k - 1];
    }
  }
  return hits;
}

bool ValueMatchesFragment(std::string_view value, FragmentMode mode,
                          std::string_view fragment) {
  switch (mode) {
    case FragmentMode::kExact:
      return value == fragment;
    case FragmentMode::kPrefix:
      return value.substr(0, fragment.size()) == fragment;
    case FragmentMode::kSuffix:
      return value.size() >= fragment.size() &&
             value.substr(value.size() - fragment.size()) == fragment;
    case FragmentMode::kSub:
      return value.find(fragment) != std::string_view::npos;
  }
  return false;
}

std::vector<uint32_t> SearchPaddedColumn(std::string_view blob, uint32_t width,
                                         FragmentMode mode,
                                         std::string_view fragment, bool use_bm,
                                         uint32_t zero_width_rows) {
  std::vector<uint32_t> rows;
  if (width == 0) {
    // Zero-width column: every value is empty; the caller supplies the row
    // count (see header contract).
    if (ValueMatchesFragment(std::string_view(), mode, fragment)) {
      rows.reserve(zero_width_rows);
      for (uint32_t row = 0; row < zero_width_rows; ++row) {
        rows.push_back(row);
      }
    }
    return rows;
  }
  const uint32_t count = static_cast<uint32_t>(
      std::min<uint64_t>(blob.size() / width, kMaxColumnRows));
  if (fragment.size() > width) {
    return rows;
  }
  if (fragment.empty()) {
    if (mode != FragmentMode::kExact) {
      // Empty fragment: trivially contained in / a prefix / a suffix of
      // every value.
      rows.reserve(count);
      for (uint32_t row = 0; row < count; ++row) {
        rows.push_back(row);
      }
    } else {
      // kExact "": exactly the empty values (cell starts with a pad byte).
      for (uint32_t row = 0; row < count; ++row) {
        if (blob[static_cast<size_t>(row) * width] == kPadChar) {
          rows.push_back(row);
        }
      }
    }
    return rows;
  }
  if (fragment.find(kPadChar) != std::string_view::npos) {
    return rows;  // values end at the first pad byte, so no value matches
  }

  if (ActiveSimdTier() != SimdTier::kScalar) {
    // Vector tiers: one whole-blob candidate scan for every mode; anchoring
    // and trim semantics are enforced per hit.
    std::vector<size_t> hits;
    FindAll(blob, fragment, hits);
    AppendHitRows(blob, width, count, mode, fragment.size(), hits, rows);
    return rows;
  }

  if (mode == FragmentMode::kSub && fragment.size() > 1) {
    // Scalar whole-blob scan (Boyer-Moore or KMP per the ablation switch).
    const std::vector<size_t> hits = use_bm ? BoyerMooreSearch(blob, fragment)
                                            : KmpSearch(blob, fragment);
    AppendHitRows(blob, width, count, mode, fragment.size(), hits, rows);
    return rows;
  }
  // Scalar per-cell check path (prefix/suffix/exact, and single-char
  // substrings where a full scan buys nothing).
  for (uint32_t row = 0; row < count; ++row) {
    const std::string_view value = TrimCell(PaddedCell(blob, width, row));
    if (ValueMatchesFragment(value, mode, fragment)) {
      rows.push_back(row);
    }
  }
  return rows;
}

std::vector<uint32_t> CheckPaddedRows(std::string_view blob, uint32_t width,
                                      FragmentMode mode, std::string_view fragment,
                                      const std::vector<uint32_t>& candidates) {
  std::vector<uint32_t> rows;
  if (width == 0) {
    // Zero-width column: every candidate row holds an empty value (no row
    // bound is derivable from the blob), so filter on the fragment alone.
    if (ValueMatchesFragment(std::string_view(), mode, fragment)) {
      rows = candidates;
    }
    return rows;
  }
  const uint32_t count = static_cast<uint32_t>(
      std::min<uint64_t>(blob.size() / width, kMaxColumnRows));
  for (uint32_t row : candidates) {
    if (row >= count) {
      continue;
    }
    const std::string_view value = TrimCell(PaddedCell(blob, width, row));
    if (ValueMatchesFragment(value, mode, fragment)) {
      rows.push_back(row);
    }
  }
  return rows;
}

std::vector<uint32_t> SearchDelimitedColumn(std::string_view blob,
                                            FragmentMode mode,
                                            std::string_view fragment) {
  std::vector<uint32_t> rows;
  uint64_t row = 0;
  size_t start = 0;
  const auto check = [&](std::string_view value) {
    bool match = false;
    if (mode == FragmentMode::kSub && fragment.size() > 1) {
      match = !KmpSearch(value, fragment).empty();
    } else {
      match = ValueMatchesFragment(value, mode, fragment);
    }
    if (match) {
      rows.push_back(static_cast<uint32_t>(row));
    }
    ++row;
  };
  for (size_t i = 0; i < blob.size() && row <= kMaxColumnRows; ++i) {
    if (blob[i] == '\n') {
      check(blob.substr(start, i - start));
      start = i + 1;
    }
  }
  // A blob that does not end in '\n' (truncated Capsule) still carries a
  // final value; scan it instead of silently dropping it.
  if (start < blob.size() && row <= kMaxColumnRows) {
    check(blob.substr(start));
  }
  return rows;
}

}  // namespace loggrep
