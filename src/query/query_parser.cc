#include "src/query/query_parser.h"

#include <string_view>

#include "src/parser/tokenizer.h"

namespace loggrep {
namespace {

enum class OpWord { kNone, kAnd, kOr, kNot };

OpWord OpOf(std::string_view word) {
  auto equals_ci = [](std::string_view a, std::string_view b) {
    if (a.size() != b.size()) {
      return false;
    }
    for (size_t i = 0; i < a.size(); ++i) {
      const char ca = a[i] >= 'A' && a[i] <= 'Z' ? a[i] - 'A' + 'a' : a[i];
      if (ca != b[i]) {
        return false;
      }
    }
    return true;
  };
  if (equals_ci(word, "and")) {
    return OpWord::kAnd;
  }
  if (equals_ci(word, "or")) {
    return OpWord::kOr;
  }
  if (equals_ci(word, "not")) {
    return OpWord::kNot;
  }
  return OpWord::kNone;
}

// Splits on blanks, except that a double-quoted run ("disk error", "and")
// stays one word, quotes included — the quotes mark it as literal search
// content so it is never read as an operator. An unterminated quote extends
// to the end of the command.
std::vector<std::string_view> SplitWords(std::string_view command) {
  std::vector<std::string_view> words;
  size_t i = 0;
  while (i < command.size()) {
    if (command[i] == ' ' || command[i] == '\t') {
      ++i;
      continue;
    }
    const size_t start = i;
    if (command[i] == '"') {
      ++i;
      while (i < command.size() && command[i] != '"') {
        ++i;
      }
      if (i < command.size()) {
        ++i;  // include the closing quote
      }
    } else {
      while (i < command.size() && command[i] != ' ' && command[i] != '\t') {
        ++i;
      }
    }
    words.push_back(command.substr(start, i - start));
  }
  return words;
}

// A word carrying quotes is always literal content, never an operator.
bool IsQuoted(std::string_view word) {
  return !word.empty() && word.front() == '"';
}

// Strips the surrounding quotes of a quoted word ("and" -> and).
std::string_view Unquote(std::string_view word) {
  if (IsQuoted(word)) {
    word.remove_prefix(1);
    if (!word.empty() && word.back() == '"') {
      word.remove_suffix(1);
    }
  }
  return word;
}

SearchTerm MakeTerm(const std::vector<std::string_view>& words, size_t begin,
                    size_t end) {
  SearchTerm term;
  for (size_t i = begin; i < end; ++i) {
    if (i > begin) {
      term.text += ' ';
    }
    const std::string_view word = Unquote(words[i]);
    term.text.append(word.data(), word.size());
  }
  for (std::string_view kw : TokenizeKeywords(term.text)) {
    // Under containment semantics a leading or trailing '*' is a no-op
    // ("5E9D*" hits exactly the tokens containing "5E9D"), and stripping it
    // lets purely-literal keywords use the fast pattern-matching path.
    while (!kw.empty() && kw.front() == '*') {
      kw.remove_prefix(1);
    }
    while (!kw.empty() && kw.back() == '*') {
      kw.remove_suffix(1);
    }
    if (!kw.empty()) {
      term.keywords.emplace_back(kw);
    }
  }
  return term;
}

}  // namespace

Result<std::unique_ptr<QueryExpr>> ParseQuery(std::string_view command) {
  const std::vector<std::string_view> words = SplitWords(command);
  if (words.empty()) {
    return InvalidArgument("query: empty command");
  }

  std::unique_ptr<QueryExpr> root;
  OpWord pending = OpWord::kNone;
  bool leading = true;
  size_t i = 0;
  while (i < words.size()) {
    const OpWord op = IsQuoted(words[i]) ? OpWord::kNone : OpOf(words[i]);
    if (op != OpWord::kNone) {
      if (pending != OpWord::kNone) {
        return InvalidArgument("query: consecutive operators");
      }
      if (leading && op != OpWord::kNot) {
        return InvalidArgument("query: command starts with an operator");
      }
      pending = op;
      ++i;
      continue;
    }
    // Gather the run of non-operator words into one search string.
    const size_t begin = i;
    while (i < words.size() &&
           (IsQuoted(words[i]) || OpOf(words[i]) == OpWord::kNone)) {
      ++i;
    }
    auto node = std::make_unique<QueryExpr>();
    node->kind = QueryExpr::Kind::kTerm;
    node->term = MakeTerm(words, begin, i);
    if (node->term.keywords.empty()) {
      return InvalidArgument("query: search string has no keywords");
    }

    if (leading && pending == OpWord::kNone) {
      root = std::move(node);
    } else {
      auto parent = std::make_unique<QueryExpr>();
      switch (pending) {
        case OpWord::kNone:
          return InvalidArgument("query: adjacent search strings without operator");
        case OpWord::kAnd:
          parent->kind = QueryExpr::Kind::kAnd;
          break;
        case OpWord::kOr:
          parent->kind = QueryExpr::Kind::kOr;
          break;
        case OpWord::kNot:
          parent->kind = QueryExpr::Kind::kNot;
          break;
      }
      parent->left = std::move(root);  // null for a leading NOT
      parent->right = std::move(node);
      root = std::move(parent);
    }
    pending = OpWord::kNone;
    leading = false;
  }
  if (pending != OpWord::kNone) {
    return InvalidArgument("query: trailing operator");
  }
  if (root == nullptr) {
    return InvalidArgument("query: no search strings");
  }
  return root;
}

}  // namespace loggrep
