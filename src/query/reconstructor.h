// Reconstructor (§3): rebuilds original log entries from Capsules.
//
// Fetching the i-th value of a padded Capsule is O(1); values are substituted
// into the runtime pattern and then into the static pattern, reproducing the
// original line byte-for-byte. Results from different groups merge by line
// number (the logical timestamp this implementation assigns at compression
// time).
#ifndef SRC_QUERY_RECONSTRUCTOR_H_
#define SRC_QUERY_RECONSTRUCTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/query/locator.h"

namespace loggrep {

class Reconstructor {
 public:
  explicit Reconstructor(BoxQuerier* querier) : querier_(querier) {}

  // Original text of row `row` of group `group_idx`.
  std::string RenderRow(uint32_t group_idx, uint32_t row);

  // Original text of the i-th outlier line.
  std::string RenderOutlier(uint32_t outlier_idx);

 private:
  std::string VariableValue(uint32_t group_idx, uint32_t slot, uint32_t row);

  BoxQuerier* querier_;
};

}  // namespace loggrep

#endif  // SRC_QUERY_RECONSTRUCTOR_H_
