// Reconstructor (§3): rebuilds original log entries from Capsules.
//
// Fetching the i-th value of a padded Capsule is O(1); values are substituted
// into the runtime pattern and then into the static pattern, reproducing the
// original line byte-for-byte. Results from different groups merge by line
// number (the logical timestamp this implementation assigns at compression
// time).
//
// Rendering is zero-copy where the bytes already exist: per-slot values are
// string_views into Capsule blobs pinned by the querier, and only
// pattern-rendered values (runtime patterns splicing sub-variables) are
// materialized — into an internal arena, not per-value std::strings. The
// views are internal scratch, invalidated by the next Render* call; callers
// only ever see the final assembled line.
#ifndef SRC_QUERY_RECONSTRUCTOR_H_
#define SRC_QUERY_RECONSTRUCTOR_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/arena.h"
#include "src/query/locator.h"

namespace loggrep {

class Reconstructor {
 public:
  explicit Reconstructor(BoxQuerier* querier) : querier_(querier) {}

  // Appends the original text of row `row` of group `group_idx` to `*out`.
  // `*out` must not alias the reconstructor's internal storage (any caller
  // buffer is fine).
  void RenderRowTo(uint32_t group_idx, uint32_t row, std::string* out);

  // Appends the original text of the i-th outlier line to `*out`.
  void RenderOutlierTo(uint32_t outlier_idx, std::string* out);

  // Allocating conveniences (tests, one-off rendering).
  std::string RenderRow(uint32_t group_idx, uint32_t row);
  std::string RenderOutlier(uint32_t outlier_idx);

 private:
  // View of slot `slot`'s value, valid until the next RenderRowTo call
  // (backed by a pinned Capsule blob or by arena_).
  std::string_view VariableValueView(uint32_t group_idx, uint32_t slot,
                                     uint32_t row);

  BoxQuerier* querier_;
  ValueArena arena_;  // holds pattern-rendered values for the current row
  std::vector<std::string_view> value_views_;     // per-slot scratch
  std::vector<std::string_view> subvalue_views_;  // per-sub-variable scratch
  std::string render_scratch_;  // runtime-pattern assembly buffer
};

}  // namespace loggrep

#endif  // SRC_QUERY_RECONSTRUCTOR_H_
