#include "src/query/box_cache.h"

#include <algorithm>
#include <cstdio>

#include "src/capsule/capsule.h"  // SplitDelimitedBlob
#include "src/common/hash.h"
#include "src/common/trace.h"

namespace loggrep {
namespace {

// Fixed bookkeeping charge per entry: map node + LRU node + shared_ptr
// control block + the lazily materialized split vector's own header. The
// split payload (16 bytes per value) is intentionally approximated by this
// constant plus the blob bytes it views; DESIGN.md documents the tradeoff.
constexpr size_t kEntryOverhead = 128;

// Second, independent FNV seed for the dual-hash identity.
constexpr uint64_t kAltSeed = 0x84222325CBF29CE4ULL;

uint64_t Mix64(uint64_t x) {
  // splitmix64 finalizer.
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

BoxKey BoxKey::FromBytes(std::string_view bytes) {
  BoxKey key;
  key.h1 = Fnv1a64(bytes);
  key.h2 = Fnv1a64(bytes, kAltSeed);
  key.size = bytes.size();
  return key;
}

BoxKey BoxKey::ForSequence(uint64_t namespace_id, uint64_t seq) {
  BoxKey key;
  key.h1 = Mix64(namespace_id);
  key.h2 = Mix64(seq ^ 0xA5A5A5A5A5A5A5A5ULL);
  // Sentinel size: serialized boxes are never this large, so sequence keys
  // can never equal a content key.
  key.size = UINT64_MAX;
  return key;
}

uint64_t BoxKey::NextNamespaceId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

std::string BoxKey::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx%016llx",
                static_cast<unsigned long long>(h1),
                static_cast<unsigned long long>(h2),
                static_cast<unsigned long long>(size));
  return buf;
}

Result<std::shared_ptr<const OpenedBox>> OpenedBox::Open(std::string bytes) {
  // Construct in place on the heap, then parse against the final resting
  // address of `bytes_` — the CapsuleBox keeps views into it.
  std::shared_ptr<OpenedBox> opened(new OpenedBox());
  opened->bytes_ = std::move(bytes);
  Result<CapsuleBox> box = CapsuleBox::Open(opened->bytes_);
  if (!box.ok()) {
    return box.status();
  }
  opened->box_ = std::move(*box);
  return std::shared_ptr<const OpenedBox>(std::move(opened));
}

const std::vector<std::string_view>& CachedCapsule::splits() const {
  std::call_once(split_once_,
                 [this] { splits_ = SplitDelimitedBlob(blob_); });
  return splits_;
}

size_t BoxCache::EntryKeyHash::operator()(const EntryKey& k) const {
  uint64_t h = Mix64(k.box.h1 ^ Mix64(k.box.h2));
  h = Mix64(h ^ k.box.size);
  h = Mix64(h ^ k.capsule);
  return static_cast<size_t>(h);
}

BoxCache::BoxCache(BoxCacheOptions options) : options_(options) {
  if (options_.shards == 0) {
    options_.shards = 1;
  }
  per_shard_budget_ = std::max<size_t>(1, options_.byte_budget / options_.shards);
  shards_.reserve(options_.shards);
  for (size_t i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (options_.metrics != nullptr) {
    m_hits_ = options_.metrics->GetOrCreate("query.box_cache.hits");
    m_misses_ = options_.metrics->GetOrCreate("query.box_cache.misses");
    m_evictions_ = options_.metrics->GetOrCreate("query.box_cache.evictions");
    m_bytes_saved_ =
        options_.metrics->GetOrCreate("query.box_cache.bytes_saved");
    m_bytes_hwm_ =
        options_.metrics->GetOrCreate("query.box_cache.bytes_in_use_hwm");
  }
}

BoxCache::Shard& BoxCache::ShardFor(const EntryKey& key) {
  return *shards_[EntryKeyHash{}(key) % shards_.size()];
}

void BoxCache::EvictOverBudgetLocked(Shard& shard) {
  // Never evict the freshest entry: one oversized capsule must still be
  // usable for the query that loaded it.
  while (shard.bytes > per_shard_budget_ && shard.lru.size() > 1) {
    const EntryKey victim = shard.lru.back();
    auto it = shard.map.find(victim);
    shard.bytes -= it->second.charge;
    shard.map.erase(it);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    if (m_evictions_ != nullptr) {
      m_evictions_->Increment();
    }
  }
}

BoxCache::Entry BoxCache::InsertOrAdopt(const EntryKey& key, Entry entry,
                                        bool* adopted) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    // Raced with another loader: adopt the resident entry, discard ours.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
    *adopted = true;
    return it->second;
  }
  shard.lru.push_front(key);
  entry.lru_it = shard.lru.begin();
  shard.bytes += entry.charge;
  auto inserted = shard.map.emplace(key, entry).first;
  EvictOverBudgetLocked(shard);
  if (m_bytes_hwm_ != nullptr) {
    m_bytes_hwm_->UpdateMax(shard.bytes);
  }
  *adopted = false;
  return inserted->second;
}

Result<std::shared_ptr<const OpenedBox>> BoxCache::GetOrOpenBox(
    const BoxKey& key, const std::function<Result<std::string>()>& load,
    bool* was_hit) {
  const EntryKey ekey{key, UINT64_MAX};
  {
    Shard& shard = ShardFor(ekey);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(ekey);
    if (it != shard.map.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
      box_hits_.fetch_add(1, std::memory_order_relaxed);
      bytes_saved_.fetch_add(it->second.charge, std::memory_order_relaxed);
      if (m_hits_ != nullptr) {
        m_hits_->Increment();
      }
      if (m_bytes_saved_ != nullptr) {
        m_bytes_saved_->Add(it->second.charge);
      }
      if (was_hit != nullptr) {
        *was_hit = true;
      }
      return it->second.box;
    }
  }
  // Miss: load and open outside the lock.
  const TraceSpan span("box_cache.load_box", "query");
  Result<std::string> bytes = load();
  if (!bytes.ok()) {
    return bytes.status();
  }
  Result<std::shared_ptr<const OpenedBox>> opened =
      OpenedBox::Open(std::move(*bytes));
  if (!opened.ok()) {
    return opened.status();
  }
  Entry entry;
  entry.box = *opened;
  entry.charge = entry.box->bytes().size() + kEntryOverhead;
  bool adopted = false;
  Entry resident = InsertOrAdopt(ekey, std::move(entry), &adopted);
  box_misses_.fetch_add(1, std::memory_order_relaxed);
  if (m_misses_ != nullptr) {
    m_misses_->Increment();
  }
  if (was_hit != nullptr) {
    *was_hit = false;
  }
  return resident.box;
}

Result<std::shared_ptr<const CachedCapsule>> BoxCache::GetOrLoadCapsule(
    const BoxKey& key, uint32_t capsule_id,
    const std::function<Result<std::string>()>& load, bool* was_hit) {
  const EntryKey ekey{key, capsule_id};
  {
    Shard& shard = ShardFor(ekey);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(ekey);
    if (it != shard.map.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
      capsule_hits_.fetch_add(1, std::memory_order_relaxed);
      bytes_saved_.fetch_add(it->second.capsule->blob().size(),
                             std::memory_order_relaxed);
      if (m_hits_ != nullptr) {
        m_hits_->Increment();
      }
      if (m_bytes_saved_ != nullptr) {
        m_bytes_saved_->Add(it->second.capsule->blob().size());
      }
      if (was_hit != nullptr) {
        *was_hit = true;
      }
      return it->second.capsule;
    }
  }
  const TraceSpan span("box_cache.load_capsule", "query", "capsule",
                       capsule_id);
  Result<std::string> blob = load();
  if (!blob.ok()) {
    return blob.status();
  }
  Entry entry;
  entry.capsule = std::make_shared<const CachedCapsule>(std::move(*blob));
  entry.charge = entry.capsule->blob().size() + kEntryOverhead;
  bool adopted = false;
  Entry resident = InsertOrAdopt(ekey, std::move(entry), &adopted);
  capsule_misses_.fetch_add(1, std::memory_order_relaxed);
  if (m_misses_ != nullptr) {
    m_misses_->Increment();
  }
  if (was_hit != nullptr) {
    *was_hit = false;
  }
  return resident.capsule;
}

void BoxCache::Clear() {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->map.clear();
    shard->lru.clear();
    shard->bytes = 0;
  }
}

BoxCacheStats BoxCache::Stats() const {
  BoxCacheStats stats;
  stats.box_hits = box_hits_.load(std::memory_order_relaxed);
  stats.box_misses = box_misses_.load(std::memory_order_relaxed);
  stats.capsule_hits = capsule_hits_.load(std::memory_order_relaxed);
  stats.capsule_misses = capsule_misses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.bytes_saved = bytes_saved_.load(std::memory_order_relaxed);
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    stats.bytes_in_use += shard->bytes;
    stats.entries += shard->map.size();
  }
  return stats;
}

}  // namespace loggrep
