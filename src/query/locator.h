// BoxQuerier: per-CapsuleBox query session (the paper's Locator, §5).
//
// Matches single keywords against one group at a time, using — in order —
// static pattern constants, runtime patterns (possible-match enumeration),
// Capsule stamps, and finally fixed-length matching inside the few Capsules
// that survive filtering. Decompressed Capsules are cached for the lifetime
// of the querier, so multi-keyword queries and reconstruction reuse them.
#ifndef SRC_QUERY_LOCATOR_H_
#define SRC_QUERY_LOCATOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/capsule/capsule_box.h"
#include "src/common/rowset.h"
#include "src/query/pattern_match.h"

namespace loggrep {

struct LocatorOptions {
  bool use_stamps = true;  // Capsule-stamp filtering (w/o stamp ablation)
  bool use_bm = true;      // Boyer-Moore on padded columns (vs KMP)
};

struct LocatorStats {
  uint64_t capsules_decompressed = 0;
  uint64_t capsules_stamp_filtered = 0;
  uint64_t bytes_decompressed = 0;
  uint64_t pattern_trivial_hits = 0;
  uint64_t possible_matches = 0;
};

// Stamp check extended to wildcard keywords: literal characters only, with
// the minimum possible expansion length.
bool StampAdmitsKeyword(const CapsuleStamp& stamp, std::string_view keyword);

class BoxQuerier {
 public:
  BoxQuerier(const CapsuleBox& box, LocatorOptions options)
      : box_(box), options_(options) {}

  // Rows of group `group_idx` whose entry contains `keyword` in a token.
  RowSet MatchKeywordInGroup(uint32_t group_idx, std::string_view keyword);

  // Positions (within the outlier list) of raw outlier lines hit by `keyword`.
  RowSet MatchKeywordInOutliers(std::string_view keyword);

  // Decompressed capsule bytes (cached). Returns empty view and latches an
  // error status on failure.
  std::string_view CapsuleBlob(uint32_t id);

  // Values of a delimited capsule (cached; views into the cached blob).
  const std::vector<std::string_view>& DelimitedValues(uint32_t id);

  // Row translation for real variables: present index -> group row.
  const std::vector<uint32_t>& PresentRows(uint32_t group_idx, uint32_t slot);

  const CapsuleBox& box() const { return box_; }
  const LocatorStats& stats() const { return stats_; }
  Status status() const { return status_; }

 private:
  RowSet MatchInWhole(const GroupMeta& group, const WholeVarMeta& wv,
                      std::string_view keyword);
  RowSet MatchInReal(const GroupMeta& group, uint32_t group_idx, uint32_t slot,
                     const RealVarMeta& rv, std::string_view keyword);
  RowSet MatchInNominal(const GroupMeta& group, const NominalVarMeta& nv,
                        std::string_view keyword);

  // Evaluates one possible match's constraint conjunction over the present
  // rows of a real variable; returns present-row indices.
  std::vector<uint32_t> EvaluateConstraints(const RealVarMeta& rv,
                                            const PossibleMatch& match);

  void LatchError(const Status& status) {
    if (status_.ok()) {
      status_ = status;
    }
  }

  const CapsuleBox& box_;
  LocatorOptions options_;
  LocatorStats stats_;
  Status status_;

  std::unordered_map<uint32_t, std::string> blob_cache_;
  std::unordered_map<uint32_t, std::vector<std::string_view>> split_cache_;
  std::unordered_map<uint64_t, std::vector<uint32_t>> present_rows_cache_;
  std::vector<std::string_view> empty_values_;
};

}  // namespace loggrep

#endif  // SRC_QUERY_LOCATOR_H_
