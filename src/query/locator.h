// BoxQuerier: per-CapsuleBox query session (the paper's Locator, §5).
//
// Matches single keywords against one group at a time, using — in order —
// static pattern constants, runtime patterns (possible-match enumeration),
// Capsule stamps, and finally fixed-length matching inside the few Capsules
// that survive filtering. Decompressed Capsules are pinned for the lifetime
// of the querier, so multi-keyword queries and reconstruction reuse them;
// when a shared BoxCache is attached, decompressed Capsules additionally
// persist *across* queriers (and across ParallelQuery workers), so a warm
// repeated or refined query decompresses strictly fewer bytes.
#ifndef SRC_QUERY_LOCATOR_H_
#define SRC_QUERY_LOCATOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/capsule/capsule_box.h"
#include "src/common/rowset.h"
#include "src/query/box_cache.h"
#include "src/query/explain.h"
#include "src/query/pattern_match.h"

namespace loggrep {

struct LocatorOptions {
  bool use_stamps = true;  // Capsule-stamp filtering (w/o stamp ablation)
  bool use_bm = true;      // Boyer-Moore on padded columns (vs KMP)
};

// Per-query cost accounting: decompression work, filter effectiveness,
// shared-cache economics, and per-stage wall time. Stage timings are
// nanoseconds (stamp checks are far sub-microsecond). The prune/open stages
// are filled by the layers above the querier (archive / engine).
struct LocatorStats {
  uint64_t capsules_decompressed = 0;
  uint64_t capsules_stamp_filtered = 0;
  uint64_t bytes_decompressed = 0;
  uint64_t pattern_trivial_hits = 0;
  uint64_t possible_matches = 0;

  // Shared BoxCache economics (zero when no cache is attached).
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t bytes_saved = 0;  // decompressed bytes served from the cache

  // Stage wall time, nanoseconds.
  uint64_t prune_nanos = 0;        // archive: block-level pruning
  uint64_t open_nanos = 0;         // engine: file read + CapsuleBox::Open
  uint64_t stamp_filter_nanos = 0; // querier: stamp admission checks
  uint64_t decompress_nanos = 0;   // querier: Capsule decompression (or fetch)
  uint64_t scan_nanos = 0;         // engine: boolean evaluation / matching
  uint64_t reconstruct_nanos = 0;  // engine: rendering matched rows

  // Field-wise sum (used when aggregating per-block stats).
  void Accumulate(const LocatorStats& other) {
    capsules_decompressed += other.capsules_decompressed;
    capsules_stamp_filtered += other.capsules_stamp_filtered;
    bytes_decompressed += other.bytes_decompressed;
    pattern_trivial_hits += other.pattern_trivial_hits;
    possible_matches += other.possible_matches;
    cache_hits += other.cache_hits;
    cache_misses += other.cache_misses;
    bytes_saved += other.bytes_saved;
    prune_nanos += other.prune_nanos;
    open_nanos += other.open_nanos;
    stamp_filter_nanos += other.stamp_filter_nanos;
    decompress_nanos += other.decompress_nanos;
    scan_nanos += other.scan_nanos;
    reconstruct_nanos += other.reconstruct_nanos;
  }
};

// Stamp check extended to wildcard keywords: literal characters only, with
// the minimum possible expansion length.
bool StampAdmitsKeyword(const CapsuleStamp& stamp, std::string_view keyword);

// Batched stamp evaluation: admits[i] = stamps[i] admits `probe`. One probe
// classification serves every Capsule; each stamp costs two integer compares.
void BatchStampCheck(const std::vector<CapsuleStamp>& stamps,
                     const StampProbe& probe, std::vector<bool>& admits);

class BoxQuerier {
 public:
  BoxQuerier(const CapsuleBox& box, LocatorOptions options)
      : box_(box), options_(options) {}

  // Attaches a shared cache: decompressed capsules are fetched from / stored
  // into `cache` under `key` (the box's identity). `cache` may be null
  // (equivalent to the two-argument constructor) and must outlive the
  // querier when set.
  BoxQuerier(const CapsuleBox& box, LocatorOptions options, BoxCache* cache,
             const BoxKey& key)
      : box_(box), options_(options), cache_(cache), key_(key) {}

  // Rows of group `group_idx` whose entry contains `keyword` in a token.
  RowSet MatchKeywordInGroup(uint32_t group_idx, std::string_view keyword);

  // Positions (within the outlier list) of raw outlier lines hit by `keyword`.
  RowSet MatchKeywordInOutliers(std::string_view keyword);

  // Decompressed capsule bytes (cached). Returns empty view and latches an
  // error status on failure.
  std::string_view CapsuleBlob(uint32_t id);

  // Values of a delimited capsule (cached; views into the cached blob).
  const std::vector<std::string_view>& DelimitedValues(uint32_t id);

  // Row translation for real variables: present index -> group row.
  const std::vector<uint32_t>& PresentRows(uint32_t group_idx, uint32_t slot);

  // Attaches a per-block explain recorder: every Capsule the querier
  // considers receives a terminal fate (see explain.h). May be null;
  // must outlive the querier when set.
  void AttachExplain(ExplainRecorder* recorder) { explain_ = recorder; }

  const CapsuleBox& box() const { return box_; }
  const LocatorStats& stats() const { return stats_; }
  Status status() const { return status_; }

 private:
  RowSet MatchInWhole(const GroupMeta& group, const WholeVarMeta& wv,
                      std::string_view keyword);
  RowSet MatchInReal(const GroupMeta& group, uint32_t group_idx, uint32_t slot,
                     const RealVarMeta& rv, std::string_view keyword);
  RowSet MatchInNominal(const GroupMeta& group, const NominalVarMeta& nv,
                        std::string_view keyword);

  // Evaluates one possible match's constraint conjunction over the present
  // rows of a real variable; returns present-row indices.
  std::vector<uint32_t> EvaluateConstraints(const RealVarMeta& rv,
                                            const PossibleMatch& match);

  // Stamp admission with stage-time accounting. `wildcard_aware` selects the
  // wildcard-tolerant check (StampAdmitsKeyword) over the literal one.
  bool StampAdmits(const CapsuleStamp& stamp, std::string_view keyword,
                   bool wildcard_aware);

  // Memoized keyword-side of the stamp check: classifying a keyword's
  // characters happens once per querier, not once per Capsule, so stamp
  // evaluation batches across capsules (and across groups).
  const StampProbe& ProbeFor(std::string_view keyword, bool wildcard_aware);

  // Fetches (and pins) the capsule through the shared cache. Only called
  // when cache_ != nullptr.
  const CachedCapsule* FetchCachedCapsule(uint32_t id);

  void LatchError(const Status& status) {
    if (status_.ok()) {
      status_ = status;
    }
  }

  // Reports every capsule of `group` to the explain recorder with `fate`
  // (used when a whole group is answered without touching its capsules).
  void ExplainGroupCapsules(const GroupMeta& group, CapsuleFate fate);

  const CapsuleBox& box_;
  LocatorOptions options_;
  BoxCache* cache_ = nullptr;  // shared across queriers; may be null
  BoxKey key_;                 // box identity within cache_
  ExplainRecorder* explain_ = nullptr;  // may be null (no explain)
  LocatorStats stats_;
  Status status_;

  // Querier-local pins. Without a shared cache, blob_cache_/split_cache_
  // own the bytes as before; with one, capsule_pins_ keeps shared entries
  // alive (so views stay valid even if the cache evicts them).
  std::unordered_map<uint32_t, std::string> blob_cache_;
  std::unordered_map<uint32_t, std::vector<std::string_view>> split_cache_;
  std::unordered_map<uint32_t, std::shared_ptr<const CachedCapsule>>
      capsule_pins_;
  std::unordered_map<uint64_t, std::vector<uint32_t>> present_rows_cache_;
  std::vector<std::string_view> empty_values_;

  // Keyword-side stamp probes, memoized per (keyword, wildcard-awareness).
  // Transparent hashing so the hot lookup path never allocates.
  struct TransparentHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  using ProbeCache =
      std::unordered_map<std::string, StampProbe, TransparentHash,
                         std::equal_to<>>;
  ProbeCache literal_probes_;
  ProbeCache wildcard_probes_;
  std::vector<bool> stamp_admits_;  // scratch for batched section checks
};

}  // namespace loggrep

#endif  // SRC_QUERY_LOCATOR_H_
