// Query "explain" layer: an auditable, per-block / per-variable-vector /
// per-Capsule account of *why* each Capsule was pruned or opened.
//
// LogGrep's whole economic argument (§5) is that most Capsules are never
// decompressed. Explain mode turns that claim into a decision tree: every
// Capsule a query considers receives exactly one terminal fate —
//
//   avoided without decompression ("pruned"):
//     static-hit          a constant template token answered the keyword, so
//                         the group's Capsules were never consulted
//     pattern-miss        runtime-pattern enumeration produced no possible
//                         match, ruling the vector's Capsules out
//     pattern-trivial     a trivial possible match admitted every row, so no
//                         Capsule needed to be opened
//     stamp-mask          keyword uses a character class outside the stamp
//     stamp-max-length    keyword longer than the stamp's max length
//   opened:
//     cache-hit           served decompressed from the shared BoxCache
//     decompressed        actually decompressed (and scanned)
//
// which yields the accounting invariant checked by tests and loggrep_cli:
//
//   pruned + cached + decompressed == capsules visited     (per block + total)
//
// The recorder lives beside BoxQuerier (one per block query; not
// thread-safe, matching the querier), and LogArchive/LogGrepEngine assemble
// per-block records into a QueryExplain rendered by `loggrep_cli explain`.
#ifndef SRC_QUERY_EXPLAIN_H_
#define SRC_QUERY_EXPLAIN_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace loggrep {

enum class CapsuleFate : uint8_t {
  // Pruned (avoided without decompression).
  kStaticHit,
  kPatternMiss,
  kPatternTrivial,
  kStampMaskReject,
  kStampLenReject,
  // Opened.
  kCacheHit,
  kDecompressed,
};

const char* CapsuleFateName(CapsuleFate fate);
bool FateIsOpen(CapsuleFate fate);    // cache-hit / decompressed
inline bool FateIsPruned(CapsuleFate fate) { return !FateIsOpen(fate); }

// One visited Capsule's terminal fate, tagged with the context (group /
// variable slot / keyword) in which it was first decided.
struct CapsuleExplain {
  uint32_t capsule = 0;
  CapsuleFate fate = CapsuleFate::kDecompressed;
  uint64_t bytes = 0;  // decompressed bytes when opened
  size_t visit = 0;    // index into BlockExplain::visits
};

// One consultation of a variable vector (or pseudo-stage) for one keyword.
struct VarVisit {
  uint32_t group = 0;
  int32_t slot = -1;        // -1: not a variable (outliers / reconstruct)
  const char* kind = "";    // "real" / "nominal" / "whole" / "outliers" /
                            // "group" / "reconstruct"
  std::string keyword;      // empty for the reconstruct stage
};

struct ExplainTotals {
  uint64_t visited = 0;
  uint64_t pruned = 0;
  uint64_t cached = 0;
  uint64_t decompressed = 0;
  uint64_t bytes_decompressed = 0;

  void Accumulate(const ExplainTotals& other) {
    visited += other.visited;
    pruned += other.pruned;
    cached += other.cached;
    decompressed += other.decompressed;
    bytes_decompressed += other.bytes_decompressed;
  }
  bool Balanced() const { return pruned + cached + decompressed == visited; }
};

// The decision record of one block (one CapsuleBox).
struct BlockExplain {
  uint32_t seq = 0;
  uint64_t hits = 0;             // matching entries in this block
  bool block_pruned = false;     // pruned at the archive level (never opened)
  std::string prune_reason;      // e.g. which keyword failed which filter
  bool block_failed = false;     // quarantined / failed: hole in the result
  std::string failure;           // the failure behind the hole
  std::vector<VarVisit> visits;
  std::vector<CapsuleExplain> capsules;  // one entry per visited capsule

  ExplainTotals Totals() const;
};

// A whole query's explain tree (one block for engine-level queries, many for
// archive queries; archive-pruned blocks appear with block_pruned set).
struct QueryExplain {
  std::string command;
  std::vector<BlockExplain> blocks;

  ExplainTotals Totals() const;

  // The accounting invariant: every block (and the total) must satisfy
  // pruned + cached + decompressed == visited. On failure, `detail`
  // (optional) receives a description of the first imbalance.
  bool CheckInvariant(std::string* detail = nullptr) const;

  // Human-readable decision tree (one line per capsule fate), ending with
  // per-block and total accounting lines.
  std::string Render() const;
};

// Collects capsule fates for one block query. Attach to a BoxQuerier; the
// engine drives Begin/End around match stages. Dedup discipline: a capsule's
// first fate sticks, except that an "opened" fate always upgrades a "pruned"
// one (a capsule stamped out for one keyword but decompressed for another
// counts as decompressed).
class ExplainRecorder {
 public:
  explicit ExplainRecorder(BlockExplain* block) : block_(block) {}

  ExplainRecorder(const ExplainRecorder&) = delete;
  ExplainRecorder& operator=(const ExplainRecorder&) = delete;

  // Opens a visit context; subsequent Record calls attribute to it.
  void BeginVisit(uint32_t group, int32_t slot, const char* kind,
                  std::string_view keyword);
  // Context used when capsules are touched outside a match stage
  // (reconstruction renders matched rows).
  void BeginStage(const char* kind);

  void Record(uint32_t capsule, CapsuleFate fate, uint64_t bytes = 0);

  BlockExplain* block() const { return block_; }

 private:
  size_t CurrentVisit();

  BlockExplain* block_;
  std::unordered_map<uint32_t, size_t> index_;  // capsule id -> capsules idx
  bool has_visit_ = false;
};

}  // namespace loggrep

#endif  // SRC_QUERY_EXPLAIN_H_
