#include "src/query/pattern_match.h"

#include <algorithm>

namespace loggrep {
namespace {

using Elements = std::vector<PatternElement>;
using Matches = std::vector<PossibleMatch>;

// Cross product: every suffix-side match combined with every prefix-side one.
Matches Combine(const Matches& a, const Matches& b) {
  Matches out;
  out.reserve(a.size() * b.size());
  for (const PossibleMatch& ma : a) {
    for (const PossibleMatch& mb : b) {
      PossibleMatch m = ma;
      m.constraints.insert(m.constraints.end(), mb.constraints.begin(),
                           mb.constraints.end());
      out.push_back(std::move(m));
    }
  }
  return out;
}

void Append(Matches& dst, Matches src) {
  dst.insert(dst.end(), std::make_move_iterator(src.begin()),
             std::make_move_iterator(src.end()));
}

// keyword must be a PREFIX of the concatenation of values of elems[j..].
Matches MatchPrefix(const Elements& elems, size_t j, std::string_view keyword) {
  if (keyword.empty()) {
    return {PossibleMatch{}};
  }
  if (j >= elems.size()) {
    return {};
  }
  const PatternElement& e = elems[j];
  if (!e.is_subvar) {
    const std::string& c = e.constant;
    if (keyword.size() <= c.size()) {
      return std::string_view(c).substr(0, keyword.size()) == keyword
                 ? Matches{PossibleMatch{}}
                 : Matches{};
    }
    if (keyword.substr(0, c.size()) != c) {
      return {};
    }
    return MatchPrefix(elems, j + 1, keyword.substr(c.size()));
  }
  Matches out;
  // Case A: the keyword lies entirely within this sub-variable's value.
  out.push_back(PossibleMatch{
      {SubVarConstraint{e.subvar, FragmentMode::kPrefix, std::string(keyword)}}});
  // Case B: the sub-variable's whole value equals keyword[0..k) and the rest
  // of the keyword continues into the following elements.
  for (size_t k = 0; k < keyword.size(); ++k) {
    Matches rest = MatchPrefix(elems, j + 1, keyword.substr(k));
    if (rest.empty()) {
      continue;
    }
    const PossibleMatch head{
        {SubVarConstraint{e.subvar, FragmentMode::kExact, std::string(keyword.substr(0, k))}}};
    Append(out, Combine(Matches{head}, rest));
  }
  return out;
}

// keyword must be a SUFFIX of the concatenation of values of elems[0..j).
Matches MatchSuffix(const Elements& elems, size_t j, std::string_view keyword) {
  if (keyword.empty()) {
    return {PossibleMatch{}};
  }
  if (j == 0) {
    return {};
  }
  const PatternElement& e = elems[j - 1];
  if (!e.is_subvar) {
    const std::string& c = e.constant;
    if (keyword.size() <= c.size()) {
      return std::string_view(c).substr(c.size() - keyword.size()) == keyword
                 ? Matches{PossibleMatch{}}
                 : Matches{};
    }
    if (keyword.substr(keyword.size() - c.size()) != c) {
      return {};
    }
    return MatchSuffix(elems, j - 1, keyword.substr(0, keyword.size() - c.size()));
  }
  Matches out;
  out.push_back(PossibleMatch{
      {SubVarConstraint{e.subvar, FragmentMode::kSuffix, std::string(keyword)}}});
  for (size_t k = 1; k <= keyword.size(); ++k) {
    // Sub-variable value equals keyword[k..); keyword[0..k) extends left.
    Matches rest = MatchSuffix(elems, j - 1, keyword.substr(0, k));
    if (rest.empty()) {
      continue;
    }
    const PossibleMatch tail{
        {SubVarConstraint{e.subvar, FragmentMode::kExact, std::string(keyword.substr(k))}}};
    Append(out, Combine(rest, Matches{tail}));
  }
  return out;
}

}  // namespace

std::vector<PossibleMatch> MatchKeywordOnPattern(const RuntimePattern& pattern,
                                                 std::string_view keyword) {
  const Elements& elems = pattern.elements();
  if (keyword.empty()) {
    return {PossibleMatch{}};
  }
  Matches out;
  for (size_t j = 0; j < elems.size(); ++j) {
    const PatternElement& e = elems[j];
    if (e.is_subvar) {
      // Keyword fully inside one sub-variable value (Fig. 6 cases 1 and 5).
      out.push_back(PossibleMatch{
          {SubVarConstraint{e.subvar, FragmentMode::kSub, std::string(keyword)}}});
      continue;
    }
    const std::string& c = e.constant;
    // Keyword contained in the constant: every value matches (trivial).
    if (c.find(keyword) != std::string::npos) {
      return {PossibleMatch{}};
    }
    // Head case (Fig. 6 case 4): a suffix of the constant is a prefix of the
    // keyword; the remainder must prefix-match what follows.
    for (size_t slen = 1; slen <= c.size() && slen < keyword.size(); ++slen) {
      if (std::string_view(c).substr(c.size() - slen) != keyword.substr(0, slen)) {
        continue;
      }
      Append(out, MatchPrefix(elems, j + 1, keyword.substr(slen)));
    }
    // Tail case (Fig. 6 case 2): a prefix of the constant is a suffix of the
    // keyword; the remainder must suffix-match what precedes.
    for (size_t plen = 1; plen <= c.size() && plen < keyword.size(); ++plen) {
      if (std::string_view(c).substr(0, plen) !=
          keyword.substr(keyword.size() - plen)) {
        continue;
      }
      Append(out, MatchSuffix(elems, j, keyword.substr(0, keyword.size() - plen)));
    }
    // Body case (Fig. 6 case 3): the whole constant occurs inside the
    // keyword; both flanks must match outward.
    if (c.size() < keyword.size() && !c.empty()) {
      for (size_t occ = keyword.find(c); occ != std::string_view::npos;
           occ = keyword.find(c, occ + 1)) {
        const std::string_view left = keyword.substr(0, occ);
        const std::string_view right = keyword.substr(occ + c.size());
        if (left.empty() && right.empty()) {
          continue;  // keyword == constant, handled by the contains test
        }
        Matches left_matches =
            left.empty() ? Matches{PossibleMatch{}} : MatchSuffix(elems, j, left);
        if (left_matches.empty()) {
          continue;
        }
        Matches right_matches = right.empty() ? Matches{PossibleMatch{}}
                                              : MatchPrefix(elems, j + 1, right);
        if (right_matches.empty()) {
          continue;
        }
        Append(out, Combine(left_matches, right_matches));
      }
    }
  }
  // A trivial possible match subsumes everything else.
  for (const PossibleMatch& m : out) {
    if (m.trivial()) {
      return {PossibleMatch{}};
    }
  }
  return out;
}

}  // namespace loggrep
