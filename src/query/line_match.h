// Reference query semantics over raw log lines.
//
// A search term hits an entry when EVERY keyword of the term is contained in
// some token of the entry (wildcards stay within one token, §3). This helper
// defines those semantics once; the decompress-and-scan baselines use it
// directly, and LogGrep's index-level matching is expected to agree with it
// exactly (property-tested in tests/).
#ifndef SRC_QUERY_LINE_MATCH_H_
#define SRC_QUERY_LINE_MATCH_H_

#include <string_view>

#include "src/parser/tokenizer.h"
#include "src/query/query_parser.h"

namespace loggrep {

// Stateful matcher for hot loops: tokenizes each line ONCE (even when the
// query has several terms) into reusable scratch, so per-line evaluation
// stops allocating after warm-up. One instance per thread; not thread-safe.
class LineMatcher {
 public:
  // True when every keyword of `term` hits some token of `line`.
  bool MatchesTerm(std::string_view line, const SearchTerm& term);

  // Full boolean evaluation of a parsed query over one line.
  bool MatchesQuery(std::string_view line, const QueryExpr& expr);

 private:
  bool TermHitsTokens(const SearchTerm& term) const;
  bool EvalExpr(const QueryExpr& expr) const;

  TokenizedLine scratch_;  // tokens of the line currently being evaluated
};

// One-shot conveniences (construct a matcher per call).
bool LineMatchesTerm(std::string_view line, const SearchTerm& term);
bool LineMatchesQuery(std::string_view line, const QueryExpr& expr);

}  // namespace loggrep

#endif  // SRC_QUERY_LINE_MATCH_H_
