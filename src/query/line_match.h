// Reference query semantics over raw log lines.
//
// A search term hits an entry when EVERY keyword of the term is contained in
// some token of the entry (wildcards stay within one token, §3). This helper
// defines those semantics once; the decompress-and-scan baselines use it
// directly, and LogGrep's index-level matching is expected to agree with it
// exactly (property-tested in tests/).
#ifndef SRC_QUERY_LINE_MATCH_H_
#define SRC_QUERY_LINE_MATCH_H_

#include <string_view>

#include "src/query/query_parser.h"

namespace loggrep {

// True when every keyword of `term` hits some token of `line`.
bool LineMatchesTerm(std::string_view line, const SearchTerm& term);

// Full boolean evaluation of a parsed query over one line.
bool LineMatchesQuery(std::string_view line, const QueryExpr& expr);

}  // namespace loggrep

#endif  // SRC_QUERY_LINE_MATCH_H_
