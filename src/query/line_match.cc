#include "src/query/line_match.h"

#include "src/query/wildcard.h"

namespace loggrep {

bool LineMatcher::TermHitsTokens(const SearchTerm& term) const {
  for (const std::string& keyword : term.keywords) {
    bool hit = false;
    for (std::string_view token : scratch_.tokens) {
      if (KeywordHitsToken(keyword, token)) {
        hit = true;
        break;
      }
    }
    if (!hit) {
      return false;
    }
  }
  return true;
}

bool LineMatcher::EvalExpr(const QueryExpr& expr) const {
  switch (expr.kind) {
    case QueryExpr::Kind::kTerm:
      return TermHitsTokens(expr.term);
    case QueryExpr::Kind::kAnd:
      return EvalExpr(*expr.left) && EvalExpr(*expr.right);
    case QueryExpr::Kind::kOr:
      return EvalExpr(*expr.left) || EvalExpr(*expr.right);
    case QueryExpr::Kind::kNot:
      return (expr.left == nullptr || EvalExpr(*expr.left)) &&
             !EvalExpr(*expr.right);
  }
  return false;
}

bool LineMatcher::MatchesTerm(std::string_view line, const SearchTerm& term) {
  TokenizeLineInto(line, &scratch_);
  return TermHitsTokens(term);
}

bool LineMatcher::MatchesQuery(std::string_view line, const QueryExpr& expr) {
  TokenizeLineInto(line, &scratch_);
  return EvalExpr(expr);
}

bool LineMatchesTerm(std::string_view line, const SearchTerm& term) {
  LineMatcher matcher;
  return matcher.MatchesTerm(line, term);
}

bool LineMatchesQuery(std::string_view line, const QueryExpr& expr) {
  LineMatcher matcher;
  return matcher.MatchesQuery(line, expr);
}

}  // namespace loggrep
