#include "src/query/line_match.h"

#include "src/parser/tokenizer.h"
#include "src/query/wildcard.h"

namespace loggrep {

bool LineMatchesTerm(std::string_view line, const SearchTerm& term) {
  const std::vector<std::string_view> tokens = TokenizeKeywords(line);
  for (const std::string& keyword : term.keywords) {
    bool hit = false;
    for (std::string_view token : tokens) {
      if (KeywordHitsToken(keyword, token)) {
        hit = true;
        break;
      }
    }
    if (!hit) {
      return false;
    }
  }
  return true;
}

bool LineMatchesQuery(std::string_view line, const QueryExpr& expr) {
  switch (expr.kind) {
    case QueryExpr::Kind::kTerm:
      return LineMatchesTerm(line, expr.term);
    case QueryExpr::Kind::kAnd:
      return LineMatchesQuery(line, *expr.left) &&
             LineMatchesQuery(line, *expr.right);
    case QueryExpr::Kind::kOr:
      return LineMatchesQuery(line, *expr.left) ||
             LineMatchesQuery(line, *expr.right);
    case QueryExpr::Kind::kNot:
      return (expr.left == nullptr || LineMatchesQuery(line, *expr.left)) &&
             !LineMatchesQuery(line, *expr.right);
  }
  return false;
}

}  // namespace loggrep
