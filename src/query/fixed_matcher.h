// Fixed-length matching inside decompressed Capsules (§5.2).
//
// Padded columns are scanned with Boyer-Moore(-Horspool): because every cell
// has the same width, a hit position divides by the width to give the row.
// The delimited layout (the "w/o fixed" ablation) falls back to per-value
// KMP scanning, exactly as the paper describes.
#ifndef SRC_QUERY_FIXED_MATCHER_H_
#define SRC_QUERY_FIXED_MATCHER_H_

#include <cstdint>
#include <string_view>
#include <vector>

namespace loggrep {

enum class FragmentMode : uint8_t {
  kExact,   // fragment equals the whole value
  kPrefix,  // fragment is a prefix of the value
  kSuffix,  // fragment is a suffix of the value
  kSub,     // fragment occurs anywhere in the value
};

// Raw Boyer-Moore-Horspool substring scan; returns all match positions.
std::vector<size_t> BoyerMooreSearch(std::string_view haystack,
                                     std::string_view needle);

// Raw KMP substring scan; same contract as BoyerMooreSearch.
std::vector<size_t> KmpSearch(std::string_view haystack, std::string_view needle);

// True when `value` satisfies (mode, fragment); fragment must be literal
// (wildcard keywords are handled at a higher level).
bool ValueMatchesFragment(std::string_view value, FragmentMode mode,
                          std::string_view fragment);

// All rows of a padded column whose value satisfies (mode, fragment).
// `use_bm` selects Boyer-Moore (true) or KMP (false) for the kSub scan.
std::vector<uint32_t> SearchPaddedColumn(std::string_view blob, uint32_t width,
                                         FragmentMode mode,
                                         std::string_view fragment,
                                         bool use_bm = true);

// Direct row checking (§5.2): filters `candidates` to rows whose padded cell
// satisfies (mode, fragment), without scanning the whole column.
std::vector<uint32_t> CheckPaddedRows(std::string_view blob, uint32_t width,
                                      FragmentMode mode, std::string_view fragment,
                                      const std::vector<uint32_t>& candidates);

// Sequential scan of a '\n'-delimited column with KMP (variable-length path).
std::vector<uint32_t> SearchDelimitedColumn(std::string_view blob,
                                            FragmentMode mode,
                                            std::string_view fragment);

}  // namespace loggrep

#endif  // SRC_QUERY_FIXED_MATCHER_H_
