// Fixed-length matching inside decompressed Capsules (§5.2).
//
// Padded columns are scanned with a whole-blob substring pass: because every
// cell has the same width, a hit position divides by the width to give the
// row. On the scalar tier the pass is Boyer-Moore(-Horspool) or KMP; on the
// SSE2/AVX2 tiers (src/common/simd.h) it is a first+last-byte skip loop with
// block verification. All tiers are exact and hit-for-hit identical — the
// property suite (tests/fixed_matcher_property_test.cc) differences every
// tier against a naive per-cell reference.
//
// Empty-fragment contract (all entry points): an empty fragment matches
// every value under kPrefix / kSuffix / kSub, and exactly the empty values
// under kExact. Fragments containing the pad byte ('\0') can never match a
// padded cell, because a cell's value ends at its first pad byte.
//
// The delimited layout (the "w/o fixed" ablation) falls back to per-value
// scanning. A delimited blob whose final value is not '\n'-terminated (a
// truncated Capsule) still has its trailing cell scanned, mirroring
// SplitDelimitedBlob.
#ifndef SRC_QUERY_FIXED_MATCHER_H_
#define SRC_QUERY_FIXED_MATCHER_H_

#include <cstdint>
#include <string_view>
#include <vector>

namespace loggrep {

enum class FragmentMode : uint8_t {
  kExact,   // fragment equals the whole value
  kPrefix,  // fragment is a prefix of the value
  kSuffix,  // fragment is a suffix of the value
  kSub,     // fragment occurs anywhere in the value
};

// Row ids are uint32_t; a blob describing more cells than this is clamped —
// the excess is unreachable anyway because CapsuleBox metadata validation
// rejects row counts that do not fit (see capsule_box.cc).
inline constexpr uint64_t kMaxColumnRows = 0xFFFFFFFFull;

// Raw Boyer-Moore-Horspool substring scan; returns all match positions.
std::vector<size_t> BoyerMooreSearch(std::string_view haystack,
                                     std::string_view needle);

// Raw KMP substring scan; same contract as BoyerMooreSearch.
std::vector<size_t> KmpSearch(std::string_view haystack, std::string_view needle);

// True when `value` satisfies (mode, fragment); fragment must be literal
// (wildcard keywords are handled at a higher level). Follows the
// empty-fragment contract above.
bool ValueMatchesFragment(std::string_view value, FragmentMode mode,
                          std::string_view fragment);

// All rows of a padded column whose value satisfies (mode, fragment).
// `use_bm` selects Boyer-Moore (true) or KMP (false) for the scalar-tier
// kSub scan; the vector tiers ignore it.
//
// Zero-width columns: every value is empty, but the row count cannot be
// derived from the (empty) blob, so callers must pass it explicitly via
// `zero_width_rows`; rows [0, zero_width_rows) are then matched per the
// empty-fragment contract (all rows for an empty fragment under
// kExact/kPrefix/kSuffix/kSub, no rows for a non-empty fragment).
std::vector<uint32_t> SearchPaddedColumn(std::string_view blob, uint32_t width,
                                         FragmentMode mode,
                                         std::string_view fragment,
                                         bool use_bm = true,
                                         uint32_t zero_width_rows = 0);

// Direct row checking (§5.2): filters `candidates` to rows whose padded cell
// satisfies (mode, fragment), without scanning the whole column.
// Zero-width columns have no derivable row bound, so every candidate row
// exists (with an empty value) and is filtered on the fragment alone.
std::vector<uint32_t> CheckPaddedRows(std::string_view blob, uint32_t width,
                                      FragmentMode mode, std::string_view fragment,
                                      const std::vector<uint32_t>& candidates);

// Sequential scan of a '\n'-delimited column (variable-length path). A
// trailing unterminated value (truncated blob) is scanned as the final cell.
std::vector<uint32_t> SearchDelimitedColumn(std::string_view blob,
                                            FragmentMode mode,
                                            std::string_view fragment);

}  // namespace loggrep

#endif  // SRC_QUERY_FIXED_MATCHER_H_
