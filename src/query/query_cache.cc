#include "src/query/query_cache.h"

namespace loggrep {

size_t QueryCache::Charge(const std::string& command,
                          const CachedQuery& value) {
  // Key + per-hit payload + container bookkeeping. kPerHit covers the pair,
  // the string header and heap slack; kPerEntry covers the LRU node, the
  // index node and the LocatorStats snapshot.
  constexpr size_t kPerHit = 48;
  constexpr size_t kPerEntry = 160;
  size_t bytes = command.size() + kPerEntry;
  for (const auto& [line, text] : value.hits) {
    (void)line;
    bytes += text.size() + kPerHit;
  }
  return bytes;
}

std::optional<CachedQuery> QueryCache::Lookup(const std::string& command) {
  const auto it = index_.find(command);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

void QueryCache::Insert(const std::string& command, CachedQuery value) {
  const size_t charge = Charge(command, value);
  const auto it = index_.find(command);
  if (it != index_.end()) {
    // Assign-or-insert: never keep a stale value under a live key.
    bytes_ -= Charge(command, it->second->second);
    it->second->second = std::move(value);
    bytes_ += charge;
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.emplace_front(command, std::move(value));
    index_.emplace(command, lru_.begin());
    bytes_ += charge;
  }
  EvictOverBudget();
}

void QueryCache::EvictOverBudget() {
  // The freshest entry always survives, even when alone over budget: a
  // single huge result set should still memoize its own replay.
  while (bytes_ > byte_budget_ && lru_.size() > 1) {
    const auto& [command, value] = lru_.back();
    bytes_ -= Charge(command, value);
    index_.erase(command);
    lru_.pop_back();
    ++evictions_;
  }
}

void QueryCache::Clear() {
  lru_.clear();
  index_.clear();
  bytes_ = 0;
}

}  // namespace loggrep
