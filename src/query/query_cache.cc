#include "src/query/query_cache.h"

namespace loggrep {

std::optional<QueryHits> QueryCache::Lookup(const std::string& command) const {
  const auto it = cache_.find(command);
  if (it == cache_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return it->second;
}

void QueryCache::Insert(const std::string& command, const QueryHits& hits) {
  cache_.emplace(command, hits);
}

}  // namespace loggrep
