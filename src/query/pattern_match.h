// Keyword matching on runtime patterns (§5.1).
//
// Given a literal keyword and a runtime pattern, enumerates every "possible
// match": a conjunction of sub-variable constraints under which a value
// following the pattern contains the keyword. The recursion implements the
// paper's head / tail / body cases around pattern constants plus the
// keyword-inside-one-sub-variable case (Fig. 6). An empty constraint list is
// a trivial match: every value following the pattern contains the keyword.
#ifndef SRC_QUERY_PATTERN_MATCH_H_
#define SRC_QUERY_PATTERN_MATCH_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/pattern/runtime_pattern.h"
#include "src/query/fixed_matcher.h"

namespace loggrep {

struct SubVarConstraint {
  uint32_t subvar = 0;
  FragmentMode mode = FragmentMode::kSub;
  std::string fragment;

  bool operator==(const SubVarConstraint&) const = default;
};

struct PossibleMatch {
  // All constraints must hold on the same row (intersection); an empty list
  // means the keyword is satisfied by pattern constants alone.
  std::vector<SubVarConstraint> constraints;

  bool trivial() const { return constraints.empty(); }
};

// Possible matches for `keyword` occurring as a substring of a value that
// follows `pattern`. Returns an empty vector when no match is possible; a
// single trivial match short-circuits everything else.
std::vector<PossibleMatch> MatchKeywordOnPattern(const RuntimePattern& pattern,
                                                 std::string_view keyword);

}  // namespace loggrep

#endif  // SRC_QUERY_PATTERN_MATCH_H_
