// BoxCache: a sharded, byte-budgeted LRU cache shared across queries (and
// across ParallelQuery workers) on the warm query path.
//
// The paper's economics (§5–§6) hinge on touching as few decompressed bytes
// as possible per query. The cold path already decompresses only the Capsules
// that survive stamp filtering; this cache makes the *warm* path cheaper
// still by keeping, across Query() calls:
//
//   (a) opened CapsuleBoxes — the raw box file bytes plus the parsed
//       metadata view — keyed by a BoxKey (block identity), so a repeated or
//       refined query skips both the file read and the metadata parse, and
//   (b) decompressed Capsule blobs (plus their lazily computed delimited
//       splits) keyed by (BoxKey, capsule id), so matching and reconstruction
//       never decompress the same Capsule twice.
//
// Entries are handed out as shared_ptr<const ...>: a querier pins what it
// uses, so eviction can never invalidate live string_views. The cache is
// sharded (hash of the key picks the shard; each shard has its own mutex,
// LRU list and slice of the byte budget) so ParallelQuery workers contend
// only when they touch the same shard. Accounting is strict: every entry is
// charged its payload bytes plus a fixed bookkeeping overhead, and a shard
// evicts from the cold end until it is back under budget. Loaders run
// *outside* the shard lock; two racing misses both load and the loser adopts
// the winner's entry.
//
// Observability: hit/miss/eviction counters and bytes-saved are kept as
// atomics and mirrored into an optional MetricsRegistry
// ("query.box_cache.*" counters) so the ingest-side registry of PR 1 covers
// the query side too.
#ifndef SRC_QUERY_BOX_CACHE_H_
#define SRC_QUERY_BOX_CACHE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/capsule/capsule_box.h"
#include "src/common/metrics.h"
#include "src/common/result.h"

namespace loggrep {

// Collision-resistant identity of one CapsuleBox. Content-derived keys carry
// two independent 64-bit hashes *and* the byte size (a 64-bit FNV alone can
// collide between two different blocks and serve the wrong block's hits);
// sequence-derived keys (archive blocks, which are immutable once committed)
// carry an archive-unique namespace plus the block seq and use a sentinel
// size no real box can have, so the two key families never overlap.
struct BoxKey {
  uint64_t h1 = 0;
  uint64_t h2 = 0;
  uint64_t size = 0;

  // Identity from the serialized box bytes (two FNV-1a passes with
  // independent seeds + length).
  static BoxKey FromBytes(std::string_view bytes);

  // Identity of block `seq` within the archive namespace `namespace_id`
  // (obtain one per archive instance from NextNamespaceId()).
  static BoxKey ForSequence(uint64_t namespace_id, uint64_t seq);

  // Process-unique namespace ids for ForSequence.
  static uint64_t NextNamespaceId();

  // Stable printable form, usable as a collision-safe cache-key prefix.
  std::string ToString() const;

  bool operator==(const BoxKey& other) const {
    return h1 == other.h1 && h2 == other.h2 && size == other.size;
  }
};

// An opened CapsuleBox pinned together with the bytes it borrows from.
// Never moved after construction, so the CapsuleBox's internal views into
// `bytes_` stay valid for the object's lifetime.
class OpenedBox {
 public:
  // Takes ownership of the serialized box bytes and parses them.
  static Result<std::shared_ptr<const OpenedBox>> Open(std::string bytes);

  const std::string& bytes() const { return bytes_; }
  const CapsuleBox& box() const { return box_; }

 private:
  OpenedBox() = default;

  std::string bytes_;
  CapsuleBox box_;
};

// One decompressed Capsule blob. The delimited splits are computed lazily
// (padded-layout capsules never need them) and at most once, thread-safely.
class CachedCapsule {
 public:
  explicit CachedCapsule(std::string blob) : blob_(std::move(blob)) {}

  const std::string& blob() const { return blob_; }
  // Views into blob(); valid for this object's lifetime.
  const std::vector<std::string_view>& splits() const;

 private:
  std::string blob_;
  mutable std::once_flag split_once_;
  mutable std::vector<std::string_view> splits_;
};

struct BoxCacheOptions {
  // Total decompressed/opened bytes the cache may hold, split evenly across
  // shards. One oversized entry is still admitted (it becomes the shard's
  // only resident) so a huge capsule cannot starve the query touching it.
  size_t byte_budget = 256ull << 20;
  size_t shards = 8;
  // Optional registry for "query.box_cache.*" counters.
  MetricsRegistry* metrics = nullptr;
};

struct BoxCacheStats {
  uint64_t box_hits = 0;
  uint64_t box_misses = 0;
  uint64_t capsule_hits = 0;
  uint64_t capsule_misses = 0;
  uint64_t evictions = 0;
  uint64_t bytes_saved = 0;    // decompressed/opened bytes served warm
  uint64_t bytes_in_use = 0;   // current charged bytes across shards
  uint64_t entries = 0;
};

class BoxCache {
 public:
  explicit BoxCache(BoxCacheOptions options = {});
  BoxCache(const BoxCache&) = delete;
  BoxCache& operator=(const BoxCache&) = delete;

  // Returns the opened box for `key`, invoking `load` (which must return the
  // serialized box bytes) only on a miss. `was_hit`, when non-null, reports
  // whether the entry was served warm.
  Result<std::shared_ptr<const OpenedBox>> GetOrOpenBox(
      const BoxKey& key, const std::function<Result<std::string>()>& load,
      bool* was_hit = nullptr);

  // Returns the decompressed capsule `(key, capsule_id)`, invoking `load`
  // (which must return the decompressed blob) only on a miss.
  Result<std::shared_ptr<const CachedCapsule>> GetOrLoadCapsule(
      const BoxKey& key, uint32_t capsule_id,
      const std::function<Result<std::string>()>& load,
      bool* was_hit = nullptr);

  // Drops every entry (pinned shared_ptrs stay valid).
  void Clear();

  BoxCacheStats Stats() const;
  size_t byte_budget() const { return options_.byte_budget; }

 private:
  struct EntryKey {
    BoxKey box;
    // kNoCapsule-style sentinel: UINT64_MAX marks the opened-box entry;
    // anything else is a capsule id.
    uint64_t capsule = UINT64_MAX;

    bool operator==(const EntryKey& other) const {
      return capsule == other.capsule && box == other.box;
    }
  };
  struct EntryKeyHash {
    size_t operator()(const EntryKey& k) const;
  };
  struct Entry {
    std::shared_ptr<const OpenedBox> box;
    std::shared_ptr<const CachedCapsule> capsule;
    size_t charge = 0;
    std::list<EntryKey>::iterator lru_it;
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<EntryKey, Entry, EntryKeyHash> map;
    std::list<EntryKey> lru;  // front = most recently used
    size_t bytes = 0;
  };

  Shard& ShardFor(const EntryKey& key);
  // Inserts `entry` under `key` unless present; returns the resident entry
  // (the existing one on a race). Caller holds no lock.
  Entry InsertOrAdopt(const EntryKey& key, Entry entry, bool* adopted);
  void EvictOverBudgetLocked(Shard& shard);

  BoxCacheOptions options_;
  size_t per_shard_budget_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<uint64_t> box_hits_{0};
  std::atomic<uint64_t> box_misses_{0};
  std::atomic<uint64_t> capsule_hits_{0};
  std::atomic<uint64_t> capsule_misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> bytes_saved_{0};

  // Resolved once; null when no registry was supplied.
  Counter* m_hits_ = nullptr;
  Counter* m_misses_ = nullptr;
  Counter* m_evictions_ = nullptr;
  Counter* m_bytes_saved_ = nullptr;
  Counter* m_bytes_hwm_ = nullptr;
};

}  // namespace loggrep

#endif  // SRC_QUERY_BOX_CACHE_H_
