// Query command parsing (§3, §5).
//
// A query command is a sequence of search strings joined by the logical
// operators AND / OR / NOT (case-insensitive). Consecutive non-operator words
// form one multi-word search string, e.g.
//   "ERROR and part_id:510 and request id REQ_11.*"
// has three search strings, the last two being "part_id:510" and
// "request id REQ_11.*". Operators associate left to right; NOT binds like
// "AND NOT" (a leading NOT negates against all entries).
//
// Double quotes force a word to be literal search content: `error "and" retry`
// searches for the token `and` instead of conjoining, and `"disk error"`
// keeps an embedded blank inside one word. Quotes are stripped before
// tokenization, so quoting never changes which keywords a plain word yields.
#ifndef SRC_QUERY_QUERY_PARSER_H_
#define SRC_QUERY_QUERY_PARSER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"

namespace loggrep {

struct SearchTerm {
  std::string text;                   // the raw search string
  std::vector<std::string> keywords;  // tokenized (same delimiters as logs)
};

struct QueryExpr {
  enum class Kind {
    kTerm,
    kAnd,  // left AND right
    kOr,   // left OR right
    kNot,  // left AND NOT right (left may be null for a leading NOT)
  };

  Kind kind = Kind::kTerm;
  SearchTerm term;                   // kTerm only
  std::unique_ptr<QueryExpr> left;   // binary ops
  std::unique_ptr<QueryExpr> right;  // binary ops
};

// Parses a command; fails on empty commands or dangling operators.
Result<std::unique_ptr<QueryExpr>> ParseQuery(std::string_view command);

}  // namespace loggrep

#endif  // SRC_QUERY_QUERY_PARSER_H_
