#include "src/query/wildcard.h"

#include <string>

namespace loggrep {

bool WildcardMatch(std::string_view pattern, std::string_view text) {
  // Iterative two-pointer matcher with single-level backtracking to the most
  // recent '*' (classic glob algorithm, O(|pattern| * |text|) worst case).
  size_t p = 0;
  size_t t = 0;
  size_t star_p = std::string_view::npos;
  size_t star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') {
    ++p;
  }
  return p == pattern.size();
}

bool KeywordHitsToken(std::string_view keyword, std::string_view token) {
  if (keyword.empty()) {
    return true;
  }
  if (!HasWildcards(keyword)) {
    return token.find(keyword) != std::string_view::npos;
  }
  // Containment = whole-token match against "*<keyword>*".
  std::string pattern;
  pattern.reserve(keyword.size() + 2);
  pattern += '*';
  pattern += keyword;
  pattern += '*';
  return WildcardMatch(pattern, token);
}

}  // namespace loggrep
