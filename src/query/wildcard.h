// Wildcard keyword matching. LogGrep permits wildcards inside a single token
// (§3): '*' matches any run of characters (including empty), '?' matches
// exactly one character.
#ifndef SRC_QUERY_WILDCARD_H_
#define SRC_QUERY_WILDCARD_H_

#include <string_view>

namespace loggrep {

inline bool HasWildcards(std::string_view keyword) {
  return keyword.find_first_of("*?") != std::string_view::npos;
}

// Whole-text match of `text` against `pattern` with '*' / '?' wildcards.
bool WildcardMatch(std::string_view pattern, std::string_view text);

// True when some substring of `token` matches `keyword` — the keyword
// semantics used throughout: a keyword hits a token it is contained in.
// Equivalent to WildcardMatch("*" + keyword + "*", token).
bool KeywordHitsToken(std::string_view keyword, std::string_view token);

}  // namespace loggrep

#endif  // SRC_QUERY_WILDCARD_H_
