// Query Cache (§3): memoizes past query results keyed by the command text.
// Especially effective in refining mode, where an engineer grows a command
// incrementally in one session (§6.3, "w/o cache").
#ifndef SRC_QUERY_QUERY_CACHE_H_
#define SRC_QUERY_QUERY_CACHE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace loggrep {

// One query hit: (global line number, reconstructed line text).
using QueryHits = std::vector<std::pair<uint32_t, std::string>>;

class QueryCache {
 public:
  std::optional<QueryHits> Lookup(const std::string& command) const;
  void Insert(const std::string& command, const QueryHits& hits);
  void Clear() { cache_.clear(); }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  size_t size() const { return cache_.size(); }

 private:
  std::unordered_map<std::string, QueryHits> cache_;
  mutable uint64_t hits_ = 0;
  mutable uint64_t misses_ = 0;
};

}  // namespace loggrep

#endif  // SRC_QUERY_QUERY_CACHE_H_
