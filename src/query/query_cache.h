// Query Cache (§3): memoizes past query results keyed by the command text
// (prefixed, at the engine layer, with a collision-resistant box identity).
// Especially effective in refining mode, where an engineer grows a command
// incrementally in one session (§6.3, "w/o cache").
//
// The cache is a byte-budgeted LRU: every entry is charged its key plus the
// rendered hit lines, and inserting past the budget evicts from the cold
// end. Each entry also snapshots the LocatorStats of the query that produced
// it, so a cache hit can report what the original execution cost instead of
// a zeroed locator. Insert is assign-or-insert: re-inserting a key replaces
// the stale value. Not thread-safe; each engine (and each session memo) owns
// its own instance.
#ifndef SRC_QUERY_QUERY_CACHE_H_
#define SRC_QUERY_QUERY_CACHE_H_

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/query/locator.h"  // LocatorStats

namespace loggrep {

// One query hit: (global line number, reconstructed line text). Line numbers
// are 64-bit end-to-end: an archive past ~4 billion lines must not silently
// wrap its global line numbers.
using QueryHits = std::vector<std::pair<uint64_t, std::string>>;

// A memoized query result: the hits plus the cost of the execution that
// produced them.
struct CachedQuery {
  QueryHits hits;
  LocatorStats locator;
};

class QueryCache {
 public:
  static constexpr size_t kDefaultByteBudget = 64ull << 20;

  explicit QueryCache(size_t byte_budget = kDefaultByteBudget)
      : byte_budget_(byte_budget) {}

  // Returns a copy of the entry and promotes it to most-recently-used.
  std::optional<CachedQuery> Lookup(const std::string& command);

  // Assign-or-insert (an existing key is replaced, never silently kept),
  // then evicts LRU entries until back under the byte budget.
  void Insert(const std::string& command, CachedQuery value);
  void Insert(const std::string& command, const QueryHits& hits) {
    Insert(command, CachedQuery{hits, LocatorStats{}});
  }

  void Clear();

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }
  size_t size() const { return index_.size(); }
  size_t bytes_in_use() const { return bytes_; }
  size_t byte_budget() const { return byte_budget_; }

 private:
  using LruList = std::list<std::pair<std::string, CachedQuery>>;

  static size_t Charge(const std::string& command, const CachedQuery& value);
  void EvictOverBudget();

  size_t byte_budget_;
  size_t bytes_ = 0;
  LruList lru_;  // front = most recently used
  std::unordered_map<std::string, LruList::iterator> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace loggrep

#endif  // SRC_QUERY_QUERY_CACHE_H_
