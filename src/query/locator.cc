#include "src/query/locator.h"

#include <algorithm>

#include "src/capsule/capsule.h"
#include "src/common/timer.h"
#include "src/common/trace.h"
#include "src/query/fixed_matcher.h"
#include "src/query/wildcard.h"

namespace loggrep {
namespace {

inline uint64_t ElapsedNanos(const WallTimer& timer) {
  return timer.ElapsedNanos();
}

// Which stamp check rejected `keyword` (assumes the stamp did reject it):
// the max-length bound or the character-class mask.
CapsuleFate StampRejectFate(const CapsuleStamp& stamp, std::string_view keyword,
                            bool wildcard_aware) {
  if (wildcard_aware && HasWildcards(keyword)) {
    uint32_t min_len = 0;
    for (char c : keyword) {
      if (c != '*') {
        ++min_len;
      }
    }
    return min_len > stamp.max_len ? CapsuleFate::kStampLenReject
                                   : CapsuleFate::kStampMaskReject;
  }
  return keyword.size() > stamp.max_len ? CapsuleFate::kStampLenReject
                                        : CapsuleFate::kStampMaskReject;
}

}  // namespace

bool StampAdmitsKeyword(const CapsuleStamp& stamp, std::string_view keyword) {
  if (!HasWildcards(keyword)) {
    return stamp.AdmitsFragment(keyword);
  }
  return stamp.AdmitsProbe(ProbeForKeyword(keyword));
}

void BatchStampCheck(const std::vector<CapsuleStamp>& stamps,
                     const StampProbe& probe, std::vector<bool>& admits) {
  admits.resize(stamps.size());
  for (size_t i = 0; i < stamps.size(); ++i) {
    admits[i] = stamps[i].AdmitsProbe(probe);
  }
}

const StampProbe& BoxQuerier::ProbeFor(std::string_view keyword,
                                       bool wildcard_aware) {
  auto& cache =
      wildcard_aware && HasWildcards(keyword) ? wildcard_probes_ : literal_probes_;
  const auto it = cache.find(keyword);
  if (it != cache.end()) {
    return it->second;
  }
  const StampProbe probe = wildcard_aware && HasWildcards(keyword)
                               ? ProbeForKeyword(keyword)
                               : ProbeForFragment(keyword);
  return cache.emplace(std::string(keyword), probe).first->second;
}

bool BoxQuerier::StampAdmits(const CapsuleStamp& stamp,
                             std::string_view keyword, bool wildcard_aware) {
  const WallTimer timer;
  const bool admits = stamp.AdmitsProbe(ProbeFor(keyword, wildcard_aware));
  stats_.stamp_filter_nanos += ElapsedNanos(timer);
  return admits;
}

const CachedCapsule* BoxQuerier::FetchCachedCapsule(uint32_t id) {
  const auto pinned = capsule_pins_.find(id);
  if (pinned != capsule_pins_.end()) {
    return pinned->second.get();
  }
  bool was_hit = false;
  const TraceSpan span("locator.fetch_capsule", "query", "capsule", id);
  const WallTimer timer;
  Result<std::shared_ptr<const CachedCapsule>> entry = cache_->GetOrLoadCapsule(
      key_, id, [this, id] { return box_.ReadCapsule(id); }, &was_hit);
  stats_.decompress_nanos += ElapsedNanos(timer);
  if (!entry.ok()) {
    LatchError(entry.status());
    return nullptr;
  }
  const CachedCapsule* capsule =
      capsule_pins_.emplace(id, std::move(*entry)).first->second.get();
  if (was_hit) {
    ++stats_.cache_hits;
    stats_.bytes_saved += capsule->blob().size();
  } else {
    ++stats_.cache_misses;
    ++stats_.capsules_decompressed;
    stats_.bytes_decompressed += capsule->blob().size();
  }
  if (explain_ != nullptr) {
    explain_->Record(id,
                     was_hit ? CapsuleFate::kCacheHit
                             : CapsuleFate::kDecompressed,
                     capsule->blob().size());
  }
  return capsule;
}

std::string_view BoxQuerier::CapsuleBlob(uint32_t id) {
  if (cache_ != nullptr) {
    const CachedCapsule* capsule = FetchCachedCapsule(id);
    return capsule != nullptr ? std::string_view(capsule->blob())
                              : std::string_view();
  }
  const auto it = blob_cache_.find(id);
  if (it != blob_cache_.end()) {
    return it->second;
  }
  const TraceSpan span("locator.decompress", "query", "capsule", id);
  const WallTimer timer;
  Result<std::string> blob = box_.ReadCapsule(id);
  stats_.decompress_nanos += ElapsedNanos(timer);
  if (!blob.ok()) {
    LatchError(blob.status());
    return {};
  }
  ++stats_.capsules_decompressed;
  stats_.bytes_decompressed += blob->size();
  if (explain_ != nullptr) {
    explain_->Record(id, CapsuleFate::kDecompressed, blob->size());
  }
  return blob_cache_.emplace(id, std::move(*blob)).first->second;
}

const std::vector<std::string_view>& BoxQuerier::DelimitedValues(uint32_t id) {
  if (cache_ != nullptr) {
    const CachedCapsule* capsule = FetchCachedCapsule(id);
    return capsule != nullptr ? capsule->splits() : empty_values_;
  }
  const auto it = split_cache_.find(id);
  if (it != split_cache_.end()) {
    return it->second;
  }
  const std::string_view blob = CapsuleBlob(id);
  return split_cache_.emplace(id, SplitDelimitedBlob(blob)).first->second;
}

const std::vector<uint32_t>& BoxQuerier::PresentRows(uint32_t group_idx,
                                                     uint32_t slot) {
  const uint64_t key = (static_cast<uint64_t>(group_idx) << 32) | slot;
  const auto it = present_rows_cache_.find(key);
  if (it != present_rows_cache_.end()) {
    return it->second;
  }
  const GroupMeta& group = box_.meta().groups[group_idx];
  const RealVarMeta& rv = group.vars[slot].real();
  std::vector<uint32_t> present;
  // outlier_rows.size() <= row_count is guaranteed by CapsuleBox::Open's
  // metadata validation; guard anyway so a future caller can't underflow.
  present.reserve(group.row_count >= rv.outlier_rows.size()
                      ? group.row_count - rv.outlier_rows.size()
                      : 0);
  size_t next_outlier = 0;
  for (uint32_t row = 0; row < group.row_count; ++row) {
    if (next_outlier < rv.outlier_rows.size() &&
        rv.outlier_rows[next_outlier] == row) {
      ++next_outlier;
    } else {
      present.push_back(row);
    }
  }
  return present_rows_cache_.emplace(key, std::move(present)).first->second;
}

void BoxQuerier::ExplainGroupCapsules(const GroupMeta& group,
                                      CapsuleFate fate) {
  for (const VarMeta& var : group.vars) {
    if (var.is_whole()) {
      if (var.whole().capsule != kNoCapsule) {
        explain_->Record(var.whole().capsule, fate);
      }
    } else if (var.is_real()) {
      const RealVarMeta& rv = var.real();
      for (uint32_t capsule : rv.subvar_capsules) {
        explain_->Record(capsule, fate);
      }
      if (rv.outlier_capsule != kNoCapsule) {
        explain_->Record(rv.outlier_capsule, fate);
      }
    } else {
      const NominalVarMeta& nv = var.nominal();
      if (nv.dict_capsule != kNoCapsule) {
        explain_->Record(nv.dict_capsule, fate);
      }
      if (nv.index_capsule != kNoCapsule) {
        explain_->Record(nv.index_capsule, fate);
      }
    }
  }
}

RowSet BoxQuerier::MatchKeywordInGroup(uint32_t group_idx,
                                       std::string_view keyword) {
  const GroupMeta& group = box_.meta().groups[group_idx];
  const StaticPattern& tmpl = box_.meta().templates[group.template_id];
  // Static pattern hit: the keyword is contained in a constant token, so
  // every entry of the group matches — none of the group's Capsules need to
  // be consulted at all.
  for (const StaticPattern::Tok& tok : tmpl.tokens()) {
    if (!tok.is_var && KeywordHitsToken(keyword, tok.text)) {
      if (explain_ != nullptr) {
        explain_->BeginVisit(group_idx, -1, "group", keyword);
        ExplainGroupCapsules(group, CapsuleFate::kStaticHit);
      }
      return RowSet::All(group.row_count);
    }
  }
  RowSet rows = RowSet::None(group.row_count);
  for (uint32_t slot = 0; slot < group.vars.size(); ++slot) {
    if (rows.IsAll()) {
      break;
    }
    RowSet var_rows = RowSet::None(group.row_count);
    const VarMeta& var = group.vars[slot];
    if (var.is_whole()) {
      if (explain_ != nullptr) {
        explain_->BeginVisit(group_idx, static_cast<int32_t>(slot), "whole",
                             keyword);
      }
      var_rows = MatchInWhole(group, var.whole(), keyword);
    } else if (var.is_real()) {
      if (explain_ != nullptr) {
        explain_->BeginVisit(group_idx, static_cast<int32_t>(slot), "real",
                             keyword);
      }
      var_rows = MatchInReal(group, group_idx, slot, var.real(), keyword);
    } else {
      if (explain_ != nullptr) {
        explain_->BeginVisit(group_idx, static_cast<int32_t>(slot), "nominal",
                             keyword);
      }
      var_rows = MatchInNominal(group, var.nominal(), keyword);
    }
    rows = rows.UnionWith(var_rows);
  }
  return rows;
}

RowSet BoxQuerier::MatchKeywordInOutliers(std::string_view keyword) {
  const CapsuleBoxMeta& meta = box_.meta();
  const uint32_t universe =
      static_cast<uint32_t>(meta.outlier_line_numbers.size());
  if (meta.outlier_capsule == kNoCapsule || universe == 0) {
    return RowSet::None(universe);
  }
  if (explain_ != nullptr) {
    explain_->BeginVisit(0, -1, "outliers", keyword);
  }
  const std::vector<std::string_view>& lines =
      DelimitedValues(meta.outlier_capsule);
  std::vector<uint32_t> hits;
  for (uint32_t i = 0; i < lines.size(); ++i) {
    // Raw lines: the keyword hits if it is contained in any token.
    for (std::string_view token : TokenizeKeywords(lines[i])) {
      if (KeywordHitsToken(keyword, token)) {
        hits.push_back(i);
        break;
      }
    }
  }
  return RowSet::Of(universe, std::move(hits));
}

RowSet BoxQuerier::MatchInWhole(const GroupMeta& group, const WholeVarMeta& wv,
                                std::string_view keyword) {
  if (options_.use_stamps &&
      !StampAdmits(wv.stamp, keyword, /*wildcard_aware=*/true)) {
    ++stats_.capsules_stamp_filtered;
    if (explain_ != nullptr && wv.capsule != kNoCapsule) {
      explain_->Record(wv.capsule, StampRejectFate(wv.stamp, keyword, true));
    }
    return RowSet::None(group.row_count);
  }
  const bool wild = HasWildcards(keyword);
  std::vector<uint32_t> hits;
  if (box_.meta().padded) {
    const std::string_view blob = CapsuleBlob(wv.capsule);
    const uint32_t width = wv.stamp.PadWidth();
    if (wild) {
      const uint32_t count = static_cast<uint32_t>(
          std::min<uint64_t>(blob.size() / width, kMaxColumnRows));
      for (uint32_t row = 0; row < count; ++row) {
        if (KeywordHitsToken(keyword, TrimCell(PaddedCell(blob, width, row)))) {
          hits.push_back(row);
        }
      }
    } else {
      hits = SearchPaddedColumn(blob, width, FragmentMode::kSub, keyword,
                                options_.use_bm);
    }
  } else {
    const std::vector<std::string_view>& values = DelimitedValues(wv.capsule);
    for (uint32_t row = 0; row < values.size(); ++row) {
      const bool hit = wild ? KeywordHitsToken(keyword, values[row])
                            : !KmpSearch(values[row], keyword).empty();
      if (hit) {
        hits.push_back(row);
      }
    }
  }
  return RowSet::Of(group.row_count, std::move(hits));
}

std::vector<uint32_t> BoxQuerier::EvaluateConstraints(const RealVarMeta& rv,
                                                      const PossibleMatch& match) {
  std::vector<uint32_t> candidate_rows;  // present-row indices
  bool first = true;
  for (const SubVarConstraint& c : match.constraints) {
    const CapsuleStamp& stamp = rv.subvar_stamps[c.subvar];
    if (options_.use_stamps &&
        !StampAdmits(stamp, c.fragment, /*wildcard_aware=*/false)) {
      ++stats_.capsules_stamp_filtered;
      if (explain_ != nullptr) {
        explain_->Record(rv.subvar_capsules[c.subvar],
                         StampRejectFate(stamp, c.fragment, false));
      }
      return {};
    }
    const uint32_t capsule = rv.subvar_capsules[c.subvar];
    if (box_.meta().padded) {
      const std::string_view blob = CapsuleBlob(capsule);
      const uint32_t width = rv.subvar_stamps[c.subvar].PadWidth();
      if (first) {
        candidate_rows = SearchPaddedColumn(blob, width, c.mode, c.fragment,
                                            options_.use_bm);
        first = false;
      } else {
        // Direct row checking (§5.2): only revisit surviving candidates.
        candidate_rows =
            CheckPaddedRows(blob, width, c.mode, c.fragment, candidate_rows);
      }
    } else {
      const std::string_view blob = CapsuleBlob(capsule);
      std::vector<uint32_t> rows =
          SearchDelimitedColumn(blob, c.mode, c.fragment);
      if (first) {
        candidate_rows = std::move(rows);
        first = false;
      } else {
        std::vector<uint32_t> merged;
        std::set_intersection(candidate_rows.begin(), candidate_rows.end(),
                              rows.begin(), rows.end(),
                              std::back_inserter(merged));
        candidate_rows = std::move(merged);
      }
    }
    if (candidate_rows.empty()) {
      return {};
    }
  }
  return candidate_rows;
}

RowSet BoxQuerier::MatchInReal(const GroupMeta& group, uint32_t group_idx,
                               uint32_t slot, const RealVarMeta& rv,
                               std::string_view keyword) {
  RowSet rows = RowSet::None(group.row_count);

  // Outlier values never follow the pattern; scan them directly.
  if (rv.outlier_capsule != kNoCapsule) {
    const std::vector<std::string_view>& outliers =
        DelimitedValues(rv.outlier_capsule);
    std::vector<uint32_t> hits;
    for (uint32_t i = 0; i < outliers.size(); ++i) {
      if (KeywordHitsToken(keyword, outliers[i])) {
        hits.push_back(rv.outlier_rows[i]);
      }
    }
    rows = rows.UnionWith(RowSet::Of(group.row_count, std::move(hits)));
  }

  const std::vector<uint32_t>& present = PresentRows(group_idx, slot);
  if (present.empty()) {
    return rows;
  }

  if (HasWildcards(keyword)) {
    // Wildcard fallback: materialize full values of present rows.
    const uint32_t num_subvars = rv.pattern.SubVarCount();
    std::vector<std::string_view> blobs(num_subvars);
    std::vector<const std::vector<std::string_view>*> cols(num_subvars, nullptr);
    for (uint32_t sv = 0; sv < num_subvars; ++sv) {
      if (box_.meta().padded) {
        blobs[sv] = CapsuleBlob(rv.subvar_capsules[sv]);
      } else {
        cols[sv] = &DelimitedValues(rv.subvar_capsules[sv]);
      }
    }
    std::vector<uint32_t> hits;
    std::vector<std::string_view> subvalues(num_subvars);
    for (uint32_t p = 0; p < present.size(); ++p) {
      for (uint32_t sv = 0; sv < num_subvars; ++sv) {
        if (box_.meta().padded) {
          subvalues[sv] =
              TrimCell(PaddedCell(blobs[sv], rv.subvar_stamps[sv].PadWidth(), p));
        } else {
          subvalues[sv] = (*cols[sv])[p];
        }
      }
      if (KeywordHitsToken(keyword, rv.pattern.Render(subvalues))) {
        hits.push_back(present[p]);
      }
    }
    return rows.UnionWith(RowSet::Of(group.row_count, std::move(hits)));
  }

  const std::vector<PossibleMatch> matches =
      MatchKeywordOnPattern(rv.pattern, keyword);
  stats_.possible_matches += matches.size();
  if (explain_ != nullptr && matches.empty()) {
    // Runtime-pattern miss: no expansion of the pattern can contain the
    // keyword, so none of the sub-variable Capsules need to be opened.
    for (uint32_t capsule : rv.subvar_capsules) {
      explain_->Record(capsule, CapsuleFate::kPatternMiss);
    }
  }
  for (const PossibleMatch& match : matches) {
    if (match.trivial()) {
      ++stats_.pattern_trivial_hits;
      if (explain_ != nullptr) {
        // Trivial possible match: every present row matches via the
        // pattern's constant fragments alone — Capsules stay closed.
        for (uint32_t capsule : rv.subvar_capsules) {
          explain_->Record(capsule, CapsuleFate::kPatternTrivial);
        }
      }
      rows = rows.UnionWith(RowSet::Of(group.row_count, present));
      break;
    }
    std::vector<uint32_t> present_hits = EvaluateConstraints(rv, match);
    if (present_hits.empty()) {
      continue;
    }
    std::vector<uint32_t> group_rows;
    group_rows.reserve(present_hits.size());
    for (uint32_t p : present_hits) {
      group_rows.push_back(present[p]);
    }
    rows = rows.UnionWith(RowSet::Of(group.row_count, std::move(group_rows)));
  }
  return rows;
}

RowSet BoxQuerier::MatchInNominal(const GroupMeta& group,
                                  const NominalVarMeta& nv,
                                  std::string_view keyword) {
  const bool wild = HasWildcards(keyword);

  // Phase 1: find matching dictionary ids, section by section. A section is
  // only scanned when the keyword can match its runtime pattern and passes
  // its stamp (§5.1 "differences for nominal variable vectors").
  std::vector<uint32_t> dict_ids;
  uint32_t first_id = 0;
  uint64_t byte_offset = 0;
  const std::vector<std::string_view>* dict_values = nullptr;
  std::string_view dict_blob;
  bool dict_fetched = false;  // decompress lazily: stamps may filter it all
  // First prune reason, for the explain record when no section survives.
  CapsuleFate prune_fate = CapsuleFate::kPatternMiss;
  bool have_prune_fate = false;
  const auto note_prune = [&](CapsuleFate fate) {
    if (!have_prune_fate) {
      prune_fate = fate;
      have_prune_fate = true;
    }
  };
  // Batched stamp evaluation: the keyword is classified once (memoized
  // probe), then every section stamp is tested in one timed pass — two
  // integer compares per section instead of a re-classification each.
  if (options_.use_stamps) {
    const StampProbe& probe = ProbeFor(keyword, /*wildcard_aware=*/wild);
    const WallTimer timer;
    stamp_admits_.resize(nv.patterns.size());
    for (size_t i = 0; i < nv.patterns.size(); ++i) {
      stamp_admits_[i] = nv.patterns[i].stamp.AdmitsProbe(probe);
    }
    stats_.stamp_filter_nanos += ElapsedNanos(timer);
  }
  for (size_t pm_idx = 0; pm_idx < nv.patterns.size(); ++pm_idx) {
    const NominalPatternMeta& pm = nv.patterns[pm_idx];
    const uint32_t width = pm.stamp.PadWidth();
    const bool stamp_admits = !options_.use_stamps || stamp_admits_[pm_idx];
    bool candidate = true;
    // The stamp-filter counter and explain fates keep the original order:
    // a section pruned by its runtime pattern is never charged to the stamp.
    if (!wild) {
      if (MatchKeywordOnPattern(pm.pattern, keyword).empty()) {
        note_prune(CapsuleFate::kPatternMiss);
        candidate = false;
      } else if (!stamp_admits) {
        ++stats_.capsules_stamp_filtered;
        note_prune(StampRejectFate(pm.stamp, keyword, false));
        candidate = false;
      }
    } else if (!stamp_admits) {
      ++stats_.capsules_stamp_filtered;
      note_prune(StampRejectFate(pm.stamp, keyword, true));
      candidate = false;
    }
    if (candidate) {
      // Jump straight to this section (sum of count*len of prior patterns).
      for (uint32_t i = 0; i < pm.count; ++i) {
        std::string_view value;
        if (box_.meta().padded) {
          if (!dict_fetched) {
            dict_blob = CapsuleBlob(nv.dict_capsule);
            dict_fetched = true;
          }
          // A corrupt Capsule can decompress to a blob shorter than the
          // metadata's section sizes imply; clamp instead of letting substr
          // throw past the end.
          const uint64_t cell_off =
              byte_offset + static_cast<uint64_t>(i) * width;
          if (cell_off >= dict_blob.size()) {
            break;  // nothing left to scan in this truncated dictionary
          }
          value = TrimCell(dict_blob.substr(cell_off, width));
        } else {
          if (dict_values == nullptr) {
            dict_values = &DelimitedValues(nv.dict_capsule);
          }
          if (first_id + i >= dict_values->size()) {
            break;  // truncated delimited dictionary
          }
          value = (*dict_values)[first_id + i];
        }
        const bool hit = wild ? KeywordHitsToken(keyword, value)
                              : value.find(keyword) != std::string_view::npos;
        if (hit) {
          dict_ids.push_back(first_id + i);
        }
      }
    }
    first_id += pm.count;
    byte_offset += static_cast<uint64_t>(pm.count) * width;
  }
  if (explain_ != nullptr && !dict_fetched && dict_values == nullptr &&
      nv.dict_capsule != kNoCapsule) {
    // The dictionary Capsule was never opened: every section was pruned by
    // its runtime pattern or stamp (record the first reason encountered).
    explain_->Record(nv.dict_capsule, prune_fate);
  }
  if (dict_ids.empty()) {
    if (explain_ != nullptr && nv.index_capsule != kNoCapsule) {
      // No dictionary value matched, so the row index is never consulted.
      explain_->Record(nv.index_capsule, CapsuleFate::kPatternMiss);
    }
    return RowSet::None(group.row_count);
  }

  // Phase 2: map dictionary ids to rows via the index Capsule.
  std::vector<bool> wanted(first_id, false);
  for (uint32_t id : dict_ids) {
    wanted[id] = true;
  }
  std::vector<uint32_t> hits;
  auto parse_id = [](std::string_view cell) -> uint32_t {
    uint32_t v = 0;
    for (char c : cell) {
      if (c < '0' || c > '9') {
        break;
      }
      v = v * 10 + static_cast<uint32_t>(c - '0');
    }
    return v;
  };
  if (box_.meta().padded) {
    const std::string_view index_blob = CapsuleBlob(nv.index_capsule);
    const uint32_t width = nv.index_width == 0 ? 1 : nv.index_width;
    const uint32_t count = static_cast<uint32_t>(
        std::min<uint64_t>(index_blob.size() / width, kMaxColumnRows));
    for (uint32_t row = 0; row < count; ++row) {
      const uint32_t id = parse_id(PaddedCell(index_blob, width, row));
      if (id < wanted.size() && wanted[id]) {
        hits.push_back(row);
      }
    }
  } else {
    const std::vector<std::string_view>& cells = DelimitedValues(nv.index_capsule);
    for (uint32_t row = 0; row < cells.size(); ++row) {
      const uint32_t id = parse_id(cells[row]);
      if (id < wanted.size() && wanted[id]) {
        hits.push_back(row);
      }
    }
  }
  return RowSet::Of(group.row_count, std::move(hits));
}

}  // namespace loggrep
