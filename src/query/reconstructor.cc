#include "src/query/reconstructor.h"

#include <algorithm>

#include "src/capsule/capsule.h"

namespace loggrep {
namespace {

uint32_t ParseDecimal(std::string_view cell) {
  uint32_t v = 0;
  for (char c : cell) {
    if (c < '0' || c > '9') {
      break;
    }
    v = v * 10 + static_cast<uint32_t>(c - '0');
  }
  return v;
}

}  // namespace

std::string Reconstructor::VariableValue(uint32_t group_idx, uint32_t slot,
                                         uint32_t row) {
  const CapsuleBoxMeta& meta = querier_->box().meta();
  const GroupMeta& group = meta.groups[group_idx];
  const VarMeta& var = group.vars[slot];
  const bool padded = meta.padded;

  if (var.is_whole()) {
    const WholeVarMeta& wv = var.whole();
    if (padded) {
      const std::string_view blob = querier_->CapsuleBlob(wv.capsule);
      return std::string(TrimCell(PaddedCell(blob, wv.stamp.PadWidth(), row)));
    }
    const std::vector<std::string_view>& values =
        querier_->DelimitedValues(wv.capsule);
    return row < values.size() ? std::string(values[row]) : std::string();
  }

  if (var.is_real()) {
    const RealVarMeta& rv = var.real();
    // Outlier rows come from the outlier Capsule.
    const auto out_it =
        std::lower_bound(rv.outlier_rows.begin(), rv.outlier_rows.end(), row);
    if (out_it != rv.outlier_rows.end() && *out_it == row) {
      const size_t outlier_idx =
          static_cast<size_t>(out_it - rv.outlier_rows.begin());
      const std::vector<std::string_view>& outliers =
          querier_->DelimitedValues(rv.outlier_capsule);
      return outlier_idx < outliers.size() ? std::string(outliers[outlier_idx])
                                           : std::string();
    }
    // Present row: rank within non-outlier rows.
    const uint32_t skipped = static_cast<uint32_t>(
        out_it - rv.outlier_rows.begin());
    const uint32_t present_idx = row - skipped;
    const uint32_t num_subvars = rv.pattern.SubVarCount();
    std::vector<std::string_view> subvalues(num_subvars);
    for (uint32_t sv = 0; sv < num_subvars; ++sv) {
      if (padded) {
        const std::string_view blob =
            querier_->CapsuleBlob(rv.subvar_capsules[sv]);
        subvalues[sv] = TrimCell(
            PaddedCell(blob, rv.subvar_stamps[sv].PadWidth(), present_idx));
      } else {
        const std::vector<std::string_view>& col =
            querier_->DelimitedValues(rv.subvar_capsules[sv]);
        subvalues[sv] = present_idx < col.size() ? col[present_idx]
                                                 : std::string_view();
      }
    }
    return rv.pattern.Render(subvalues);
  }

  const NominalVarMeta& nv = var.nominal();
  uint32_t dict_id = 0;
  if (padded) {
    const std::string_view index_blob = querier_->CapsuleBlob(nv.index_capsule);
    const uint32_t width = nv.index_width == 0 ? 1 : nv.index_width;
    dict_id = ParseDecimal(PaddedCell(index_blob, width, row));
  } else {
    const std::vector<std::string_view>& cells =
        querier_->DelimitedValues(nv.index_capsule);
    dict_id = row < cells.size() ? ParseDecimal(cells[row]) : 0;
  }
  // Locate the dictionary section holding dict_id; sections are laid out in
  // pattern order with known counts and widths (§5.2 direct locating).
  uint32_t first_id = 0;
  uint64_t byte_offset = 0;
  for (const NominalPatternMeta& pm : nv.patterns) {
    if (dict_id < first_id + pm.count) {
      if (padded) {
        const std::string_view dict_blob = querier_->CapsuleBlob(nv.dict_capsule);
        const uint32_t width = pm.stamp.PadWidth();
        const uint64_t cell_off =
            byte_offset + static_cast<uint64_t>(dict_id - first_id) * width;
        if (cell_off >= dict_blob.size()) {
          return {};  // truncated/corrupt dictionary Capsule
        }
        return std::string(TrimCell(dict_blob.substr(cell_off, width)));
      }
      const std::vector<std::string_view>& values =
          querier_->DelimitedValues(nv.dict_capsule);
      return dict_id < values.size() ? std::string(values[dict_id])
                                     : std::string();
    }
    first_id += pm.count;
    byte_offset += static_cast<uint64_t>(pm.count) * pm.stamp.PadWidth();
  }
  return {};
}

std::string Reconstructor::RenderRow(uint32_t group_idx, uint32_t row) {
  const CapsuleBoxMeta& meta = querier_->box().meta();
  const GroupMeta& group = meta.groups[group_idx];
  const StaticPattern& tmpl = meta.templates[group.template_id];
  std::vector<std::string> values;
  values.reserve(static_cast<size_t>(tmpl.VarCount()));
  for (uint32_t slot = 0; slot < group.vars.size(); ++slot) {
    values.push_back(VariableValue(group_idx, slot, row));
  }
  std::vector<std::string_view> views(values.begin(), values.end());
  return tmpl.Render(views);
}

std::string Reconstructor::RenderOutlier(uint32_t outlier_idx) {
  const CapsuleBoxMeta& meta = querier_->box().meta();
  if (meta.outlier_capsule == kNoCapsule) {
    return {};
  }
  const std::vector<std::string_view>& lines =
      querier_->DelimitedValues(meta.outlier_capsule);
  return outlier_idx < lines.size() ? std::string(lines[outlier_idx])
                                    : std::string();
}

}  // namespace loggrep
