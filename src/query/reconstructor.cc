#include "src/query/reconstructor.h"

#include <algorithm>

#include "src/capsule/capsule.h"

namespace loggrep {
namespace {

uint32_t ParseDecimal(std::string_view cell) {
  uint32_t v = 0;
  for (char c : cell) {
    if (c < '0' || c > '9') {
      break;
    }
    v = v * 10 + static_cast<uint32_t>(c - '0');
  }
  return v;
}

}  // namespace

std::string_view Reconstructor::VariableValueView(uint32_t group_idx,
                                                  uint32_t slot,
                                                  uint32_t row) {
  const CapsuleBoxMeta& meta = querier_->box().meta();
  const GroupMeta& group = meta.groups[group_idx];
  const VarMeta& var = group.vars[slot];
  const bool padded = meta.padded;

  if (var.is_whole()) {
    const WholeVarMeta& wv = var.whole();
    if (padded) {
      const std::string_view blob = querier_->CapsuleBlob(wv.capsule);
      return TrimCell(PaddedCell(blob, wv.stamp.PadWidth(), row));
    }
    const std::vector<std::string_view>& values =
        querier_->DelimitedValues(wv.capsule);
    return row < values.size() ? values[row] : std::string_view();
  }

  if (var.is_real()) {
    const RealVarMeta& rv = var.real();
    // Outlier rows come from the outlier Capsule.
    const auto out_it =
        std::lower_bound(rv.outlier_rows.begin(), rv.outlier_rows.end(), row);
    if (out_it != rv.outlier_rows.end() && *out_it == row) {
      const size_t outlier_idx =
          static_cast<size_t>(out_it - rv.outlier_rows.begin());
      const std::vector<std::string_view>& outliers =
          querier_->DelimitedValues(rv.outlier_capsule);
      return outlier_idx < outliers.size() ? outliers[outlier_idx]
                                           : std::string_view();
    }
    // Present row: rank within non-outlier rows.
    const uint32_t skipped = static_cast<uint32_t>(
        out_it - rv.outlier_rows.begin());
    const uint32_t present_idx = row - skipped;
    const uint32_t num_subvars = rv.pattern.SubVarCount();
    subvalue_views_.assign(num_subvars, std::string_view());
    for (uint32_t sv = 0; sv < num_subvars; ++sv) {
      if (padded) {
        const std::string_view blob =
            querier_->CapsuleBlob(rv.subvar_capsules[sv]);
        subvalue_views_[sv] = TrimCell(
            PaddedCell(blob, rv.subvar_stamps[sv].PadWidth(), present_idx));
      } else {
        const std::vector<std::string_view>& col =
            querier_->DelimitedValues(rv.subvar_capsules[sv]);
        subvalue_views_[sv] = present_idx < col.size() ? col[present_idx]
                                                       : std::string_view();
      }
    }
    // The only copy on this path: splice sub-variables into the pattern,
    // parked in the arena so the view outlives the scratch buffer's reuse.
    render_scratch_.clear();
    rv.pattern.RenderTo(subvalue_views_, &render_scratch_);
    return arena_.Store(render_scratch_);
  }

  const NominalVarMeta& nv = var.nominal();
  uint32_t dict_id = 0;
  if (padded) {
    const std::string_view index_blob = querier_->CapsuleBlob(nv.index_capsule);
    const uint32_t width = nv.index_width == 0 ? 1 : nv.index_width;
    dict_id = ParseDecimal(PaddedCell(index_blob, width, row));
  } else {
    const std::vector<std::string_view>& cells =
        querier_->DelimitedValues(nv.index_capsule);
    dict_id = row < cells.size() ? ParseDecimal(cells[row]) : 0;
  }
  // Locate the dictionary section holding dict_id; sections are laid out in
  // pattern order with known counts and widths (§5.2 direct locating).
  uint32_t first_id = 0;
  uint64_t byte_offset = 0;
  for (const NominalPatternMeta& pm : nv.patterns) {
    if (dict_id < first_id + pm.count) {
      if (padded) {
        const std::string_view dict_blob = querier_->CapsuleBlob(nv.dict_capsule);
        const uint32_t width = pm.stamp.PadWidth();
        const uint64_t cell_off =
            byte_offset + static_cast<uint64_t>(dict_id - first_id) * width;
        if (cell_off >= dict_blob.size()) {
          return {};  // truncated/corrupt dictionary Capsule
        }
        return TrimCell(dict_blob.substr(cell_off, width));
      }
      const std::vector<std::string_view>& values =
          querier_->DelimitedValues(nv.dict_capsule);
      return dict_id < values.size() ? values[dict_id] : std::string_view();
    }
    first_id += pm.count;
    byte_offset += static_cast<uint64_t>(pm.count) * pm.stamp.PadWidth();
  }
  return {};
}

void Reconstructor::RenderRowTo(uint32_t group_idx, uint32_t row,
                                std::string* out) {
  const CapsuleBoxMeta& meta = querier_->box().meta();
  const GroupMeta& group = meta.groups[group_idx];
  const StaticPattern& tmpl = meta.templates[group.template_id];
  arena_.Reset();  // invalidates the previous row's pattern-rendered values
  value_views_.clear();
  value_views_.reserve(group.vars.size());
  for (uint32_t slot = 0; slot < group.vars.size(); ++slot) {
    value_views_.push_back(VariableValueView(group_idx, slot, row));
  }
  tmpl.RenderTo(value_views_, out);
}

void Reconstructor::RenderOutlierTo(uint32_t outlier_idx, std::string* out) {
  const CapsuleBoxMeta& meta = querier_->box().meta();
  if (meta.outlier_capsule == kNoCapsule) {
    return;
  }
  const std::vector<std::string_view>& lines =
      querier_->DelimitedValues(meta.outlier_capsule);
  if (outlier_idx < lines.size()) {
    out->append(lines[outlier_idx]);
  }
}

std::string Reconstructor::RenderRow(uint32_t group_idx, uint32_t row) {
  std::string out;
  RenderRowTo(group_idx, row, &out);
  return out;
}

std::string Reconstructor::RenderOutlier(uint32_t outlier_idx) {
  std::string out;
  RenderOutlierTo(outlier_idx, &out);
  return out;
}

}  // namespace loggrep
