#include "src/baselines/es_like.h"

#include <algorithm>
#include <map>
#include <memory>

#include "src/codec/codec.h"
#include "src/common/bytes.h"
#include "src/common/rowset.h"
#include "src/parser/template_miner.h"
#include "src/parser/tokenizer.h"
#include "src/query/query_parser.h"
#include "src/query/wildcard.h"

namespace loggrep {
namespace {

constexpr uint32_t kMagic = 0x4B495345u;  // "ESIK"

struct OpenedIndex {
  uint32_t total_lines = 0;
  uint32_t doc_block_lines = 0;
  // Sorted term dictionary with postings (line ids).
  std::vector<std::pair<std::string_view, std::vector<uint32_t>>> terms;
  std::vector<std::pair<uint64_t, uint64_t>> doc_blocks;  // offset, length
  std::string_view payload;
};

Result<OpenedIndex> OpenIndex(std::string_view stored) {
  ByteReader in(stored);
  Result<uint32_t> magic = in.ReadU32();
  if (!magic.ok()) {
    return magic.status();
  }
  if (*magic != kMagic) {
    return CorruptData("es-like: bad magic");
  }
  OpenedIndex index;
  Result<uint64_t> total = in.ReadVarint();
  if (!total.ok()) {
    return total.status();
  }
  index.total_lines = static_cast<uint32_t>(*total);
  Result<uint64_t> block_lines = in.ReadVarint();
  if (!block_lines.ok()) {
    return block_lines.status();
  }
  index.doc_block_lines = static_cast<uint32_t>(*block_lines);

  Result<uint64_t> num_terms = in.ReadVarint();
  if (!num_terms.ok()) {
    return num_terms.status();
  }
  index.terms.reserve(*num_terms);
  for (uint64_t i = 0; i < *num_terms; ++i) {
    Result<std::string_view> term = in.ReadLengthPrefixed();
    if (!term.ok()) {
      return term.status();
    }
    Result<uint64_t> n = in.ReadVarint();
    if (!n.ok()) {
      return n.status();
    }
    std::vector<uint32_t> postings;
    postings.reserve(*n);
    uint32_t prev = 0;
    for (uint64_t p = 0; p < *n; ++p) {
      Result<uint64_t> d = in.ReadVarint();
      if (!d.ok()) {
        return d.status();
      }
      prev += static_cast<uint32_t>(*d);
      postings.push_back(prev);
      // Skip the positional payload (kept on disk for ES fidelity; the
      // keyword queries here only need doc ids).
      Result<uint64_t> npos = in.ReadVarint();
      if (!npos.ok()) {
        return npos.status();
      }
      for (uint64_t q = 0; q < *npos; ++q) {
        Result<uint64_t> skip = in.ReadVarint();
        if (!skip.ok()) {
          return skip.status();
        }
      }
    }
    index.terms.emplace_back(*term, std::move(postings));
  }
  Result<std::string_view> norms = in.ReadLengthPrefixed();
  if (!norms.ok()) {
    return norms.status();
  }

  Result<uint64_t> num_blocks = in.ReadVarint();
  if (!num_blocks.ok()) {
    return num_blocks.status();
  }
  for (uint64_t i = 0; i < *num_blocks; ++i) {
    Result<uint64_t> offset = in.ReadVarint();
    if (!offset.ok()) {
      return offset.status();
    }
    Result<uint64_t> length = in.ReadVarint();
    if (!length.ok()) {
      return length.status();
    }
    index.doc_blocks.emplace_back(*offset, *length);
  }
  Result<std::string_view> payload = in.ReadBytes(in.remaining());
  if (!payload.ok()) {
    return payload.status();
  }
  index.payload = *payload;
  return index;
}

RowSet RowsForKeyword(const OpenedIndex& index, std::string_view keyword) {
  // ES infix semantics: scan the term dictionary for terms containing the
  // keyword and union their postings (single sort+dedup at the end).
  std::vector<uint32_t> rows;
  for (const auto& [term, postings] : index.terms) {
    if (!KeywordHitsToken(keyword, term)) {
      continue;
    }
    rows.insert(rows.end(), postings.begin(), postings.end());
  }
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  return RowSet::Of(index.total_lines, std::move(rows));
}

RowSet RowsForExpr(const OpenedIndex& index, const QueryExpr& expr) {
  switch (expr.kind) {
    case QueryExpr::Kind::kTerm: {
      RowSet rows = RowSet::All(index.total_lines);
      for (const std::string& kw : expr.term.keywords) {
        rows = rows.IntersectWith(RowsForKeyword(index, kw));
      }
      return rows;
    }
    case QueryExpr::Kind::kAnd:
      return RowsForExpr(index, *expr.left)
          .IntersectWith(RowsForExpr(index, *expr.right));
    case QueryExpr::Kind::kOr:
      return RowsForExpr(index, *expr.left)
          .UnionWith(RowsForExpr(index, *expr.right));
    case QueryExpr::Kind::kNot: {
      const RowSet right = RowsForExpr(index, *expr.right).Complement();
      if (expr.left == nullptr) {
        return right;
      }
      return RowsForExpr(index, *expr.left).IntersectWith(right);
    }
  }
  return RowSet::None(index.total_lines);
}

}  // namespace

std::string EsLikeBackend::Compress(std::string_view text) const {
  const std::vector<std::string_view> lines = SplitLines(text);

  // Inverted index over tokens with positional postings (ES text fields
  // index term positions by default). std::map gives the sorted term
  // dictionary (and an ingest cost profile resembling index construction).
  struct Posting {
    uint32_t line;
    std::vector<uint32_t> positions;
  };
  std::map<std::string_view, std::vector<Posting>> postings;
  std::string norms;  // one byte per line (ES norms/field-length factor)
  for (uint32_t ln = 0; ln < lines.size(); ++ln) {
    uint32_t position = 0;
    for (std::string_view token : TokenizeKeywords(lines[ln])) {
      std::vector<Posting>& list = postings[token];
      if (list.empty() || list.back().line != ln) {
        list.push_back(Posting{ln, {}});
      }
      list.back().positions.push_back(position);
      ++position;
    }
    norms.push_back(static_cast<char>(position < 255 ? position : 255));
  }

  // Stored source: blocks of lines, lightly compressed (ES stores _source).
  const Codec& codec = GetZstdCodec();
  std::string payload;
  std::vector<std::pair<uint64_t, uint64_t>> doc_blocks;
  for (size_t start = 0; start < lines.size(); start += options_.doc_block_lines) {
    std::string block;
    const size_t end = std::min(lines.size(),
                                start + static_cast<size_t>(options_.doc_block_lines));
    for (size_t i = start; i < end; ++i) {
      block.append(lines[i].data(), lines[i].size());
      block.push_back('\n');
    }
    const std::string compressed = codec.Compress(block);
    doc_blocks.emplace_back(payload.size(), compressed.size());
    payload += compressed;
  }

  ByteWriter out;
  out.PutU32(kMagic);
  out.PutVarint(lines.size());
  out.PutVarint(options_.doc_block_lines);
  out.PutVarint(postings.size());
  for (const auto& [term, list] : postings) {
    out.PutLengthPrefixed(term);
    out.PutVarint(list.size());
    uint32_t prev = 0;
    for (const Posting& p : list) {
      out.PutVarint(p.line - prev);
      prev = p.line;
      out.PutVarint(p.positions.size());
      uint32_t prev_pos = 0;
      for (uint32_t pos : p.positions) {
        out.PutVarint(pos - prev_pos);
        prev_pos = pos;
      }
    }
  }
  out.PutLengthPrefixed(norms);
  out.PutVarint(doc_blocks.size());
  for (const auto& [offset, length] : doc_blocks) {
    out.PutVarint(offset);
    out.PutVarint(length);
  }
  out.PutBytes(payload);
  return std::move(out).Take();
}

Result<QueryHits> EsLikeBackend::Query(std::string_view stored,
                                       std::string_view command) const {
  Result<std::unique_ptr<QueryExpr>> expr = ParseQuery(command);
  if (!expr.ok()) {
    return expr.status();
  }
  Result<OpenedIndex> index = OpenIndex(stored);
  if (!index.ok()) {
    return index.status();
  }
  const RowSet rows = RowsForExpr(*index, **expr);

  QueryHits hits;
  std::string current_block;
  std::vector<std::string_view> block_lines;
  uint32_t current_block_id = UINT32_MAX;
  for (uint32_t row : rows.ToRows()) {
    const uint32_t block_id = row / index->doc_block_lines;
    if (block_id != current_block_id) {
      if (block_id >= index->doc_blocks.size()) {
        return CorruptData("es-like: row beyond stored blocks");
      }
      const auto& [offset, length] = index->doc_blocks[block_id];
      Result<std::string> block =
          GetZstdCodec().Decompress(index->payload.substr(offset, length));
      if (!block.ok()) {
        return block.status();
      }
      current_block = std::move(*block);
      block_lines = SplitLines(current_block);
      current_block_id = block_id;
    }
    const uint32_t in_block = row % index->doc_block_lines;
    if (in_block >= block_lines.size()) {
      return CorruptData("es-like: row beyond block lines");
    }
    hits.emplace_back(row, std::string(block_lines[in_block]));
  }
  return hits;
}

}  // namespace loggrep
