// ElasticSearch-like baseline (§6): a full inverted index (term -> postings)
// over log tokens plus stored source lines, trading storage and ingest speed
// for query latency. Keyword containment queries scan the sorted term
// dictionary (ES wildcard/infix behavior) and union the matching postings.
#ifndef SRC_BASELINES_ES_LIKE_H_
#define SRC_BASELINES_ES_LIKE_H_

#include "src/baselines/backend.h"

namespace loggrep {

struct EsLikeOptions {
  uint32_t doc_block_lines = 1024;  // stored-source compression granularity
};

class EsLikeBackend : public LogStoreBackend {
 public:
  explicit EsLikeBackend(EsLikeOptions options = {}) : options_(options) {}

  const char* name() const override { return "es-like"; }
  std::string Compress(std::string_view text) const override;
  Result<QueryHits> Query(std::string_view stored,
                          std::string_view command) const override;

 private:
  EsLikeOptions options_;
};

}  // namespace loggrep

#endif  // SRC_BASELINES_ES_LIKE_H_
