// Adapter exposing LogGrepEngine through the LogStoreBackend interface, so
// the benches and examples can sweep all five evaluated systems uniformly
// (LogGrep, LogGrep-SP, gzip+grep, CLP-like, ES-like).
#ifndef SRC_BASELINES_LOGGREP_BACKEND_H_
#define SRC_BASELINES_LOGGREP_BACKEND_H_

#include <memory>

#include "src/baselines/backend.h"
#include "src/core/engine.h"

namespace loggrep {

class LogGrepBackend : public LogStoreBackend {
 public:
  explicit LogGrepBackend(EngineOptions options = {}, const char* name = "loggrep")
      : engine_(std::make_unique<LogGrepEngine>(options)), name_(name) {}

  // The LogGrep-SP configuration of §2.2 / §6.
  static LogGrepBackend StaticPatternsOnly() {
    EngineOptions opts;
    opts.static_only = true;
    return LogGrepBackend(opts, "loggrep-sp");
  }

  const char* name() const override { return name_; }

  std::string Compress(std::string_view text) const override {
    return engine_->CompressBlock(text);
  }

  Result<QueryHits> Query(std::string_view stored,
                          std::string_view command) const override {
    Result<QueryResult> result = engine_->Query(stored, command);
    if (!result.ok()) {
      return result.status();
    }
    return std::move(result->hits);
  }

  LogGrepEngine& engine() const { return *engine_; }

 private:
  // unique_ptr keeps the backend movable and the Query override const while
  // the engine mutates its query cache.
  std::unique_ptr<LogGrepEngine> engine_;
  const char* name_;
};

}  // namespace loggrep

#endif  // SRC_BASELINES_LOGGREP_BACKEND_H_
