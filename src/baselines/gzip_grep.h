// gzip+grep baseline (§6): the default near-line scheme in Alibaba Cloud.
// Compression is a plain whole-block gzip; a query decompresses the entire
// block and scans every line.
#ifndef SRC_BASELINES_GZIP_GREP_H_
#define SRC_BASELINES_GZIP_GREP_H_

#include "src/baselines/backend.h"

namespace loggrep {

class GzipGrepBackend : public LogStoreBackend {
 public:
  const char* name() const override { return "gzip+grep"; }
  std::string Compress(std::string_view text) const override;
  Result<QueryHits> Query(std::string_view stored,
                          std::string_view command) const override;
};

}  // namespace loggrep

#endif  // SRC_BASELINES_GZIP_GREP_H_
