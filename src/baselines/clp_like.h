// CLP-like baseline (§2.1): templates + variables stored in log-entry order,
// segments compressed at zstd's ratio class (the gzip-like codec here), and
// segment-level inverted indexes over static-pattern tokens and dictionary
// variables.
//
// Queries use the indexes to pick candidate segments for the first search
// string (CLP runs "the obscurest query" and pipes the rest through grep),
// then decompress, decode and scan those segments — the coarse-granularity
// filtering the paper improves upon.
#ifndef SRC_BASELINES_CLP_LIKE_H_
#define SRC_BASELINES_CLP_LIKE_H_

#include "src/baselines/backend.h"

namespace loggrep {

struct ClpLikeOptions {
  size_t segment_raw_bytes = 256 * 1024;  // raw bytes per segment
  size_t dict_var_max_distinct = 64;      // slot becomes a dictionary variable
};

class ClpLikeBackend : public LogStoreBackend {
 public:
  explicit ClpLikeBackend(ClpLikeOptions options = {}) : options_(options) {}

  const char* name() const override { return "clp-like"; }
  std::string Compress(std::string_view text) const override;
  Result<QueryHits> Query(std::string_view stored,
                          std::string_view command) const override;

 private:
  ClpLikeOptions options_;
};

}  // namespace loggrep

#endif  // SRC_BASELINES_CLP_LIKE_H_
