#include "src/baselines/clp_like.h"

#include <map>
#include <set>
#include <unordered_map>

#include "src/capsule/stamp.h"
#include "src/codec/codec.h"
#include "src/common/bytes.h"
#include "src/parser/block_parser.h"
#include "src/query/line_match.h"
#include "src/query/locator.h"
#include "src/query/query_parser.h"
#include "src/query/wildcard.h"

namespace loggrep {
namespace {

constexpr uint32_t kMagic = 0x4C504C43u;  // "CLPL"

struct SegmentInfo {
  uint64_t offset = 0;
  uint64_t length = 0;
  uint32_t first_line = 0;
  uint32_t line_count = 0;
  // Coarse summary over the segment's non-dictionary variable values and
  // outlier tokens: keeps index filtering sound (a keyword hiding inside an
  // unindexed variable cannot be excluded) while staying segment-granular.
  CapsuleStamp var_stamp;
};

void WriteSegList(ByteWriter& out, const std::vector<uint32_t>& segs) {
  out.PutVarint(segs.size());
  uint32_t prev = 0;
  for (uint32_t s : segs) {
    out.PutVarint(s - prev);
    prev = s;
  }
}

Result<std::vector<uint32_t>> ReadSegList(ByteReader& in) {
  Result<uint64_t> n = in.ReadVarint();
  if (!n.ok()) {
    return n.status();
  }
  std::vector<uint32_t> segs;
  segs.reserve(*n);
  uint32_t prev = 0;
  for (uint64_t i = 0; i < *n; ++i) {
    Result<uint64_t> d = in.ReadVarint();
    if (!d.ok()) {
      return d.status();
    }
    prev += static_cast<uint32_t>(*d);
    segs.push_back(prev);
  }
  return segs;
}

struct ParsedStore {
  std::vector<StaticPattern> templates;
  std::vector<SegmentInfo> segments;
  // index entries: text -> segments that may contain it
  std::vector<std::pair<std::string, std::vector<uint32_t>>> token_index;
  std::vector<std::pair<std::string, std::vector<uint32_t>>> dict_index;
  std::string_view payload;
};

Result<ParsedStore> OpenStore(std::string_view stored) {
  ByteReader in(stored);
  Result<uint32_t> magic = in.ReadU32();
  if (!magic.ok()) {
    return magic.status();
  }
  if (*magic != kMagic) {
    return CorruptData("clp-like: bad magic");
  }
  Result<std::string_view> meta_bytes = in.ReadLengthPrefixed();
  if (!meta_bytes.ok()) {
    return meta_bytes.status();
  }
  ParsedStore store;
  ByteReader mr(*meta_bytes);
  Result<uint64_t> nt = mr.ReadVarint();
  if (!nt.ok()) {
    return nt.status();
  }
  for (uint64_t i = 0; i < *nt; ++i) {
    Result<StaticPattern> t = StaticPattern::ReadFrom(mr);
    if (!t.ok()) {
      return t.status();
    }
    store.templates.push_back(std::move(*t));
  }
  Result<uint64_t> ns = mr.ReadVarint();
  if (!ns.ok()) {
    return ns.status();
  }
  for (uint64_t i = 0; i < *ns; ++i) {
    SegmentInfo seg;
    Result<uint64_t> v = mr.ReadVarint();
    if (!v.ok()) {
      return v.status();
    }
    seg.offset = *v;
    v = mr.ReadVarint();
    if (!v.ok()) {
      return v.status();
    }
    seg.length = *v;
    v = mr.ReadVarint();
    if (!v.ok()) {
      return v.status();
    }
    seg.first_line = static_cast<uint32_t>(*v);
    v = mr.ReadVarint();
    if (!v.ok()) {
      return v.status();
    }
    seg.line_count = static_cast<uint32_t>(*v);
    Result<CapsuleStamp> stamp = CapsuleStamp::ReadFrom(mr);
    if (!stamp.ok()) {
      return stamp.status();
    }
    seg.var_stamp = *stamp;
    store.segments.push_back(seg);
  }
  for (auto* index : {&store.token_index, &store.dict_index}) {
    Result<uint64_t> n = mr.ReadVarint();
    if (!n.ok()) {
      return n.status();
    }
    for (uint64_t i = 0; i < *n; ++i) {
      Result<std::string_view> text = mr.ReadLengthPrefixed();
      if (!text.ok()) {
        return text.status();
      }
      Result<std::vector<uint32_t>> segs = ReadSegList(mr);
      if (!segs.ok()) {
        return segs.status();
      }
      index->emplace_back(std::string(*text), std::move(*segs));
    }
  }
  Result<std::string_view> payload = in.ReadBytes(in.remaining());
  if (!payload.ok()) {
    return payload.status();
  }
  store.payload = *payload;
  return store;
}

// Segment candidates for one keyword: segments whose indexes hit it, plus
// segments whose variable summary admits it (the keyword may live inside an
// unindexed variable there).
std::set<uint32_t> SegsForKeyword(const ParsedStore& store,
                                  std::string_view keyword) {
  std::set<uint32_t> segs;
  for (const auto* index : {&store.token_index, &store.dict_index}) {
    for (const auto& [text, seg_list] : *index) {
      if (KeywordHitsToken(keyword, text)) {
        segs.insert(seg_list.begin(), seg_list.end());
      }
    }
  }
  for (uint32_t s = 0; s < store.segments.size(); ++s) {
    if (StampAdmitsKeyword(store.segments[s].var_stamp, keyword)) {
      segs.insert(s);
    }
  }
  return segs;
}

std::set<uint32_t> AllSegs(const ParsedStore& store) {
  std::set<uint32_t> all;
  for (uint32_t s = 0; s < store.segments.size(); ++s) {
    all.insert(s);
  }
  return all;
}

std::set<uint32_t> CandidatesForTerm(const ParsedStore& store,
                                     const SearchTerm& term) {
  std::set<uint32_t> out = AllSegs(store);
  for (const std::string& kw : term.keywords) {
    const std::set<uint32_t> segs = SegsForKeyword(store, kw);
    std::set<uint32_t> merged;
    for (uint32_t s : segs) {
      if (out.count(s) > 0) {
        merged.insert(s);
      }
    }
    out = std::move(merged);
  }
  return out;
}

std::set<uint32_t> CandidatesForExpr(const ParsedStore& store,
                                     const QueryExpr& expr) {
  switch (expr.kind) {
    case QueryExpr::Kind::kTerm:
      return CandidatesForTerm(store, expr.term);
    case QueryExpr::Kind::kAnd: {
      const std::set<uint32_t> l = CandidatesForExpr(store, *expr.left);
      const std::set<uint32_t> r = CandidatesForExpr(store, *expr.right);
      std::set<uint32_t> out;
      for (uint32_t s : l) {
        if (r.count(s) > 0) {
          out.insert(s);
        }
      }
      return out;
    }
    case QueryExpr::Kind::kOr: {
      std::set<uint32_t> out = CandidatesForExpr(store, *expr.left);
      const std::set<uint32_t> r = CandidatesForExpr(store, *expr.right);
      out.insert(r.begin(), r.end());
      return out;
    }
    case QueryExpr::Kind::kNot:
      // The negated side cannot narrow segments.
      return expr.left != nullptr ? CandidatesForExpr(store, *expr.left)
                                  : AllSegs(store);
  }
  return AllSegs(store);
}

}  // namespace

std::string ClpLikeBackend::Compress(std::string_view text) const {
  const std::vector<std::string_view> lines = SplitLines(text);
  const TemplateMiner miner;
  const std::vector<StaticPattern> templates = miner.Mine(lines);

  std::unordered_map<size_t, std::vector<uint32_t>> by_shape;
  for (uint32_t t = 0; t < templates.size(); ++t) {
    by_shape[templates[t].TokenCount()].push_back(t);
  }

  // First pass: match every line, collect per-slot distinct counts to decide
  // dictionary variables.
  struct EncodedLine {
    uint32_t template_id = UINT32_MAX;  // UINT32_MAX = outlier
    std::vector<std::string_view> vars;
  };
  std::vector<EncodedLine> encoded(lines.size());
  std::map<std::pair<uint32_t, uint32_t>, std::set<std::string_view>> slot_values;
  for (uint32_t ln = 0; ln < lines.size(); ++ln) {
    const TokenizedLine tokenized = TokenizeLine(lines[ln]);
    const auto it = by_shape.find(tokenized.tokens.size());
    if (it == by_shape.end()) {
      continue;
    }
    for (uint32_t t : it->second) {
      encoded[ln].vars.clear();
      if (templates[t].Match(tokenized, &encoded[ln].vars)) {
        encoded[ln].template_id = t;
        for (uint32_t slot = 0; slot < encoded[ln].vars.size(); ++slot) {
          auto& vals = slot_values[{t, slot}];
          if (vals.size() <= options_.dict_var_max_distinct) {
            vals.insert(encoded[ln].vars[slot]);
          }
        }
        break;
      }
    }
  }

  std::set<std::pair<uint32_t, uint32_t>> dict_slots;
  for (const auto& [slot, vals] : slot_values) {
    if (vals.size() <= options_.dict_var_max_distinct) {
      dict_slots.insert(slot);
    }
  }

  // Second pass: emit segments and build the inverted indexes.
  // CLP uses zstd, whose ratio class our gzip-like codec matches
  // (the byte-aligned zstd-like codec in this repo trades away the
  // entropy stage and plays LZ4's role instead).
  const Codec& codec = GetGzipCodec();
  std::string payload;
  std::vector<SegmentInfo> segments;
  std::map<std::string, std::set<uint32_t>> token_index;
  std::map<std::string, std::set<uint32_t>> dict_index;

  ByteWriter seg;
  size_t seg_raw = 0;
  uint32_t seg_first_line = 0;
  uint32_t seg_lines = 0;
  CapsuleStamp seg_stamp;
  auto flush_segment = [&]() {
    if (seg_lines == 0) {
      return;
    }
    const std::string compressed = codec.Compress(seg.data());
    SegmentInfo info;
    info.offset = payload.size();
    info.length = compressed.size();
    info.first_line = seg_first_line;
    info.line_count = seg_lines;
    info.var_stamp = seg_stamp;
    segments.push_back(info);
    payload += compressed;
    seg = ByteWriter();
    seg_raw = 0;
    seg_lines = 0;
    seg_stamp = CapsuleStamp{};
  };

  for (uint32_t ln = 0; ln < lines.size(); ++ln) {
    if (seg_lines == 0) {
      seg_first_line = ln;
    }
    const EncodedLine& e = encoded[ln];
    const uint32_t seg_id = static_cast<uint32_t>(segments.size());
    if (e.template_id == UINT32_MAX) {
      seg.PutVarint(0);
      seg.PutLengthPrefixed(lines[ln]);
      for (std::string_view token : TokenizeKeywords(lines[ln])) {
        seg_stamp.Absorb(token);
      }
    } else {
      seg.PutVarint(e.template_id + 1);
      for (uint32_t slot = 0; slot < e.vars.size(); ++slot) {
        seg.PutLengthPrefixed(e.vars[slot]);
        if (dict_slots.count({e.template_id, slot}) > 0) {
          dict_index[std::string(e.vars[slot])].insert(seg_id);
        } else {
          seg_stamp.Absorb(e.vars[slot]);
        }
      }
      for (const StaticPattern::Tok& tok : templates[e.template_id].tokens()) {
        if (!tok.is_var) {
          token_index[tok.text].insert(seg_id);
        }
      }
    }
    seg_raw += lines[ln].size() + 1;
    ++seg_lines;
    if (seg_raw >= options_.segment_raw_bytes) {
      flush_segment();
    }
  }
  flush_segment();

  ByteWriter meta;
  meta.PutVarint(templates.size());
  for (const StaticPattern& t : templates) {
    t.WriteTo(meta);
  }
  meta.PutVarint(segments.size());
  for (const SegmentInfo& s : segments) {
    meta.PutVarint(s.offset);
    meta.PutVarint(s.length);
    meta.PutVarint(s.first_line);
    meta.PutVarint(s.line_count);
    s.var_stamp.WriteTo(meta);
  }
  for (const auto* index : {&token_index, &dict_index}) {
    meta.PutVarint(index->size());
    for (const auto& [text, segs] : *index) {
      meta.PutLengthPrefixed(text);
      WriteSegList(meta, std::vector<uint32_t>(segs.begin(), segs.end()));
    }
  }

  ByteWriter out;
  out.PutU32(kMagic);
  out.PutLengthPrefixed(meta.data());
  out.PutBytes(payload);
  return std::move(out).Take();
}

Result<QueryHits> ClpLikeBackend::Query(std::string_view stored,
                                        std::string_view command) const {
  Result<std::unique_ptr<QueryExpr>> expr = ParseQuery(command);
  if (!expr.ok()) {
    return expr.status();
  }
  Result<ParsedStore> store = OpenStore(stored);
  if (!store.ok()) {
    return store.status();
  }
  const std::set<uint32_t> candidates = CandidatesForExpr(*store, **expr);

  QueryHits hits;
  LineMatcher matcher;
  std::vector<std::string_view> vars;
  for (uint32_t s : candidates) {
    const SegmentInfo& info = store->segments[s];
    Result<std::string> seg_bytes =
        GetGzipCodec().Decompress(store->payload.substr(info.offset, info.length));
    if (!seg_bytes.ok()) {
      return seg_bytes.status();
    }
    ByteReader in(*seg_bytes);
    for (uint32_t i = 0; i < info.line_count; ++i) {
      Result<uint64_t> id = in.ReadVarint();
      if (!id.ok()) {
        return id.status();
      }
      std::string line;
      if (*id == 0) {
        Result<std::string_view> raw = in.ReadLengthPrefixed();
        if (!raw.ok()) {
          return raw.status();
        }
        line = std::string(*raw);
      } else {
        const uint32_t t = static_cast<uint32_t>(*id - 1);
        if (t >= store->templates.size()) {
          return CorruptData("clp-like: bad template id in segment");
        }
        const StaticPattern& tmpl = store->templates[t];
        vars.clear();
        for (int v = 0; v < tmpl.VarCount(); ++v) {
          Result<std::string_view> value = in.ReadLengthPrefixed();
          if (!value.ok()) {
            return value.status();
          }
          vars.push_back(*value);
        }
        line = tmpl.Render(vars);
      }
      if (matcher.MatchesQuery(line, **expr)) {
        hits.emplace_back(info.first_line + i, std::move(line));
      }
    }
  }
  return hits;
}

}  // namespace loggrep
