// Common interface for the comparison systems of §6: gzip+grep, CLP-like,
// ES-like, plus LogGrep itself via an adapter in the benches. Compress turns
// a raw log block into a self-contained stored representation; Query runs a
// command with the same semantics as LogGrep (src/query/line_match.h).
#ifndef SRC_BASELINES_BACKEND_H_
#define SRC_BASELINES_BACKEND_H_

#include <string>
#include <string_view>

#include "src/common/result.h"
#include "src/query/query_cache.h"  // for QueryHits

namespace loggrep {

class LogStoreBackend {
 public:
  virtual ~LogStoreBackend() = default;

  virtual const char* name() const = 0;
  virtual std::string Compress(std::string_view text) const = 0;
  virtual Result<QueryHits> Query(std::string_view stored,
                                  std::string_view command) const = 0;
};

}  // namespace loggrep

#endif  // SRC_BASELINES_BACKEND_H_
