#include "src/baselines/gzip_grep.h"

#include "src/codec/codec.h"
#include "src/parser/template_miner.h"  // SplitLines
#include "src/query/line_match.h"
#include "src/query/query_parser.h"

namespace loggrep {

std::string GzipGrepBackend::Compress(std::string_view text) const {
  return GetGzipCodec().Compress(text);
}

Result<QueryHits> GzipGrepBackend::Query(std::string_view stored,
                                         std::string_view command) const {
  Result<std::unique_ptr<QueryExpr>> expr = ParseQuery(command);
  if (!expr.ok()) {
    return expr.status();
  }
  Result<std::string> text = GetGzipCodec().Decompress(stored);
  if (!text.ok()) {
    return text.status();
  }
  QueryHits hits;
  LineMatcher matcher;
  const std::vector<std::string_view> lines = SplitLines(*text);
  for (uint32_t ln = 0; ln < lines.size(); ++ln) {
    if (matcher.MatchesQuery(lines[ln], **expr)) {
      hits.emplace_back(ln, std::string(lines[ln]));
    }
  }
  return hits;
}

}  // namespace loggrep
