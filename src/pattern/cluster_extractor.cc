#include "src/pattern/cluster_extractor.h"

#include <algorithm>
#include <map>
#include <string_view>
#include <unordered_map>

#include "src/common/string_util.h"
#include "src/pattern/merge_extractor.h"

namespace loggrep {
namespace {

// Normalized similarity: |LCS| relative to the longer value.
double Similarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) {
    return 1.0;
  }
  const size_t lcs = LongestCommonSubstring(a, b).size();
  return static_cast<double>(lcs) /
         static_cast<double>(std::max(a.size(), b.size()));
}

// Derives one pattern for a cluster: the dominant sketch form's collapsed
// pattern (via MergeExtractor on the members), or the trivial pattern when
// no form dominates.
RuntimePattern ClusterPattern(const std::vector<std::string>& members) {
  const MergeExtractor merge;
  const NominalExtraction ex = merge.Extract(members);
  if (ex.patterns.empty()) {
    return RuntimePattern::SingleSubVar();
  }
  std::vector<size_t> per_pattern(ex.patterns.size(), 0);
  for (uint32_t idx : ex.index) {
    ++per_pattern[ex.pattern_of_dict[idx]];
  }
  const size_t best = static_cast<size_t>(
      std::max_element(per_pattern.begin(), per_pattern.end()) -
      per_pattern.begin());
  if (per_pattern[best] * 2 < members.size()) {
    return RuntimePattern::SingleSubVar();
  }
  return ex.patterns[best];
}

}  // namespace

ClusterExtraction ClusterExtractor::Extract(
    const std::vector<std::string>& values) const {
  ClusterExtraction out;
  out.assignment.assign(values.size(), 0);
  if (values.empty()) {
    return out;
  }

  // Dedup (clustering cost depends on unique values), capped.
  std::vector<std::string_view> uniques;
  std::unordered_map<std::string_view, uint32_t> unique_id;
  std::vector<uint32_t> value_to_unique(values.size(), UINT32_MAX);
  for (size_t i = 0; i < values.size(); ++i) {
    const auto it = unique_id.find(values[i]);
    if (it != unique_id.end()) {
      value_to_unique[i] = it->second;
      continue;
    }
    if (uniques.size() >= options_.max_values) {
      continue;  // overflow values keep UINT32_MAX -> trivial pattern
    }
    const uint32_t id = static_cast<uint32_t>(uniques.size());
    unique_id.emplace(values[i], id);
    uniques.push_back(values[i]);
    value_to_unique[i] = id;
  }
  const size_t n = uniques.size();

  // Average-linkage agglomerative clustering with a full similarity matrix.
  std::vector<std::vector<double>> sim(n, std::vector<double>(n, 0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      sim[i][j] = sim[j][i] = Similarity(uniques[i], uniques[j]);
    }
  }
  std::vector<int> cluster_of(n);
  std::vector<std::vector<uint32_t>> clusters(n);
  for (size_t i = 0; i < n; ++i) {
    cluster_of[i] = static_cast<int>(i);
    clusters[i] = {static_cast<uint32_t>(i)};
  }
  std::vector<bool> alive(n, true);

  auto linkage = [&](size_t a, size_t b) {
    double total = 0;
    for (uint32_t x : clusters[a]) {
      for (uint32_t y : clusters[b]) {
        total += sim[x][y];
      }
    }
    return total / static_cast<double>(clusters[a].size() * clusters[b].size());
  };

  while (true) {
    double best_sim = -1;
    size_t best_a = 0;
    size_t best_b = 0;
    for (size_t a = 0; a < n; ++a) {
      if (!alive[a]) {
        continue;
      }
      for (size_t b = a + 1; b < n; ++b) {
        if (!alive[b]) {
          continue;
        }
        const double s = linkage(a, b);
        if (s > best_sim) {
          best_sim = s;
          best_a = a;
          best_b = b;
        }
      }
    }
    if (best_sim < options_.merge_threshold) {
      break;
    }
    clusters[best_a].insert(clusters[best_a].end(), clusters[best_b].begin(),
                            clusters[best_b].end());
    clusters[best_b].clear();
    alive[best_b] = false;
    if (std::count(alive.begin(), alive.end(), true) <= 1) {
      break;
    }
  }

  // One pattern per surviving cluster.
  std::vector<uint32_t> unique_to_pattern(n, 0);
  for (size_t c = 0; c < n; ++c) {
    if (!alive[c] || clusters[c].empty()) {
      continue;
    }
    std::vector<std::string> members;
    members.reserve(clusters[c].size());
    for (uint32_t u : clusters[c]) {
      members.emplace_back(uniques[u]);
    }
    const uint32_t pattern_idx = static_cast<uint32_t>(out.patterns.size());
    out.patterns.push_back(ClusterPattern(members));
    for (uint32_t u : clusters[c]) {
      unique_to_pattern[u] = pattern_idx;
    }
  }
  if (out.patterns.empty()) {
    out.patterns.push_back(RuntimePattern::SingleSubVar());
  }
  // Values beyond the cap get the trivial pattern (appended if needed).
  uint32_t trivial_idx = UINT32_MAX;
  for (size_t i = 0; i < values.size(); ++i) {
    if (value_to_unique[i] != UINT32_MAX) {
      out.assignment[i] = unique_to_pattern[value_to_unique[i]];
      continue;
    }
    if (trivial_idx == UINT32_MAX) {
      trivial_idx = static_cast<uint32_t>(out.patterns.size());
      out.patterns.push_back(RuntimePattern::SingleSubVar());
    }
    out.assignment[i] = trivial_idx;
  }
  return out;
}

}  // namespace loggrep
