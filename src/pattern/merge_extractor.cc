#include "src/pattern/merge_extractor.h"

#include <algorithm>
#include <map>
#include <string_view>
#include <unordered_map>

#include "src/common/string_util.h"

namespace loggrep {
namespace {

// A sketch splits a value into alternating constant (non-alphanumeric) and
// candidate-sub-variable (alphanumeric run) pieces.
struct SketchPiece {
  bool is_run = false;  // alphanumeric run (candidate sub-variable)
  std::string_view text;
};

std::vector<SketchPiece> SketchOf(std::string_view value) {
  std::vector<SketchPiece> pieces;
  size_t i = 0;
  while (i < value.size()) {
    const bool run = IsAsciiAlnum(value[i]);
    const size_t start = i;
    while (i < value.size() && IsAsciiAlnum(value[i]) == run) {
      ++i;
    }
    pieces.push_back(SketchPiece{run, value.substr(start, i - start)});
  }
  return pieces;
}

// Form key: the delimiter skeleton, e.g. "ERR#404" -> "*#*". Two values merge
// only when their skeletons are identical.
std::string FormKeyOf(const std::vector<SketchPiece>& pieces) {
  std::string key;
  for (const SketchPiece& p : pieces) {
    if (p.is_run) {
      key += '\x01';  // placeholder that cannot occur in log text
    } else {
      key.append(p.text.data(), p.text.size());
    }
  }
  return key;
}

}  // namespace

NominalExtraction MergeExtractor::Extract(
    const std::vector<std::string>& values) const {
  NominalExtraction out;
  out.index.reserve(values.size());

  // Dedup, keeping first-seen order of unique values.
  std::vector<std::string_view> uniques;
  std::unordered_map<std::string_view, uint32_t> unique_id;
  std::vector<uint32_t> row_to_unique;
  row_to_unique.reserve(values.size());
  for (const std::string& v : values) {
    const auto [it, inserted] =
        unique_id.try_emplace(v, static_cast<uint32_t>(uniques.size()));
    if (inserted) {
      uniques.push_back(v);
    }
    row_to_unique.push_back(it->second);
  }

  // Group unique values by sketch form. std::map keeps deterministic order
  // and provides the O(n log n) sort the paper describes.
  std::map<std::string, std::vector<uint32_t>> forms;
  std::vector<std::vector<SketchPiece>> sketches(uniques.size());
  for (uint32_t u = 0; u < uniques.size(); ++u) {
    sketches[u] = SketchOf(uniques[u]);
    forms[FormKeyOf(sketches[u])].push_back(u);
  }

  // Build one pattern per form; constant-collapse sub-variable slots whose
  // text is identical across the form's values.
  std::vector<uint32_t> unique_to_dict(uniques.size(), 0);
  for (const auto& [key, members] : forms) {
    (void)key;
    const std::vector<SketchPiece>& first = sketches[members[0]];
    const size_t num_pieces = first.size();
    std::vector<bool> slot_constant(num_pieces, true);
    for (size_t piece = 0; piece < num_pieces; ++piece) {
      if (!first[piece].is_run) {
        continue;
      }
      for (uint32_t u : members) {
        if (sketches[u][piece].text != first[piece].text) {
          slot_constant[piece] = false;
          break;
        }
      }
    }
    std::vector<PatternElement> elems;
    uint32_t next_subvar = 0;
    for (size_t piece = 0; piece < num_pieces; ++piece) {
      if (!first[piece].is_run || slot_constant[piece]) {
        if (!elems.empty() && !elems.back().is_subvar) {
          elems.back().constant += first[piece].text;
        } else {
          PatternElement e;
          e.constant = std::string(first[piece].text);
          elems.push_back(std::move(e));
        }
      } else {
        PatternElement e;
        e.is_subvar = true;
        e.subvar = next_subvar++;
        elems.push_back(e);
      }
    }
    const uint32_t pattern_idx = static_cast<uint32_t>(out.patterns.size());
    out.patterns.push_back(RuntimePattern(std::move(elems)));
    for (uint32_t u : members) {
      unique_to_dict[u] = static_cast<uint32_t>(out.dictionary.size());
      out.dictionary.emplace_back(uniques[u]);
      out.pattern_of_dict.push_back(pattern_idx);
    }
  }

  for (uint32_t u : row_to_unique) {
    out.index.push_back(unique_to_dict[u]);
  }
  return out;
}

}  // namespace loggrep
