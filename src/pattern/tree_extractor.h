// Tree-expanding runtime pattern extraction for *real* variable vectors
// (§4.1): vectors whose duplication rate is below 0.5 and which are assumed
// to be dominated by a single pattern.
//
// The extractor builds a pattern tree over a sample of unique values: each
// iteration tries to split every open leaf with a delimiter taken from a
// randomly picked value (a non-alphanumeric character, or the longest common
// substring of two random values). A delimiter splits a leaf if at least 95%
// of its values contain it; after three failed attempts the leaf is marked
// unsplittable and becomes a sub-variable. Leaves whose values are all equal
// become constants. O(n) in the number of sampled values.
#ifndef SRC_PATTERN_TREE_EXTRACTOR_H_
#define SRC_PATTERN_TREE_EXTRACTOR_H_

#include <string>
#include <vector>

#include "src/pattern/runtime_pattern.h"

namespace loggrep {

// (total - unique) / total; 0 for an empty vector.
double DuplicationRate(const std::vector<std::string>& values);

enum class VectorClass {
  kReal,     // duplication rate < threshold: tree expanding
  kNominal,  // duplication rate >= threshold: pattern merging
};

VectorClass ClassifyVector(const std::vector<std::string>& values,
                           double threshold = 0.5);

struct TreeExtractorOptions {
  double sample_rate = 0.05;
  size_t min_sample = 64;       // sample everything below this many values
  double split_threshold = 0.95;
  int attempts_per_leaf = 3;
  size_t max_elements = 48;     // guard against pathological explosion
  uint64_t seed = 0x7EE5;
};

class TreeExtractor {
 public:
  explicit TreeExtractor(TreeExtractorOptions options = {}) : options_(options) {}

  // Extracts the dominating runtime pattern of `values`. Returns the trivial
  // single-sub-variable pattern when no structure is found.
  RuntimePattern Extract(const std::vector<std::string>& values) const;

 private:
  TreeExtractorOptions options_;
};

}  // namespace loggrep

#endif  // SRC_PATTERN_TREE_EXTRACTOR_H_
