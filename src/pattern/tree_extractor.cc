#include "src/pattern/tree_extractor.h"

#include <algorithm>
#include <string_view>
#include <unordered_set>

#include "src/common/rng.h"
#include "src/common/string_util.h"

namespace loggrep {

double DuplicationRate(const std::vector<std::string>& values) {
  if (values.empty()) {
    return 0.0;
  }
  std::unordered_set<std::string_view> unique(values.begin(), values.end());
  return static_cast<double>(values.size() - unique.size()) /
         static_cast<double>(values.size());
}

VectorClass ClassifyVector(const std::vector<std::string>& values,
                           double threshold) {
  return DuplicationRate(values) < threshold ? VectorClass::kReal
                                             : VectorClass::kNominal;
}

namespace {

struct Leaf {
  enum class State { kOpen, kConstant, kSubVar };
  State state = State::kOpen;
  std::vector<std::string> col;
  std::string constant;
};

bool AllEqual(const std::vector<std::string>& col) {
  for (size_t i = 1; i < col.size(); ++i) {
    if (col[i] != col[0]) {
      return false;
    }
  }
  return true;
}

// Fraction of values containing `delim`.
double Coverage(const std::vector<std::string>& col, std::string_view delim) {
  size_t hit = 0;
  for (const std::string& v : col) {
    if (v.find(delim) != std::string::npos) {
      ++hit;
    }
  }
  return static_cast<double>(hit) / static_cast<double>(col.size());
}

// Splits `col` at the first occurrence of `delim`; values lacking the
// delimiter (at most 5%) are dropped here — they will land in the outlier
// Capsule when the final pattern is applied to the full vector.
void SplitAt(const std::vector<std::string>& col, std::string_view delim,
             std::vector<std::string>* left, std::vector<std::string>* right) {
  for (const std::string& v : col) {
    const size_t pos = v.find(delim);
    if (pos == std::string::npos) {
      continue;
    }
    left->push_back(v.substr(0, pos));
    right->push_back(v.substr(pos + delim.size()));
  }
}

}  // namespace

RuntimePattern TreeExtractor::Extract(const std::vector<std::string>& values) const {
  if (values.empty()) {
    return RuntimePattern::SingleSubVar();
  }
  Rng rng(options_.seed);

  // Sample, then dedup: the root node holds unique sampled values.
  std::unordered_set<std::string_view> seen;
  std::vector<std::string> root;
  const bool sample_all = values.size() <= options_.min_sample;
  for (const std::string& v : values) {
    if (!sample_all && !rng.NextBool(options_.sample_rate)) {
      continue;
    }
    if (seen.insert(v).second) {
      root.push_back(v);
    }
  }
  if (root.empty()) {
    root.push_back(values[0]);
  }

  std::vector<Leaf> leaves(1);
  leaves[0].col = std::move(root);

  bool progressed = true;
  while (progressed && leaves.size() < options_.max_elements) {
    progressed = false;
    std::vector<Leaf> next;
    next.reserve(leaves.size() + 2);
    for (Leaf& leaf : leaves) {
      if (leaf.state != Leaf::State::kOpen) {
        next.push_back(std::move(leaf));
        continue;
      }
      if (AllEqual(leaf.col)) {
        leaf.state = Leaf::State::kConstant;
        leaf.constant = leaf.col[0];
        next.push_back(std::move(leaf));
        continue;
      }
      // Try to find a splitting delimiter.
      std::string delim;
      for (int attempt = 0; attempt < options_.attempts_per_leaf && delim.empty();
           ++attempt) {
        const std::string& probe =
            leaf.col[rng.NextBelow(leaf.col.size())];
        // Candidate 1: a non-alphanumeric character of a random value.
        for (char c : DistinctNonAlnumChars(probe)) {
          const std::string_view cand(&c, 1);
          if (Coverage(leaf.col, cand) >= options_.split_threshold) {
            delim = std::string(cand);
            break;
          }
        }
        if (!delim.empty()) {
          break;
        }
        // Candidate 2: the LCS of two random values (length >= 2).
        const std::string& other =
            leaf.col[rng.NextBelow(leaf.col.size())];
        if (&other != &probe) {
          const std::string_view lcs = LongestCommonSubstring(probe, other);
          if (lcs.size() >= 2 &&
              Coverage(leaf.col, lcs) >= options_.split_threshold) {
            delim = std::string(lcs);
          }
        }
      }
      if (delim.empty()) {
        leaf.state = Leaf::State::kSubVar;
        next.push_back(std::move(leaf));
        continue;
      }
      Leaf left;
      Leaf right;
      SplitAt(leaf.col, delim, &left.col, &right.col);
      Leaf mid;
      mid.state = Leaf::State::kConstant;
      mid.constant = delim;
      next.push_back(std::move(left));
      next.push_back(std::move(mid));
      next.push_back(std::move(right));
      progressed = true;
    }
    leaves = std::move(next);
  }

  // Assemble the pattern: merge adjacent constants, drop empty ones, number
  // sub-variables left to right. Leaves still open (iteration guard) become
  // sub-variables.
  std::vector<PatternElement> elems;
  uint32_t next_subvar = 0;
  for (Leaf& leaf : leaves) {
    if (leaf.state == Leaf::State::kConstant) {
      if (leaf.constant.empty()) {
        continue;
      }
      if (!elems.empty() && !elems.back().is_subvar) {
        elems.back().constant += leaf.constant;
      } else {
        PatternElement e;
        e.constant = std::move(leaf.constant);
        elems.push_back(std::move(e));
      }
      continue;
    }
    // Sub-variable (or still-open) leaf. An all-empty column contributes
    // nothing: drop it rather than emit a vacuous sub-variable.
    bool all_empty = true;
    for (const std::string& v : leaf.col) {
      if (!v.empty()) {
        all_empty = false;
        break;
      }
    }
    if (all_empty) {
      continue;
    }
    PatternElement e;
    e.is_subvar = true;
    e.subvar = next_subvar++;
    elems.push_back(e);
  }
  if (elems.empty()) {
    return RuntimePattern::SingleSubVar();
  }
  return RuntimePattern(std::move(elems));
}

}  // namespace loggrep
