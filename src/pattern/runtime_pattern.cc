#include "src/pattern/runtime_pattern.h"

#include <algorithm>
#include <cassert>

namespace loggrep {

RuntimePattern RuntimePattern::SingleSubVar() {
  std::vector<PatternElement> elems(1);
  elems[0].is_subvar = true;
  elems[0].subvar = 0;
  return RuntimePattern(std::move(elems));
}

uint32_t RuntimePattern::SubVarCount() const {
  uint32_t n = 0;
  for (const PatternElement& e : elements_) {
    n += e.is_subvar ? 1 : 0;
  }
  return n;
}

bool RuntimePattern::WellFormed() const {
  const uint32_t n = SubVarCount();
  std::vector<bool> seen(n, false);
  bool prev_subvar = false;
  for (const PatternElement& e : elements_) {
    if (!e.is_subvar) {
      prev_subvar = false;
      continue;
    }
    if (prev_subvar || e.subvar >= n || seen[e.subvar]) {
      return false;
    }
    seen[e.subvar] = true;
    prev_subvar = true;
  }
  return true;
}

std::optional<std::vector<std::string_view>> RuntimePattern::MatchValue(
    std::string_view value) const {
  std::vector<std::string_view> out(SubVarCount());
  size_t pos = 0;
  for (size_t i = 0; i < elements_.size(); ++i) {
    const PatternElement& e = elements_[i];
    if (!e.is_subvar) {
      if (value.compare(pos, e.constant.size(), e.constant) != 0) {
        return std::nullopt;
      }
      pos += e.constant.size();
      continue;
    }
    // Sub-variable: absorbs up to the next constant (leftmost occurrence), or
    // the rest of the value if it is the final element. Extractor invariant:
    // the next element, if any, is a constant.
    if (e.subvar >= out.size()) {
      // Only reachable through a malformed (hostile) pattern; treat as a
      // mismatch instead of writing out of bounds.
      return std::nullopt;
    }
    if (i + 1 == elements_.size()) {
      out[e.subvar] = value.substr(pos);
      pos = value.size();
      continue;
    }
    const PatternElement& next = elements_[i + 1];
    assert(!next.is_subvar && "adjacent sub-variables are not producible");
    const size_t found = value.find(next.constant, pos);
    if (found == std::string_view::npos) {
      return std::nullopt;
    }
    out[e.subvar] = value.substr(pos, found - pos);
    pos = found;
  }
  if (pos != value.size()) {
    return std::nullopt;
  }
  return out;
}

std::string RuntimePattern::Render(
    const std::vector<std::string_view>& subvalues) const {
  std::string out;
  RenderTo(subvalues, &out);
  return out;
}

void RuntimePattern::RenderTo(const std::vector<std::string_view>& subvalues,
                              std::string* out) const {
  for (const PatternElement& e : elements_) {
    if (e.is_subvar) {
      assert(e.subvar < subvalues.size());
      if (e.subvar < subvalues.size()) {  // defensive: never index OOB
        *out += subvalues[e.subvar];
      }
    } else {
      *out += e.constant;
    }
  }
}

std::string RuntimePattern::ToString() const {
  std::string out;
  for (const PatternElement& e : elements_) {
    if (e.is_subvar) {
      out += "<*>";
    } else {
      out += e.constant;
    }
  }
  return out;
}

void RuntimePattern::WriteTo(ByteWriter& out) const {
  out.PutVarint(elements_.size());
  for (const PatternElement& e : elements_) {
    out.PutU8(e.is_subvar ? 1 : 0);
    if (e.is_subvar) {
      out.PutVarint(e.subvar);
    } else {
      out.PutLengthPrefixed(e.constant);
    }
  }
}

Result<RuntimePattern> RuntimePattern::ReadFrom(ByteReader& in) {
  Result<uint64_t> n = in.ReadVarint();
  if (!n.ok()) {
    return n.status();
  }
  std::vector<PatternElement> elems;
  // Reserve from the declared count only up to a sane bound: a hostile
  // stream can declare 2^60 elements in five bytes, but each real element
  // costs at least one stream byte, so growth past the cap is input-bounded.
  elems.reserve(static_cast<size_t>(std::min<uint64_t>(*n, 4096)));
  for (uint64_t i = 0; i < *n; ++i) {
    Result<uint8_t> is_subvar = in.ReadU8();
    if (!is_subvar.ok()) {
      return is_subvar.status();
    }
    PatternElement e;
    e.is_subvar = (*is_subvar != 0);
    if (e.is_subvar) {
      Result<uint64_t> sv = in.ReadVarint();
      if (!sv.ok()) {
        return sv.status();
      }
      e.subvar = static_cast<uint32_t>(*sv);
    } else {
      Result<std::string_view> text = in.ReadLengthPrefixed();
      if (!text.ok()) {
        return text.status();
      }
      e.constant = std::string(*text);
    }
    elems.push_back(std::move(e));
  }
  return RuntimePattern(std::move(elems));
}

bool RuntimePattern::operator==(const RuntimePattern& other) const {
  if (elements_.size() != other.elements_.size()) {
    return false;
  }
  for (size_t i = 0; i < elements_.size(); ++i) {
    const PatternElement& a = elements_[i];
    const PatternElement& b = other.elements_[i];
    if (a.is_subvar != b.is_subvar || a.constant != b.constant ||
        (a.is_subvar && a.subvar != b.subvar)) {
      return false;
    }
  }
  return true;
}

}  // namespace loggrep
