// Pattern-merging runtime pattern extraction for *nominal* variable vectors
// (§4.1): vectors with duplication rate >= 0.5, whose few unique values may
// follow multiple patterns.
//
// Each unique value is split into a "pattern sketch" (alphanumeric runs
// become sub-variables, everything else stays constant); sketches of the same
// form merge, and a sub-variable that holds the same text in all values of a
// sketch collapses back into a constant. The unique values are reordered so
// that values of the same pattern are stored sequentially (the dictionary
// vector), and the original vector is re-expressed as indices into the
// dictionary (the index vector). O(n log n) in the number of unique values.
#ifndef SRC_PATTERN_MERGE_EXTRACTOR_H_
#define SRC_PATTERN_MERGE_EXTRACTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/pattern/runtime_pattern.h"

namespace loggrep {

struct NominalExtraction {
  // One runtime pattern per dictionary section, in dictionary order.
  std::vector<RuntimePattern> patterns;
  // Unique values grouped by pattern; values of patterns[p] occupy a
  // contiguous range of `dictionary`.
  std::vector<std::string> dictionary;
  // dictionary index -> pattern index (non-decreasing).
  std::vector<uint32_t> pattern_of_dict;
  // row -> dictionary index (same length as the original vector).
  std::vector<uint32_t> index;
};

class MergeExtractor {
 public:
  NominalExtraction Extract(const std::vector<std::string>& values) const;
};

}  // namespace loggrep

#endif  // SRC_PATTERN_MERGE_EXTRACTOR_H_
