// General-purpose pattern extraction via hierarchical agglomerative
// clustering — the class of methods the paper rejects as "too slow given the
// scale of production logs" (§4.1, refs [50] [53]).
//
// Values are clustered bottom-up under average-linkage similarity (normalized
// longest-common-substring length); each final cluster yields one runtime
// pattern by sketch merging. The implementation is deliberately the textbook
// O(n^2) algorithm (with O(L^2) pairwise similarity) so the extractor
// comparison bench can reproduce the paper's motivation: tree expanding and
// pattern merging achieve comparable patterns orders of magnitude faster.
#ifndef SRC_PATTERN_CLUSTER_EXTRACTOR_H_
#define SRC_PATTERN_CLUSTER_EXTRACTOR_H_

#include <string>
#include <vector>

#include "src/pattern/runtime_pattern.h"

namespace loggrep {

struct ClusterExtractorOptions {
  double merge_threshold = 0.5;  // stop merging below this similarity
  size_t max_values = 512;       // hard cap: the method is quadratic
};

struct ClusterExtraction {
  std::vector<RuntimePattern> patterns;  // one per final cluster
  std::vector<uint32_t> assignment;      // value index -> pattern index
};

class ClusterExtractor {
 public:
  explicit ClusterExtractor(ClusterExtractorOptions options = {})
      : options_(options) {}

  ClusterExtraction Extract(const std::vector<std::string>& values) const;

 private:
  ClusterExtractorOptions options_;
};

}  // namespace loggrep

#endif  // SRC_PATTERN_CLUSTER_EXTRACTOR_H_
