#include "src/store/fs_util.h"

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <filesystem>
#include <mutex>
#include <unordered_set>

namespace loggrep {
namespace {

// Process-local registry of in-flight temp paths (see ScopedTempFile).
std::mutex& LiveTempMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

std::unordered_set<std::string>& LiveTempSet() {
  static std::unordered_set<std::string>* set =
      new std::unordered_set<std::string>();
  return *set;
}

void RegisterLiveTemp(const std::string& path) {
  std::lock_guard<std::mutex> lock(LiveTempMutex());
  LiveTempSet().insert(path);
}

void UnregisterLiveTemp(const std::string& path) {
  std::lock_guard<std::mutex> lock(LiveTempMutex());
  LiveTempSet().erase(path);
}

// Parses the owner pid out of a tagged temp name
// ("<base>.<pid>-<nonce>.tmp"); returns -1 for legacy bare "*.tmp" names.
long ParseTempOwnerPid(const std::string& name) {
  constexpr std::string_view kSuffix = ".tmp";
  if (name.size() <= kSuffix.size() ||
      name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
          0) {
    return -1;
  }
  const std::string stem = name.substr(0, name.size() - kSuffix.size());
  // Expect "<base>.<pid>-<nonce>" — find the final '.', then "<pid>-<nonce>".
  const size_t dot = stem.rfind('.');
  if (dot == std::string::npos || dot + 1 >= stem.size()) {
    return -1;
  }
  const std::string tag = stem.substr(dot + 1);
  const size_t dash = tag.find('-');
  if (dash == std::string::npos || dash == 0 || dash + 1 >= tag.size()) {
    return -1;
  }
  const std::string pid_digits = tag.substr(0, dash);
  const std::string nonce_digits = tag.substr(dash + 1);
  const auto all_digits = [](const std::string& s) {
    return !s.empty() && s.size() <= 18 &&
           s.find_first_not_of("0123456789") == std::string::npos;
  };
  if (!all_digits(pid_digits) || !all_digits(nonce_digits)) {
    return -1;
  }
  return static_cast<long>(std::stoll(pid_digits));
}

bool ProcessAlive(long pid) {
  if (pid <= 0) {
    return false;
  }
  if (::kill(static_cast<pid_t>(pid), 0) == 0) {
    return true;
  }
  return errno == EPERM;  // exists but owned by someone else
}

std::string ParentDir(const std::string& path) {
  const std::string parent =
      std::filesystem::path(path).parent_path().string();
  return parent.empty() ? "." : parent;
}

}  // namespace

Result<std::string> ReadFileBytes(const std::string& path, StorageEnv* env) {
  return EnvOrDefault(env)->ReadFile(path);
}

Status WriteFileBytes(const std::string& path, std::string_view data,
                      StorageEnv* env) {
  return EnvOrDefault(env)->WriteFile(path, data);
}

std::string MakeTempPath(const std::string& path) {
  static std::atomic<uint64_t> nonce{0};
  return path + "." + std::to_string(::getpid()) + "-" +
         std::to_string(nonce.fetch_add(1, std::memory_order_relaxed)) +
         ".tmp";
}

ScopedTempFile::ScopedTempFile(const std::string& final_path)
    : temp_path_(MakeTempPath(final_path)) {
  RegisterLiveTemp(temp_path_);
}

ScopedTempFile::~ScopedTempFile() { UnregisterLiveTemp(temp_path_); }

bool TempFileIsLive(const std::string& temp_path) {
  std::lock_guard<std::mutex> lock(LiveTempMutex());
  return LiveTempSet().count(temp_path) > 0;
}

Status WriteFileAtomic(const std::string& path, std::string_view data,
                       StorageEnv* env) {
  StorageEnv* e = EnvOrDefault(env);
  const ScopedTempFile tmp(path);
  if (Status s = e->WriteFile(tmp.path(), data); !s.ok()) {
    // A failed (possibly torn) write must not leave a half-file behind.
    (void)e->RemoveFile(tmp.path());
    return s;
  }
  // Durability point 1: the temp's *data* is on stable storage before the
  // rename makes it reachable — a reader can never see post-rename garbage.
  if (Status s = e->SyncFile(tmp.path()); !s.ok()) {
    (void)e->RemoveFile(tmp.path());
    return s;
  }
  if (Status s = e->Rename(tmp.path(), path); !s.ok()) {
    (void)e->RemoveFile(tmp.path());  // best effort cleanup
    return s;
  }
  // Durability point 2: the directory entry for the new name. Without this
  // a power cut after "commit" can resurrect the old file.
  LOGGREP_RETURN_IF_ERROR(e->SyncDir(ParentDir(path)));
  return OkStatus();
}

std::vector<std::string> SweepTempFiles(const std::string& dir,
                                        StorageEnv* env) {
  StorageEnv* e = EnvOrDefault(env);
  std::vector<std::string> removed;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) {
      continue;
    }
    const std::string name = entry.path().filename().string();
    if (name.size() <= 4 ||
        name.compare(name.size() - 4, 4, ".tmp") != 0) {
      continue;
    }
    const std::string full = entry.path().string();
    if (TempFileIsLive(full)) {
      continue;  // in-flight write by this process (e.g. streaming ingest)
    }
    const long owner = ParseTempOwnerPid(name);
    if (owner > 0 && owner != static_cast<long>(::getpid()) &&
        ProcessAlive(owner)) {
      continue;  // in-flight write by a live concurrent process
    }
    // Legacy bare temps, dead-owner temps, and this process's abandoned
    // (unregistered) temps are crash droppings.
    if (e->RemoveFile(full).ok()) {
      removed.push_back(full);
    }
  }
  return removed;
}

bool RemoveTreeBestEffort(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove_all(path, ec);
  if (ec) {
    // remove_all can report an error yet still have finished the job (e.g. a
    // racing remover); "gone" is the contract, so check that directly.
    std::error_code exists_ec;
    return !std::filesystem::exists(path, exists_ec) && !exists_ec;
  }
  return true;
}

}  // namespace loggrep
