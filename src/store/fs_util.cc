#include "src/store/fs_util.h"

#include <filesystem>
#include <fstream>
#include <sstream>

namespace loggrep {

Result<std::string> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return NotFound("fs: cannot open " + path);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

Status WriteFileBytes(const std::string& path, std::string_view data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Internal("fs: cannot write " + path);
  }
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  out.flush();
  if (!out.good()) {
    return Internal("fs: short write to " + path);
  }
  return OkStatus();
}

Status WriteFileAtomic(const std::string& path, std::string_view data) {
  const std::string tmp = path + ".tmp";
  LOGGREP_RETURN_IF_ERROR(WriteFileBytes(tmp, data));
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);  // best effort cleanup
    return Internal("fs: cannot rename " + tmp + " -> " + path);
  }
  return OkStatus();
}

std::vector<std::string> SweepTempFiles(const std::string& dir) {
  std::vector<std::string> removed;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) {
      continue;
    }
    const std::string name = entry.path().filename().string();
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      std::error_code rm_ec;
      if (std::filesystem::remove(entry.path(), rm_ec)) {
        removed.push_back(entry.path().string());
      }
    }
  }
  return removed;
}

}  // namespace loggrep
