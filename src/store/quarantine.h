// Block quarantine: the bookkeeping that lets queries degrade instead of
// die.
//
// When a block's read or decode still fails after the retry policy gives up,
// the archive *quarantines* it: the failure is recorded in a sidecar
// `quarantine.json` next to the manifest (written with WriteFileAtomic, so
// the sidecar itself is crash-safe), the query continues over the remaining
// blocks, and the result carries a structured PartialReport naming each
// failed block and the global line-range hole it leaves. Subsequent queries
// skip quarantined blocks outright instead of re-paying the retry storm.
//
// `loggrep_cli repair` (RepairArchive in src/store/verify.h) later
// re-verifies quarantined blocks against the manifest v2 hashes and either
// *reinstates* them (entry removed, block serves queries again) or
// *tombstones* them (the hole is accepted as permanent data loss but keeps
// being reported).
//
// Lifecycle:   healthy --query fails--> quarantined --repair ok--> healthy
//                                          |   ^
//                            repair fails  |   | file restored + repair ok
//                                          v   |
//                                        tombstoned
#ifndef SRC_STORE_QUARANTINE_H_
#define SRC_STORE_QUARANTINE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"
#include "src/store/storage_env.h"

namespace loggrep {

struct QuarantineEntry {
  uint32_t seq = 0;
  std::string code;   // StatusCodeName of the failure that quarantined it
  std::string error;  // human-readable cause (first failure)
  bool tombstoned = false;  // repair gave up; the hole is accepted
  uint64_t quarantined_unix = 0;  // seconds since epoch (0 = unknown)
};

struct QuarantineSet {
  std::vector<QuarantineEntry> entries;  // kept sorted by seq

  const QuarantineEntry* Find(uint32_t seq) const;
  QuarantineEntry* Find(uint32_t seq);
  // Inserts or refreshes (keeps the first recorded error and tombstone
  // state); returns true when `seq` was not quarantined before.
  bool Add(QuarantineEntry entry);
  bool Remove(uint32_t seq);
  bool empty() const { return entries.empty(); }
  size_t tombstoned_count() const;
};

// `<dir>/quarantine.json`.
std::string QuarantinePath(const std::string& dir);

// Loads the sidecar. A missing file is an empty set (the healthy common
// case); unparseable bytes are kCorruptData (callers degrade to an empty
// set but surface the status).
Result<QuarantineSet> LoadQuarantine(const std::string& dir,
                                     StorageEnv* env = nullptr);

// Atomically persists the sidecar; an empty set removes the file.
Status SaveQuarantine(const std::string& dir, const QuarantineSet& set,
                      StorageEnv* env = nullptr);

// Serialization (exposed for tests).
std::string SerializeQuarantineJson(const QuarantineSet& set);
Result<QuarantineSet> ParseQuarantineJson(std::string_view json);

// ---------------------------------------------------------------------------
// Partial results
// ---------------------------------------------------------------------------

// One block a query could not serve: the per-block error plus the global
// line-range hole [first_line, first_line + line_count) it leaves in the
// result.
struct BlockQueryFailure {
  uint32_t seq = 0;
  uint64_t first_line = 0;
  uint64_t line_count = 0;
  std::string error;
  bool newly_quarantined = false;  // this very query discovered the failure
  bool tombstoned = false;         // hole previously accepted by repair
};

// Attached to every ArchiveQueryResult. Empty means the result is complete.
struct PartialReport {
  std::vector<BlockQueryFailure> failures;

  bool partial() const { return !failures.empty(); }
  uint64_t lines_missing() const;
  // Human-readable report ("block 3 lines [900,1200): IO_ERROR ...").
  std::string Render() const;
};

}  // namespace loggrep

#endif  // SRC_STORE_QUARANTINE_H_
