#include "src/store/storage_env.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <thread>

namespace loggrep {

const char* StorageOpName(StorageOp op) {
  switch (op) {
    case StorageOp::kRead:
      return "read";
    case StorageOp::kWrite:
      return "write";
    case StorageOp::kRename:
      return "rename";
    case StorageOp::kRemove:
      return "remove";
    case StorageOp::kSyncFile:
      return "sync_file";
    case StorageOp::kSyncDir:
      return "sync_dir";
  }
  return "unknown";
}

namespace {

// Maps an errno from an open/read/write failure to the storage taxonomy.
Status ErrnoToStatus(int err, const std::string& op,
                     const std::string& path) {
  const std::string msg = "fs: " + op + " " + path + ": " +
                          std::strerror(err);
  switch (err) {
    case ENOENT:
    case ENOTDIR:
      return NotFound(msg);
    case EACCES:
    case EPERM:
      return PermissionDenied(msg);
    case EAGAIN:
    case EINTR:
    case EBUSY:
      return Unavailable(msg);
    default:
      return IOError(msg);
  }
}

class FdCloser {
 public:
  explicit FdCloser(int fd) : fd_(fd) {}
  ~FdCloser() {
    if (fd_ >= 0) {
      ::close(fd_);
    }
  }
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  int get() const { return fd_; }

 private:
  int fd_;
};

}  // namespace

StorageEnv* DefaultStorageEnv() {
  static PosixStorageEnv* env = new PosixStorageEnv();
  return env;
}

// ---------------------------------------------------------------------------
// PosixStorageEnv
// ---------------------------------------------------------------------------

Result<std::string> PosixStorageEnv::ReadFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return ErrnoToStatus(errno, "open", path);
  }
  FdCloser closer(fd);
  std::string out;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return ErrnoToStatus(errno, "read", path);
    }
    if (n == 0) {
      break;
    }
    out.append(buf, static_cast<size_t>(n));
  }
  return out;
}

Status PosixStorageEnv::WriteFile(const std::string& path,
                                  std::string_view data) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);
  if (fd < 0) {
    return ErrnoToStatus(errno, "create", path);
  }
  FdCloser closer(fd);
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return ErrnoToStatus(errno, "write", path);
    }
    written += static_cast<size_t>(n);
  }
  if (::close(closer.release()) != 0) {
    return ErrnoToStatus(errno, "close", path);
  }
  return OkStatus();
}

Status PosixStorageEnv::Rename(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return ErrnoToStatus(errno, "rename", from + " -> " + to);
  }
  return OkStatus();
}

Status PosixStorageEnv::RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) != 0) {
    return ErrnoToStatus(errno, "unlink", path);
  }
  return OkStatus();
}

Status PosixStorageEnv::SyncFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return ErrnoToStatus(errno, "open-for-sync", path);
  }
  FdCloser closer(fd);
  if (::fsync(fd) != 0) {
    return ErrnoToStatus(errno, "fsync", path);
  }
  return OkStatus();
}

Status PosixStorageEnv::SyncDir(const std::string& dir) {
  const std::string target = dir.empty() ? "." : dir;
  const int fd = ::open(target.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) {
    return ErrnoToStatus(errno, "open-dir-for-sync", target);
  }
  FdCloser closer(fd);
  // Some filesystems reject fsync on directory fds (EINVAL); that is not a
  // durability failure the caller can act on, so only hard errors surface.
  if (::fsync(fd) != 0 && errno != EINVAL) {
    return ErrnoToStatus(errno, "fsync-dir", target);
  }
  return OkStatus();
}

bool PosixStorageEnv::FileExists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

uint64_t PosixStorageEnv::NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void PosixStorageEnv::SleepNanos(uint64_t nanos) {
  if (nanos > 0) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(nanos));
  }
}

// ---------------------------------------------------------------------------
// LatencyStorageEnv
// ---------------------------------------------------------------------------

LatencyStorageEnv::LatencyStorageEnv(LatencyOptions options, StorageEnv* base)
    : options_(options), base_(EnvOrDefault(base)), rng_(options.seed) {}

void LatencyStorageEnv::Charge(uint64_t payload_bytes) {
  uint64_t nanos = options_.per_op_nanos;
  nanos += payload_bytes * options_.per_byte_picos / 1000;
  if (options_.jitter_nanos > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    nanos += rng_.NextBelow(options_.jitter_nanos);
  }
  base_->SleepNanos(nanos);
}

Result<std::string> LatencyStorageEnv::ReadFile(const std::string& path) {
  Result<std::string> r = base_->ReadFile(path);
  Charge(r.ok() ? r->size() : 0);
  return r;
}

Status LatencyStorageEnv::WriteFile(const std::string& path,
                                    std::string_view data) {
  Charge(data.size());
  return base_->WriteFile(path, data);
}

Status LatencyStorageEnv::Rename(const std::string& from,
                                 const std::string& to) {
  Charge(0);
  return base_->Rename(from, to);
}

Status LatencyStorageEnv::RemoveFile(const std::string& path) {
  Charge(0);
  return base_->RemoveFile(path);
}

Status LatencyStorageEnv::SyncFile(const std::string& path) {
  Charge(0);
  return base_->SyncFile(path);
}

Status LatencyStorageEnv::SyncDir(const std::string& dir) {
  Charge(0);
  return base_->SyncDir(dir);
}

bool LatencyStorageEnv::FileExists(const std::string& path) {
  Charge(0);
  return base_->FileExists(path);
}

uint64_t LatencyStorageEnv::NowNanos() { return base_->NowNanos(); }

void LatencyStorageEnv::SleepNanos(uint64_t nanos) {
  base_->SleepNanos(nanos);
}

// ---------------------------------------------------------------------------
// FaultInjectingStorageEnv
// ---------------------------------------------------------------------------

FaultInjectingStorageEnv::FaultInjectingStorageEnv(FaultOptions options,
                                                   StorageEnv* base)
    : options_(options), base_(EnvOrDefault(base)), rng_(options.seed) {
  if (options_.metrics != nullptr) {
    for (size_t i = 0; i < kNumStorageOps; ++i) {
      fault_counters_[i] = options_.metrics->GetOrCreate(
          std::string("storage.fault.") +
          StorageOpName(static_cast<StorageOp>(i)));
    }
  }
}

void FaultInjectingStorageEnv::CountFault(StorageOp op) {
  ++faults_injected_;
  if (fault_counters_[static_cast<size_t>(op)] != nullptr) {
    fault_counters_[static_cast<size_t>(op)]->Increment();
  }
}

Status FaultInjectingStorageEnv::PickFault(StorageOp op,
                                           const std::string& path,
                                           bool* torn) {
  const size_t idx = static_cast<size_t>(op);
  const uint64_t call = ++total_calls_[idx];
  ++call_counts_[idx];
  if (torn != nullptr) {
    *torn = false;
  }
  if (options_.virtual_clock) {
    virtual_now_ns_ += 1000;  // every op moves the virtual clock 1us
  }

  // Permanent faults dominate everything else.
  for (const PermanentFault& fault : permanent_) {
    if (path.find(fault.substring) != std::string::npos) {
      CountFault(op);
      return Status(fault.code, "fault-env: permanent fault on " + path +
                                    " (" + StorageOpName(op) + ")");
    }
  }

  // Scheduled faults: FailNth first (absolute call index), then FailNext.
  Schedule& sched = schedules_[idx];
  for (auto it = sched.fail_at_call.begin(); it != sched.fail_at_call.end();
       ++it) {
    if (it->first == call) {
      const StatusCode code = it->second;
      sched.fail_at_call.erase(it);
      CountFault(op);
      return Status(code, std::string("fault-env: scheduled fault on call ") +
                              std::to_string(call) + " of " +
                              StorageOpName(op) + " (" + path + ")");
    }
  }
  if (sched.fail_next > 0) {
    --sched.fail_next;
    CountFault(op);
    return Status(sched.fail_next_code,
                  std::string("fault-env: scheduled fault on ") +
                      StorageOpName(op) + " (" + path + ")");
  }

  // Probabilistic storm, capped per path so storms can be made transient.
  double p = 0;
  switch (op) {
    case StorageOp::kRead:
      p = options_.read_fail_p;
      break;
    case StorageOp::kWrite:
      p = options_.write_fail_p;
      break;
    case StorageOp::kRename:
      p = options_.rename_fail_p;
      break;
    case StorageOp::kSyncFile:
    case StorageOp::kSyncDir:
      p = options_.sync_fail_p;
      break;
    case StorageOp::kRemove:
      p = 0;  // removes are best-effort cleanup; failing them only leaks
      break;
  }
  if (p > 0 && rng_.NextBool(p)) {
    uint32_t& count = faults_per_path_[path];
    if (count < options_.max_faults_per_path) {
      ++count;
      CountFault(op);
      if (torn != nullptr && op == StorageOp::kWrite &&
          options_.torn_write_p > 0 && rng_.NextBool(options_.torn_write_p)) {
        *torn = true;
        ++torn_writes_;
      }
      return Status(options_.fault_code,
                    std::string("fault-env: injected ") + StorageOpName(op) +
                        " fault (" + path + ")");
    }
  }
  return OkStatus();
}

Result<std::string> FaultInjectingStorageEnv::ReadFile(
    const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    Status fault = PickFault(StorageOp::kRead, path, nullptr);
    if (!fault.ok()) {
      return fault;
    }
  }
  return base_->ReadFile(path);
}

Status FaultInjectingStorageEnv::WriteFile(const std::string& path,
                                           std::string_view data) {
  bool torn = false;
  Status fault;
  uint64_t tear_at = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    fault = PickFault(StorageOp::kWrite, path, &torn);
    if (torn && !data.empty()) {
      tear_at = rng_.NextBelow(data.size());
    }
  }
  if (!fault.ok()) {
    if (torn && !data.empty()) {
      // Torn write: a prefix lands on the backend, then the op "dies".
      (void)base_->WriteFile(path, data.substr(0, tear_at));
    }
    return fault;
  }
  return base_->WriteFile(path, data);
}

Status FaultInjectingStorageEnv::Rename(const std::string& from,
                                        const std::string& to) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Both endpoints are fault surfaces (permanent faults name either side).
    Status fault = PickFault(StorageOp::kRename, from + "\n" + to, nullptr);
    if (!fault.ok()) {
      return fault;
    }
  }
  return base_->Rename(from, to);
}

Status FaultInjectingStorageEnv::RemoveFile(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    Status fault = PickFault(StorageOp::kRemove, path, nullptr);
    if (!fault.ok()) {
      return fault;
    }
  }
  return base_->RemoveFile(path);
}

Status FaultInjectingStorageEnv::SyncFile(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    Status fault = PickFault(StorageOp::kSyncFile, path, nullptr);
    if (!fault.ok()) {
      return fault;
    }
  }
  return base_->SyncFile(path);
}

Status FaultInjectingStorageEnv::SyncDir(const std::string& dir) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    Status fault = PickFault(StorageOp::kSyncDir, dir, nullptr);
    if (!fault.ok()) {
      return fault;
    }
  }
  return base_->SyncDir(dir);
}

bool FaultInjectingStorageEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

uint64_t FaultInjectingStorageEnv::NowNanos() {
  if (!options_.virtual_clock) {
    return base_->NowNanos();
  }
  std::lock_guard<std::mutex> lock(mu_);
  return ++virtual_now_ns_;
}

void FaultInjectingStorageEnv::SleepNanos(uint64_t nanos) {
  if (!options_.virtual_clock) {
    base_->SleepNanos(nanos);
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  virtual_now_ns_ += nanos;
}

void FaultInjectingStorageEnv::FailNext(StorageOp op, uint32_t count,
                                        StatusCode code) {
  std::lock_guard<std::mutex> lock(mu_);
  Schedule& sched = schedules_[static_cast<size_t>(op)];
  sched.fail_next += count;
  sched.fail_next_code = code;
}

void FaultInjectingStorageEnv::FailNth(StorageOp op, uint32_t nth,
                                       StatusCode code) {
  std::lock_guard<std::mutex> lock(mu_);
  Schedule& sched = schedules_[static_cast<size_t>(op)];
  sched.fail_at_call.emplace_back(
      total_calls_[static_cast<size_t>(op)] + nth, code);
}

void FaultInjectingStorageEnv::AddPermanentFault(std::string substring,
                                                 StatusCode code) {
  std::lock_guard<std::mutex> lock(mu_);
  permanent_.push_back({std::move(substring), code});
}

void FaultInjectingStorageEnv::ClearPermanentFaults() {
  std::lock_guard<std::mutex> lock(mu_);
  permanent_.clear();
}

uint64_t FaultInjectingStorageEnv::faults_injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return faults_injected_;
}

uint64_t FaultInjectingStorageEnv::calls(StorageOp op) const {
  std::lock_guard<std::mutex> lock(mu_);
  return call_counts_[static_cast<size_t>(op)];
}

uint64_t FaultInjectingStorageEnv::torn_writes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return torn_writes_;
}

}  // namespace loggrep
