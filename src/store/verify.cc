#include "src/store/verify.h"

#include <cstdio>

#include "src/capsule/capsule_box.h"
#include "src/common/hash.h"
#include "src/query/locator.h"
#include "src/query/reconstructor.h"
#include "src/store/fs_util.h"
#include "src/store/log_archive.h"

namespace loggrep {
namespace {

Status Corrupt(std::string message) {
  return CorruptData(std::move(message));
}

}  // namespace

Result<std::vector<std::string>> ReconstructAllLines(
    std::string_view box_bytes) {
  Result<CapsuleBox> box = CapsuleBox::Open(box_bytes);
  if (!box.ok()) {
    return box.status();
  }
  const CapsuleBoxMeta& meta = box->meta();
  std::vector<std::string> lines(meta.total_lines);
  std::vector<uint8_t> covered(meta.total_lines, 0);

  BoxQuerier querier(*box, LocatorOptions{});
  Reconstructor recon(&querier);
  for (size_t g = 0; g < meta.groups.size(); ++g) {
    const GroupMeta& group = meta.groups[g];
    for (uint32_t row = 0; row < group.row_count; ++row) {
      const uint32_t line_no = group.line_numbers[row];
      if (covered[line_no]) {
        return Corrupt("verify: line " + std::to_string(line_no) +
                       " reconstructed twice (group " + std::to_string(g) +
                       ")");
      }
      covered[line_no] = 1;
      lines[line_no] =
          recon.RenderRow(static_cast<uint32_t>(g), row);
    }
  }
  for (size_t i = 0; i < meta.outlier_line_numbers.size(); ++i) {
    const uint32_t line_no = meta.outlier_line_numbers[i];
    if (covered[line_no]) {
      return Corrupt("verify: outlier line " + std::to_string(line_no) +
                     " reconstructed twice");
    }
    covered[line_no] = 1;
    lines[line_no] = recon.RenderOutlier(static_cast<uint32_t>(i));
  }
  if (Status s = querier.status(); !s.ok()) {
    return s;  // capsule decompression / decode failure
  }
  for (uint32_t line_no = 0; line_no < meta.total_lines; ++line_no) {
    if (!covered[line_no]) {
      return Corrupt("verify: line " + std::to_string(line_no) +
                     " covered by no group or outlier (hole)");
    }
  }
  return lines;
}

uint64_t HashReconstructedLines(const std::vector<std::string>& lines) {
  // Mirrors HashBlockContent: absorb each line, then one '\n' byte. Lines
  // never contain '\n', so the chaining is unambiguous.
  uint64_t h = 0xCBF29CE484222325ULL;  // FNV-1a offset basis
  for (const std::string& line : lines) {
    h = Fnv1a64(line, h);
    h = Fnv1a64("\n", h);
  }
  return h;
}

VerifyReport VerifyArchive(const std::string& dir) {
  VerifyReport report;
  report.dir = dir;

  Result<std::string> manifest_bytes = ReadFileBytes(dir + "/archive.manifest");
  if (!manifest_bytes.ok()) {
    report.fatal = manifest_bytes.status();
    return report;
  }
  Result<std::vector<BlockInfo>> blocks = ParseManifestBytes(*manifest_bytes);
  if (!blocks.ok()) {
    report.fatal = blocks.status();
    return report;
  }

  for (const BlockInfo& block : *blocks) {
    BlockVerifyResult result;
    result.seq = block.seq;
    result.line_count = block.line_count;
    result.stored_bytes = block.stored_bytes;

    const std::string path =
        dir + "/block-" + std::to_string(block.seq) + ".lgc";
    Result<std::string> bytes = ReadFileBytes(path);
    if (!bytes.ok()) {
      result.error = "block file unreadable: " + bytes.status().ToString();
      report.blocks.push_back(std::move(result));
      ++report.blocks_failed;
      continue;
    }
    if (bytes->size() != block.stored_bytes) {
      result.error = "stored size mismatch: manifest says " +
                     std::to_string(block.stored_bytes) + " bytes, file has " +
                     std::to_string(bytes->size());
      report.blocks.push_back(std::move(result));
      ++report.blocks_failed;
      continue;
    }
    if (Fnv1a64(*bytes) != block.stored_hash) {
      result.error = "stored bytes hash mismatch (at-rest corruption)";
      report.blocks.push_back(std::move(result));
      ++report.blocks_failed;
      continue;
    }

    Result<std::vector<std::string>> lines = ReconstructAllLines(*bytes);
    if (!lines.ok()) {
      result.error = "reconstruction failed: " + lines.status().ToString();
      report.blocks.push_back(std::move(result));
      ++report.blocks_failed;
      continue;
    }
    if (lines->size() != block.line_count) {
      result.error = "line count mismatch: manifest says " +
                     std::to_string(block.line_count) + ", box holds " +
                     std::to_string(lines->size());
      report.blocks.push_back(std::move(result));
      ++report.blocks_failed;
      continue;
    }
    if (HashReconstructedLines(*lines) != block.content_hash) {
      result.error =
          "content hash mismatch: reconstructed text differs from ingested";
      report.blocks.push_back(std::move(result));
      ++report.blocks_failed;
      continue;
    }

    report.lines_verified += lines->size();
    report.blocks.push_back(std::move(result));
  }
  return report;
}

std::string VerifyReport::Summary() const {
  if (!fatal.ok()) {
    return "verify " + dir + ": FATAL " + fatal.ToString();
  }
  std::string out = "verify " + dir + ": " +
                    std::to_string(blocks.size()) + " blocks, " +
                    std::to_string(lines_verified) + " lines, " +
                    std::to_string(blocks_failed) + " failed";
  for (const BlockVerifyResult& block : blocks) {
    if (!block.ok()) {
      out += "\n  block " + std::to_string(block.seq) + ": " + block.error;
    }
  }
  return out;
}

}  // namespace loggrep
