#include "src/store/verify.h"

#include <algorithm>
#include <cstdio>

#include "src/capsule/capsule_box.h"
#include "src/common/hash.h"
#include "src/query/locator.h"
#include "src/query/reconstructor.h"
#include "src/store/fs_util.h"
#include "src/store/log_archive.h"

#include "src/store/quarantine.h"

namespace loggrep {
namespace {

Status Corrupt(std::string message) {
  return CorruptData(std::move(message));
}

// The full per-block check battery shared by VerifyArchive (fsck over every
// block) and RepairArchive (re-check of quarantined blocks only): stored
// bytes readable, sized and hashed as the manifest says, every line
// reconstructable, content hash matching the ingested text.
BlockVerifyResult VerifyOneBlock(const std::string& dir,
                                 const BlockInfo& block, StorageEnv* env) {
  BlockVerifyResult result;
  result.seq = block.seq;
  result.line_count = block.line_count;
  result.stored_bytes = block.stored_bytes;

  const std::string path =
      dir + "/block-" + std::to_string(block.seq) + ".lgc";
  Result<std::string> bytes = ReadFileBytes(path, env);
  if (!bytes.ok()) {
    result.error = "block file unreadable: " + bytes.status().ToString();
    return result;
  }
  if (bytes->size() != block.stored_bytes) {
    result.error = "stored size mismatch: manifest says " +
                   std::to_string(block.stored_bytes) + " bytes, file has " +
                   std::to_string(bytes->size());
    return result;
  }
  if (Fnv1a64(*bytes) != block.stored_hash) {
    result.error = "stored bytes hash mismatch (at-rest corruption)";
    return result;
  }

  Result<std::vector<std::string>> lines = ReconstructAllLines(*bytes);
  if (!lines.ok()) {
    result.error = "reconstruction failed: " + lines.status().ToString();
    return result;
  }
  if (lines->size() != block.line_count) {
    result.error = "line count mismatch: manifest says " +
                   std::to_string(block.line_count) + ", box holds " +
                   std::to_string(lines->size());
    return result;
  }
  if (HashReconstructedLines(*lines) != block.content_hash) {
    result.error =
        "content hash mismatch: reconstructed text differs from ingested";
    return result;
  }
  return result;  // ok(): error stays empty
}

}  // namespace

Result<std::vector<std::string>> ReconstructAllLines(
    std::string_view box_bytes) {
  Result<CapsuleBox> box = CapsuleBox::Open(box_bytes);
  if (!box.ok()) {
    return box.status();
  }
  const CapsuleBoxMeta& meta = box->meta();
  std::vector<std::string> lines(meta.total_lines);
  std::vector<uint8_t> covered(meta.total_lines, 0);

  BoxQuerier querier(*box, LocatorOptions{});
  Reconstructor recon(&querier);
  for (size_t g = 0; g < meta.groups.size(); ++g) {
    const GroupMeta& group = meta.groups[g];
    for (uint32_t row = 0; row < group.row_count; ++row) {
      const uint32_t line_no = group.line_numbers[row];
      if (covered[line_no]) {
        return Corrupt("verify: line " + std::to_string(line_no) +
                       " reconstructed twice (group " + std::to_string(g) +
                       ")");
      }
      covered[line_no] = 1;
      recon.RenderRowTo(static_cast<uint32_t>(g), row, &lines[line_no]);
    }
  }
  for (size_t i = 0; i < meta.outlier_line_numbers.size(); ++i) {
    const uint32_t line_no = meta.outlier_line_numbers[i];
    if (covered[line_no]) {
      return Corrupt("verify: outlier line " + std::to_string(line_no) +
                     " reconstructed twice");
    }
    covered[line_no] = 1;
    recon.RenderOutlierTo(static_cast<uint32_t>(i), &lines[line_no]);
  }
  if (Status s = querier.status(); !s.ok()) {
    return s;  // capsule decompression / decode failure
  }
  for (uint32_t line_no = 0; line_no < meta.total_lines; ++line_no) {
    if (!covered[line_no]) {
      return Corrupt("verify: line " + std::to_string(line_no) +
                     " covered by no group or outlier (hole)");
    }
  }
  return lines;
}

uint64_t HashReconstructedLines(const std::vector<std::string>& lines) {
  // Mirrors HashBlockContent: absorb each line, then one '\n' byte. Lines
  // never contain '\n', so the chaining is unambiguous.
  uint64_t h = 0xCBF29CE484222325ULL;  // FNV-1a offset basis
  for (const std::string& line : lines) {
    h = Fnv1a64(line, h);
    h = Fnv1a64("\n", h);
  }
  return h;
}

VerifyReport VerifyArchive(const std::string& dir, StorageEnv* env) {
  env = EnvOrDefault(env);
  VerifyReport report;
  report.dir = dir;

  Result<std::string> manifest_bytes =
      ReadFileBytes(dir + "/archive.manifest", env);
  if (!manifest_bytes.ok()) {
    report.fatal = manifest_bytes.status();
    return report;
  }
  Result<std::vector<BlockInfo>> blocks = ParseManifestBytes(*manifest_bytes);
  if (!blocks.ok()) {
    report.fatal = blocks.status();
    return report;
  }

  for (const BlockInfo& block : *blocks) {
    BlockVerifyResult result = VerifyOneBlock(dir, block, env);
    if (result.ok()) {
      report.lines_verified += block.line_count;
    } else {
      ++report.blocks_failed;
    }
    report.blocks.push_back(std::move(result));
  }
  return report;
}

RepairReport RepairArchive(const std::string& dir, StorageEnv* env) {
  env = EnvOrDefault(env);
  RepairReport report;
  report.dir = dir;

  Result<std::string> manifest_bytes =
      ReadFileBytes(dir + "/archive.manifest", env);
  if (!manifest_bytes.ok()) {
    report.fatal = manifest_bytes.status();
    return report;
  }
  Result<std::vector<BlockInfo>> blocks = ParseManifestBytes(*manifest_bytes);
  if (!blocks.ok()) {
    report.fatal = blocks.status();
    return report;
  }

  Result<QuarantineSet> loaded = LoadQuarantine(dir, env);
  QuarantineSet set;
  if (loaded.ok()) {
    set = std::move(*loaded);
  } else if (loaded.status().code() != StatusCode::kCorruptData) {
    report.fatal = loaded.status();
    return report;
  }
  // An unparseable sidecar repairs to an empty one: every block the manifest
  // still vouches for will be re-quarantined by the next failing query.

  QuarantineSet repaired;
  for (QuarantineEntry& entry : set.entries) {
    const auto it = std::find_if(
        blocks->begin(), blocks->end(),
        [&entry](const BlockInfo& b) { return b.seq == entry.seq; });
    if (it == blocks->end()) {
      continue;  // stale entry: the manifest no longer claims this block
    }
    RepairAction action;
    action.seq = entry.seq;
    const BlockVerifyResult check = VerifyOneBlock(dir, *it, env);
    if (check.ok()) {
      action.reinstated = true;  // healthy again (possibly a restored file)
      ++report.reinstated;
    } else {
      action.tombstoned = true;
      action.detail = check.error;
      ++report.tombstoned;
      entry.tombstoned = true;
      if (entry.error.empty()) {
        entry.error = check.error;
      }
      repaired.Add(std::move(entry));
    }
    report.actions.push_back(std::move(action));
  }

  if (Status s = SaveQuarantine(dir, repaired, env); !s.ok()) {
    report.fatal = s;
  }
  return report;
}

std::string RepairReport::Summary() const {
  if (!fatal.ok()) {
    return "repair " + dir + ": FATAL " + fatal.ToString();
  }
  std::string out = "repair " + dir + ": " +
                    std::to_string(actions.size()) + " quarantined block(s), " +
                    std::to_string(reinstated) + " reinstated, " +
                    std::to_string(tombstoned) + " tombstoned";
  for (const RepairAction& action : actions) {
    out += "\n  block " + std::to_string(action.seq) + ": " +
           (action.reinstated ? "reinstated" : "tombstoned");
    if (!action.detail.empty()) {
      out += " (" + action.detail + ")";
    }
  }
  return out;
}

std::string VerifyReport::Summary() const {
  if (!fatal.ok()) {
    return "verify " + dir + ": FATAL " + fatal.ToString();
  }
  std::string out = "verify " + dir + ": " +
                    std::to_string(blocks.size()) + " blocks, " +
                    std::to_string(lines_verified) + " lines, " +
                    std::to_string(blocks_failed) + " failed";
  for (const BlockVerifyResult& block : blocks) {
    if (!block.ok()) {
      out += "\n  block " + std::to_string(block.seq) + ": " + block.error;
    }
  }
  return out;
}

}  // namespace loggrep
