#include "src/store/log_archive.h"

#include <algorithm>
#include <ctime>
#include <filesystem>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "src/common/hash.h"
#include "src/common/thread_pool.h"
#include "src/common/timer.h"
#include "src/common/trace.h"
#include "src/parser/template_miner.h"  // SplitLines
#include "src/parser/tokenizer.h"
#include "src/query/query_parser.h"
#include "src/query/wildcard.h"
#include "src/store/fs_util.h"

namespace loggrep {
namespace {

constexpr uint32_t kManifestMagic = 0x4D41474Cu;  // "LGAM"
// v2 adds a version byte plus per-block content / stored-bytes checksums
// (the v1 layout had no version byte at all, so v1 manifests now read as
// corrupt; archives are regenerated from raw logs in that case).
constexpr uint8_t kManifestVersion = 2;
constexpr size_t kShingleLen = 4;
// Line counts / line numbers beyond this are not plausible (they would need
// more than an exabyte of raw log) and would overflow the monotonicity
// arithmetic below; reject them during manifest parsing.
constexpr uint64_t kMaxPlausibleLines = 1ull << 62;

inline uint64_t ElapsedNanos(const WallTimer& timer) {
  return timer.ElapsedNanos();
}

// Engine options for an archive-embedded engine: wire in the shared cache
// (the engine must not own a second, private one).
EngineOptions ArchiveEngineOptions(EngineOptions base, BoxCache* cache) {
  base.box_cache = cache;
  base.use_box_cache = cache != nullptr;
  return base;
}

void AddTokenShingles(const std::string_view token, BloomFilter& bloom) {
  if (token.size() < kShingleLen) {
    return;  // short content is covered by the stamp check instead
  }
  for (size_t i = 0; i + kShingleLen <= token.size(); ++i) {
    bloom.Add(token.substr(i, kShingleLen));
  }
}

// Sound block-level admission test for one literal keyword. When `reason`
// is non-null and the block is rejected, it receives which filter fired
// (for archive-level explain records).
bool BlockMayContainKeyword(const BlockInfo& block, std::string_view keyword,
                            std::string* reason = nullptr) {
  if (HasWildcards(keyword)) {
    if (!StampAdmitsKeyword(block.token_stamp, keyword)) {
      if (reason != nullptr) {
        *reason = "keyword \"" + std::string(keyword) + "\" fails block stamp";
      }
      return false;
    }
    return true;
  }
  if (!block.token_stamp.AdmitsFragment(keyword)) {
    if (reason != nullptr) {
      *reason = "keyword \"" + std::string(keyword) + "\" fails block stamp";
    }
    return false;
  }
  if (keyword.size() < kShingleLen || block.shingles.empty()) {
    return true;
  }
  for (size_t i = 0; i + kShingleLen <= keyword.size(); ++i) {
    if (!block.shingles.MayContain(keyword.substr(i, kShingleLen))) {
      if (reason != nullptr) {
        *reason = "keyword \"" + std::string(keyword) +
                  "\" shingle \"" + std::string(keyword.substr(i, kShingleLen)) +
                  "\" absent from block shingle filter";
      }
      return false;
    }
  }
  return true;
}

void CollectRequired(const QueryExpr& expr, std::vector<std::string>* out) {
  switch (expr.kind) {
    case QueryExpr::Kind::kTerm:
      out->insert(out->end(), expr.term.keywords.begin(),
                  expr.term.keywords.end());
      return;
    case QueryExpr::Kind::kAnd: {
      CollectRequired(*expr.left, out);
      CollectRequired(*expr.right, out);
      return;
    }
    case QueryExpr::Kind::kOr: {
      // A keyword is required only when both branches require it.
      std::vector<std::string> l;
      std::vector<std::string> r;
      CollectRequired(*expr.left, &l);
      CollectRequired(*expr.right, &r);
      const std::set<std::string> rset(r.begin(), r.end());
      for (std::string& kw : l) {
        if (rset.count(kw) > 0) {
          out->push_back(std::move(kw));
        }
      }
      return;
    }
    case QueryExpr::Kind::kNot:
      // Only the positive side constrains matching entries.
      if (expr.left != nullptr) {
        CollectRequired(*expr.left, out);
      }
      return;
  }
}

}  // namespace

std::vector<std::string> RequiredKeywords(const QueryExpr& expr) {
  std::vector<std::string> out;
  CollectRequired(expr, &out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

const char* CommitKillPointName(CommitKillPoint point) {
  switch (point) {
    case CommitKillPoint::kBlockTmpWritten:
      return "block-tmp-written";
    case CommitKillPoint::kBlockRenamed:
      return "block-renamed";
    case CommitKillPoint::kManifestTmpWritten:
      return "manifest-tmp-written";
  }
  return "unknown";
}

uint64_t HashBlockContent(std::string_view text) {
  uint64_t h = 0xCBF29CE484222325ULL;  // FNV-1a offset basis
  for (std::string_view line : SplitLines(text)) {
    h = Fnv1a64(line, h);
    h = Fnv1a64("\n", h);
  }
  return h;
}

BlockInfo BuildBlockSummary(std::string_view text,
                            uint32_t bloom_bits_per_shingle) {
  BlockInfo block;
  block.raw_bytes = text.size();
  // Block-level summary: token stamp + shingle Bloom filter, sized for
  // roughly one shingle per 4 raw bytes.
  block.shingles = BloomFilter(std::max<uint64_t>(1024, text.size() / 4),
                               bloom_bits_per_shingle);
  uint64_t h = 0xCBF29CE484222325ULL;
  for (std::string_view line : SplitLines(text)) {
    ++block.line_count;
    h = Fnv1a64(line, h);
    h = Fnv1a64("\n", h);
    for (std::string_view token : TokenizeKeywords(line)) {
      block.token_stamp.Absorb(token);
      AddTokenShingles(token, block.shingles);
    }
  }
  block.content_hash = h;
  return block;
}

LogArchive::LogArchive(std::string dir, ArchiveOptions options)
    : dir_(std::move(dir)),
      options_(options),
      cache_namespace_(BoxKey::NextNamespaceId()),
      box_cache_(options.box_cache_budget_bytes > 0
                     ? std::make_shared<BoxCache>(BoxCacheOptions{
                           options.box_cache_budget_bytes, /*shards=*/8,
                           options.metrics})
                     : nullptr),
      engine_(ArchiveEngineOptions(options_.engine, box_cache_.get())) {}

BoxKey LogArchive::KeyForBlock(uint32_t seq) const {
  return BoxKey::ForSequence(cache_namespace_, seq);
}

std::string LogArchive::BlockFileName(uint32_t seq) {
  return "block-" + std::to_string(seq) + ".lgc";
}

std::string LogArchive::BlockPath(uint32_t seq) const {
  return dir_ + "/" + BlockFileName(seq);
}

std::string LogArchive::ManifestPath() const { return dir_ + "/archive.manifest"; }

Result<LogArchive> LogArchive::Create(std::string dir, ArchiveOptions options) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Internal("archive: cannot create directory " + dir);
  }
  LogArchive archive(std::move(dir), options);
  if (archive.storage_env()->FileExists(archive.ManifestPath())) {
    return InvalidArgument("archive: manifest already exists; use Open");
  }
  LOGGREP_RETURN_IF_ERROR(archive.WriteManifest());
  return archive;
}

Result<std::vector<BlockInfo>> ParseManifestBytes(std::string_view bytes) {
  ByteReader in(bytes);
  Result<uint32_t> magic = in.ReadU32();
  if (!magic.ok()) {
    return magic.status();
  }
  if (*magic != kManifestMagic) {
    return CorruptData("archive: bad manifest magic");
  }
  Result<uint8_t> version = in.ReadU8();
  if (!version.ok()) {
    return version.status();
  }
  if (*version != kManifestVersion) {
    return CorruptData("archive: unsupported manifest version");
  }
  Result<uint64_t> count = in.ReadVarint();
  if (!count.ok()) {
    return count.status();
  }
  // Every block entry costs well over one stream byte; a declared count
  // beyond the remaining bytes is hostile, reject before any allocation.
  if (*count > in.remaining()) {
    return CorruptData("archive: block count exceeds manifest size");
  }
  std::vector<BlockInfo> blocks;
  blocks.reserve(static_cast<size_t>(*count));
  for (uint64_t i = 0; i < *count; ++i) {
    BlockInfo block;
    Result<uint64_t> v = in.ReadVarint();
    if (!v.ok()) {
      return v.status();
    }
    if (*v > UINT32_MAX) {
      return CorruptData("archive: block seq out of range");
    }
    block.seq = static_cast<uint32_t>(*v);
    for (uint64_t* field : {&block.first_line, &block.line_count,
                            &block.raw_bytes, &block.stored_bytes}) {
      Result<uint64_t> value = in.ReadVarint();
      if (!value.ok()) {
        return value.status();
      }
      *field = *value;
    }
    for (uint64_t* hash : {&block.content_hash, &block.stored_hash}) {
      Result<uint64_t> value = in.ReadU64();
      if (!value.ok()) {
        return value.status();
      }
      *hash = *value;
    }
    Result<CapsuleStamp> stamp = CapsuleStamp::ReadFrom(in);
    if (!stamp.ok()) {
      return stamp.status();
    }
    block.token_stamp = *stamp;
    Result<BloomFilter> bloom = BloomFilter::ReadFrom(in);
    if (!bloom.ok()) {
      return bloom.status();
    }
    block.shingles = std::move(*bloom);
    // Structural coherence: seq strictly increasing, line space monotonic
    // and small enough that the arithmetic below cannot overflow.
    if (block.first_line > kMaxPlausibleLines ||
        block.line_count > kMaxPlausibleLines) {
      return CorruptData("archive: implausible line numbers in manifest");
    }
    if (!blocks.empty()) {
      const BlockInfo& prev = blocks.back();
      if (block.seq <= prev.seq) {
        return CorruptData("archive: block seqs not strictly increasing");
      }
      if (block.first_line < prev.first_line + prev.line_count) {
        return CorruptData("archive: block line ranges overlap");
      }
    }
    blocks.push_back(std::move(block));
  }
  if (in.remaining() != 0) {
    return CorruptData("archive: trailing garbage after manifest");
  }
  return blocks;
}

Result<LogArchive> LogArchive::Open(std::string dir, ArchiveOptions options) {
  LogArchive archive(std::move(dir), options);
  StorageEnv* env = archive.storage_env();
  Result<std::string> bytes =
      options.retry.enabled()
          ? RetryReadFile(env, options.retry, /*budget=*/nullptr,
                          archive.ManifestPath(), options.metrics)
          : ReadFileBytes(archive.ManifestPath(), env);
  if (!bytes.ok()) {
    return bytes.status();
  }
  Result<std::vector<BlockInfo>> blocks = ParseManifestBytes(*bytes);
  if (!blocks.ok()) {
    return blocks.status();
  }
  archive.blocks_ = std::move(*blocks);

  // Degraded-query bookkeeping loads *before* recovery: a quarantined block
  // is excused from the missing-file checks below (its hole is a known,
  // reported condition — possibly a tombstone repair already accepted — not
  // fresh corruption). A corrupt sidecar degrades to "nothing quarantined"
  // (queries rediscover sick blocks) — Open must not fail over bookkeeping.
  if (Status s = archive.ReloadQuarantine(); !s.ok()) {
    if (options.metrics != nullptr) {
      options.metrics->GetOrCreate("storage.quarantine.load_failures")->Add(1);
    }
  }

  // Crash recovery. A commit that died after the manifest tmp write but
  // before the rename leaves the *old* manifest in place — nothing to do
  // beyond sweeping. A manifest that somehow references a block whose file
  // never survived (e.g. manual tampering, partial restore) is repaired by
  // dropping trailing entries; an interior hole is real corruption unless
  // the quarantine already accounts for it.
  size_t dropped = 0;
  while (!archive.blocks_.empty() &&
         archive.quarantine_.Find(archive.blocks_.back().seq) == nullptr &&
         !env->FileExists(archive.BlockPath(archive.blocks_.back().seq))) {
    archive.blocks_.pop_back();
    ++dropped;
  }
  for (const BlockInfo& block : archive.blocks_) {
    if (archive.quarantine_.Find(block.seq) != nullptr) {
      continue;  // known hole; queries skip it, repair adjudicates it
    }
    if (!env->FileExists(archive.BlockPath(block.seq))) {
      return CorruptData("archive: interior block file missing: " +
                         archive.BlockPath(block.seq));
    }
  }
  if (dropped > 0) {
    LOGGREP_RETURN_IF_ERROR(archive.WriteManifest());
    // Entries for dropped trailing blocks are now stale; re-filter.
    std::unordered_set<uint32_t> live;
    live.reserve(archive.blocks_.size());
    for (const BlockInfo& block : archive.blocks_) {
      live.insert(block.seq);
    }
    auto& entries = archive.quarantine_.entries;
    entries.erase(std::remove_if(entries.begin(), entries.end(),
                                 [&live](const QuarantineEntry& e) {
                                   return live.count(e.seq) == 0;
                                 }),
                  entries.end());
  }
  SweepTempFiles(archive.dir_, env);
  archive.SweepUnreferencedBlocks();
  return archive;
}

Status LogArchive::ReloadQuarantine() {
  Result<QuarantineSet> loaded = LoadQuarantine(dir_, storage_env());
  if (!loaded.ok()) {
    quarantine_ = QuarantineSet{};
    return loaded.status();
  }
  quarantine_ = std::move(*loaded);
  // Stale entries (blocks no longer in the manifest, e.g. a recovered tail)
  // must not report holes for data the archive no longer claims to hold.
  std::unordered_set<uint32_t> live;
  live.reserve(blocks_.size());
  for (const BlockInfo& block : blocks_) {
    live.insert(block.seq);
  }
  auto& entries = quarantine_.entries;
  entries.erase(std::remove_if(entries.begin(), entries.end(),
                               [&live](const QuarantineEntry& e) {
                                 return live.count(e.seq) == 0;
                               }),
                entries.end());
  return OkStatus();
}

std::string LogArchive::SerializeManifest() const {
  ByteWriter out;
  out.PutU32(kManifestMagic);
  out.PutU8(kManifestVersion);
  out.PutVarint(blocks_.size());
  for (const BlockInfo& block : blocks_) {
    out.PutVarint(block.seq);
    for (uint64_t field : {block.first_line, block.line_count, block.raw_bytes,
                           block.stored_bytes}) {
      out.PutVarint(field);
    }
    out.PutU64(block.content_hash);
    out.PutU64(block.stored_hash);
    block.token_stamp.WriteTo(out);
    block.shingles.WriteTo(out);
  }
  return std::string(out.data());
}

Status LogArchive::WriteManifest() const {
  return WriteFileAtomic(ManifestPath(), SerializeManifest(), storage_env());
}

void LogArchive::SweepUnreferencedBlocks() const {
  std::unordered_set<uint32_t> live;
  live.reserve(blocks_.size());
  for (const BlockInfo& block : blocks_) {
    live.insert(block.seq);
  }
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file()) {
      continue;
    }
    const std::string name = entry.path().filename().string();
    constexpr std::string_view kPrefix = "block-";
    constexpr std::string_view kSuffix = ".lgc";
    if (name.size() <= kPrefix.size() + kSuffix.size() ||
        name.compare(0, kPrefix.size(), kPrefix) != 0 ||
        name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
            0) {
      continue;
    }
    const std::string digits =
        name.substr(kPrefix.size(), name.size() - kPrefix.size() - kSuffix.size());
    // `digits` must parse as a uint32 without throwing: cap the digit count
    // (std::stoul aborts the process via std::out_of_range on e.g. a
    // 40-digit filename someone drops into the directory).
    if (digits.empty() || digits.size() > 10 ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    const uint64_t parsed = std::stoull(digits);  // <= 10 digits: no throw
    if (parsed > UINT32_MAX) {
      continue;  // not a live seq; leave the stray file alone
    }
    const uint32_t seq = static_cast<uint32_t>(parsed);
    if (live.count(seq) == 0) {
      (void)storage_env()->RemoveFile(entry.path().string());
    }
  }
}

Status LogArchive::AppendBlock(std::string_view text) {
  BlockInfo block = BuildBlockSummary(text, options_.bloom_bits_per_shingle);
  const std::string box = engine_.CompressBlock(text);
  return CommitCompressedBlock(box, std::move(block), nullptr);
}

Status LogArchive::CommitCompressedBlock(std::string_view box_bytes,
                                         BlockInfo block,
                                         const CommitHook& hook) {
  block.seq = blocks_.empty() ? 0 : blocks_.back().seq + 1;
  // Contiguous by default; a caller backfilling at a known global offset may
  // pre-set first_line to any value >= the current end (sparse line space).
  const uint64_t next_line =
      blocks_.empty()
          ? 0
          : blocks_.back().first_line + blocks_.back().line_count;
  if (block.first_line < next_line) {
    block.first_line = next_line;
  }
  block.stored_bytes = box_bytes.size();
  block.stored_hash = Fnv1a64(box_bytes);
  StorageEnv* env = storage_env();

  // Step 1+2: block file via tagged tmp + fsync + rename (kill points in
  // between). The ScopedTempFile registers the temp as live, so a concurrent
  // Open in this process (streaming ingest) never sweeps an in-flight write;
  // a kill-point abort leaves the temp behind exactly like a crash would,
  // and the next Open sweeps it (the guard has unregistered by then).
  const std::string path = BlockPath(block.seq);
  const ScopedTempFile block_tmp(path);
  // Each commit-path op retries transient backend failures (a retried torn
  // write simply rewrites the whole temp — the final name is untouched until
  // the rename).
  if (Status s = RetryStorage("commit.write_block",
                              [&] {
                                return env->WriteFile(block_tmp.path(),
                                                      box_bytes);
                              });
      !s.ok()) {
    (void)env->RemoveFile(block_tmp.path());  // never leave a torn temp
    return s;
  }
  // Durability point: the block's bytes are on stable storage before the
  // rename makes them reachable from the manifest.
  if (Status s = RetryStorage(
          "commit.sync_block", [&] { return env->SyncFile(block_tmp.path()); });
      !s.ok()) {
    (void)env->RemoveFile(block_tmp.path());
    return s;
  }
  if (hook && hook(CommitKillPoint::kBlockTmpWritten)) {
    return Internal(std::string("archive: commit aborted at ") +
                    CommitKillPointName(CommitKillPoint::kBlockTmpWritten));
  }
  if (Status s = RetryStorage(
          "commit.rename_block",
          [&] { return env->Rename(block_tmp.path(), path); });
      !s.ok()) {
    (void)env->RemoveFile(block_tmp.path());
    return s;
  }
  if (hook && hook(CommitKillPoint::kBlockRenamed)) {
    return Internal(std::string("archive: commit aborted at ") +
                    CommitKillPointName(CommitKillPoint::kBlockRenamed));
  }

  // Step 3+4: manifest swap. On any failure the in-memory state rolls back;
  // the already-renamed block file becomes an orphan swept at next Open.
  blocks_.push_back(std::move(block));
  const std::string manifest = SerializeManifest();
  const ScopedTempFile manifest_tmp(ManifestPath());
  if (Status s = RetryStorage("commit.write_manifest",
                              [&] {
                                return env->WriteFile(manifest_tmp.path(),
                                                      manifest);
                              });
      !s.ok()) {
    (void)env->RemoveFile(manifest_tmp.path());
    blocks_.pop_back();
    return s;
  }
  if (Status s = RetryStorage(
          "commit.sync_manifest",
          [&] { return env->SyncFile(manifest_tmp.path()); });
      !s.ok()) {
    (void)env->RemoveFile(manifest_tmp.path());
    blocks_.pop_back();
    return s;
  }
  if (hook && hook(CommitKillPoint::kManifestTmpWritten)) {
    blocks_.pop_back();
    return Internal(std::string("archive: commit aborted at ") +
                    CommitKillPointName(CommitKillPoint::kManifestTmpWritten));
  }
  if (Status s = RetryStorage(
          "commit.rename_manifest",
          [&] { return env->Rename(manifest_tmp.path(), ManifestPath()); });
      !s.ok()) {
    blocks_.pop_back();
    return s;
  }
  // Directory-entry durability: both renames survive power loss, not just
  // process death.
  LOGGREP_RETURN_IF_ERROR(
      RetryStorage("commit.sync_dir", [&] { return env->SyncDir(dir_); }));
  return OkStatus();
}

Status LogArchive::CommitTombstonedBlock(BlockInfo block,
                                         QuarantineEntry entry) {
  block.seq = blocks_.empty() ? 0 : blocks_.back().seq + 1;
  const uint64_t next_line =
      blocks_.empty()
          ? 0
          : blocks_.back().first_line + blocks_.back().line_count;
  if (block.first_line < next_line) {
    block.first_line = next_line;
  }
  entry.seq = block.seq;
  entry.tombstoned = true;

  // Sidecar first: Open treats a manifest entry with no block file as
  // corruption *unless* the quarantine explains it, and ReloadQuarantine
  // filters entries whose seq the manifest doesn't know — so sidecar-then-
  // manifest is safe on either side of a crash.
  const QuarantineSet saved_quarantine = quarantine_;
  quarantine_.Add(std::move(entry));
  if (Status s = RetryStorage("commit.write_quarantine",
                              [&] {
                                return SaveQuarantine(dir_, quarantine_,
                                                      storage_env());
                              });
      !s.ok()) {
    quarantine_ = saved_quarantine;
    return s;
  }

  blocks_.push_back(std::move(block));
  if (Status s = RetryStorage("commit.write_manifest",
                              [&] { return WriteManifest(); });
      !s.ok()) {
    blocks_.pop_back();
    quarantine_ = saved_quarantine;
    (void)SaveQuarantine(dir_, quarantine_, storage_env());  // best effort
    return s;
  }
  return OkStatus();
}

// ---------------------------------------------------------------------------
// Degraded queries
// ---------------------------------------------------------------------------

Status LogArchive::RetryStorage(const char* op_name,
                                const std::function<Status()>& op) const {
  if (!options_.retry.enabled()) {
    return op();
  }
  return RetryOp(storage_env(), options_.retry, /*budget=*/nullptr, op_name,
                 options_.metrics, op);
}

Result<std::string> LogArchive::LoadBlockBytes(uint32_t seq,
                                               const RetryBudget* budget) const {
  if (!options_.retry.enabled()) {
    return ReadFileBytes(BlockPath(seq), storage_env());
  }
  return RetryReadFile(storage_env(), options_.retry, budget, BlockPath(seq),
                       options_.metrics);
}

void LogArchive::QuarantineBlock(const BlockInfo& block, const Status& cause) {
  QuarantineEntry entry;
  entry.seq = block.seq;
  entry.code = StatusCodeName(cause.code());
  entry.error = cause.message();
  entry.quarantined_unix = static_cast<uint64_t>(::time(nullptr));
  quarantine_.Add(std::move(entry));
  if (options_.metrics != nullptr) {
    options_.metrics->GetOrCreate("storage.quarantine.added")->Add(1);
  }
  // Best effort: failing to persist the sidecar must not fail the query on
  // top of the block failure — the in-memory set still protects this
  // process, and the next failing query retries the write.
  if (Status s = SaveQuarantine(dir_, quarantine_, storage_env()); !s.ok()) {
    if (options_.metrics != nullptr) {
      options_.metrics->GetOrCreate("storage.quarantine.persist_failures")
          ->Add(1);
    }
  }
}

bool LogArchive::SkipIfQuarantined(const BlockInfo& block,
                                   PartialReport* report) const {
  const QuarantineEntry* entry = quarantine_.Find(block.seq);
  if (entry == nullptr) {
    return false;
  }
  BlockQueryFailure failure;
  failure.seq = block.seq;
  failure.first_line = block.first_line;
  failure.line_count = block.line_count;
  failure.error = entry->code.empty()
                      ? entry->error
                      : entry->code + ": " + entry->error;
  failure.newly_quarantined = false;
  failure.tombstoned = entry->tombstoned;
  report->failures.push_back(std::move(failure));
  return true;
}

bool LogArchive::DegradeOnFailure(const BlockInfo& block, const Status& cause,
                                  PartialReport* report) {
  // A malformed query is the caller's bug, not the block's: never degrade.
  if (!options_.degraded_queries ||
      cause.code() == StatusCode::kInvalidArgument) {
    return false;
  }
  QuarantineBlock(block, cause);
  BlockQueryFailure failure;
  failure.seq = block.seq;
  failure.first_line = block.first_line;
  failure.line_count = block.line_count;
  failure.error = cause.ToString();
  failure.newly_quarantined = true;
  failure.tombstoned = false;
  report->failures.push_back(std::move(failure));
  return true;
}

uint64_t LogArchive::PruneBlocks(const std::vector<std::string>& required,
                                 std::vector<const BlockInfo*>* to_query,
                                 uint32_t* pruned,
                                 QueryExplain* explain) const {
  const TraceSpan span("archive.prune", "query", "blocks", blocks_.size());
  const WallTimer timer;
  for (const BlockInfo& block : blocks_) {
    bool drop = false;
    std::string reason;
    for (const std::string& kw : required) {
      if (!BlockMayContainKeyword(block, kw,
                                  explain != nullptr ? &reason : nullptr)) {
        drop = true;
        break;
      }
    }
    if (explain != nullptr) {
      BlockExplain be;
      be.seq = block.seq;
      be.block_pruned = drop;
      be.prune_reason = std::move(reason);
      explain->blocks.push_back(std::move(be));
    }
    if (drop) {
      ++*pruned;
    } else {
      to_query->push_back(&block);
    }
  }
  return ElapsedNanos(timer);
}

Result<ArchiveQueryResult> LogArchive::Query(std::string_view command) {
  const TraceSpan span("archive.query", "query");
  Result<std::unique_ptr<QueryExpr>> expr = ParseQuery(command);
  if (!expr.ok()) {
    return expr.status();
  }
  const std::vector<std::string> required = RequiredKeywords(**expr);

  ArchiveQueryResult result;
  std::vector<const BlockInfo*> to_query;
  result.locator.prune_nanos =
      PruneBlocks(required, &to_query, &result.blocks_pruned);

  const RetryBudget budget(storage_env(), options_.query_deadline_ns);
  for (const BlockInfo* block : to_query) {
    if (SkipIfQuarantined(*block, &result.partial)) {
      // Strict mode is complete-or-error: a standing hole (even one a repair
      // already tombstoned) makes the answer incomplete, so it must fail
      // rather than silently narrow to the healthy blocks.
      if (!options_.degraded_queries) {
        return Status(StatusCode::kUnavailable,
                      "block " + std::to_string(block->seq) +
                          " is quarantined and degraded queries are "
                          "disabled: " +
                          result.partial.failures.back().error);
      }
      continue;  // standing hole; no retry storm on a known-sick block
    }
    const TraceSpan block_span("archive.query_block", "query", "seq",
                               block->seq);
    // Warm blocks never touch the file: the loader only runs on a box-cache
    // miss (or when the archive runs without a cache).
    auto loader = [this, block, &budget]() -> Result<std::string> {
      return LoadBlockBytes(block->seq, &budget);
    };
    Result<QueryResult> block_result =
        engine_.QueryBox(KeyForBlock(block->seq), loader, command);
    if (!block_result.ok()) {
      if (DegradeOnFailure(*block, block_result.status(), &result.partial)) {
        continue;
      }
      return block_result.status();
    }
    ++result.blocks_queried;
    if (block_result->from_cache) {
      ++result.blocks_from_cache;
    }
    for (auto& [line, text_line] : block_result->hits) {
      result.hits.emplace_back(block->first_line + line, std::move(text_line));
    }
    result.locator.Accumulate(block_result->locator);
  }
  return result;
}

Result<ArchiveQueryResult> LogArchive::Explain(std::string_view command,
                                               QueryExplain* explain) {
  const TraceSpan span("archive.explain", "query");
  explain->command.assign(command.data(), command.size());
  explain->blocks.clear();
  Result<std::unique_ptr<QueryExpr>> expr = ParseQuery(command);
  if (!expr.ok()) {
    return expr.status();
  }
  const std::vector<std::string> required = RequiredKeywords(**expr);

  ArchiveQueryResult result;
  std::vector<const BlockInfo*> to_query;
  result.locator.prune_nanos =
      PruneBlocks(required, &to_query, &result.blocks_pruned, explain);

  // PruneBlocks appended one BlockExplain per block, in blocks_ order; map
  // seq -> slot so each queried block fills its own record.
  std::unordered_map<uint32_t, size_t> slot_of_seq;
  slot_of_seq.reserve(explain->blocks.size());
  for (size_t i = 0; i < explain->blocks.size(); ++i) {
    slot_of_seq.emplace(explain->blocks[i].seq, i);
  }

  const RetryBudget budget(storage_env(), options_.query_deadline_ns);
  for (const BlockInfo* block : to_query) {
    BlockExplain* be = &explain->blocks[slot_of_seq.at(block->seq)];
    if (SkipIfQuarantined(*block, &result.partial)) {
      if (!options_.degraded_queries) {
        return Status(StatusCode::kUnavailable,
                      "block " + std::to_string(block->seq) +
                          " is quarantined and degraded queries are "
                          "disabled: " +
                          result.partial.failures.back().error);
      }
      be->block_failed = true;
      be->failure = result.partial.failures.back().error;
      continue;
    }
    const TraceSpan block_span("archive.query_block", "query", "seq",
                               block->seq);
    auto loader = [this, block, &budget]() -> Result<std::string> {
      return LoadBlockBytes(block->seq, &budget);
    };
    Result<QueryResult> block_result =
        engine_.ExplainBox(KeyForBlock(block->seq), loader, command, be);
    if (!block_result.ok()) {
      if (DegradeOnFailure(*block, block_result.status(), &result.partial)) {
        be->block_failed = true;
        be->failure = result.partial.failures.back().error;
        continue;
      }
      return block_result.status();
    }
    ++result.blocks_queried;
    for (auto& [line, text_line] : block_result->hits) {
      result.hits.emplace_back(block->first_line + line, std::move(text_line));
    }
    result.locator.Accumulate(block_result->locator);
  }
  return result;
}

Result<ArchiveQueryResult> LogArchive::ParallelQuery(std::string_view command,
                                                     size_t num_threads) {
  const TraceSpan span("archive.parallel_query", "query");
  Result<std::unique_ptr<QueryExpr>> expr = ParseQuery(command);
  if (!expr.ok()) {
    return expr.status();
  }
  const std::vector<std::string> required = RequiredKeywords(**expr);

  ArchiveQueryResult result;
  std::vector<const BlockInfo*> to_query;
  result.locator.prune_nanos =
      PruneBlocks(required, &to_query, &result.blocks_pruned);

  // Known-sick blocks are skipped up front (a standing hole each); only
  // healthy blocks are fanned out to workers.
  std::vector<const BlockInfo*> submitted;
  submitted.reserve(to_query.size());
  for (const BlockInfo* block : to_query) {
    if (!SkipIfQuarantined(*block, &result.partial)) {
      submitted.push_back(block);
    }
  }

  struct PerBlock {
    Status status;
    QueryHits hits;
    LocatorStats locator;
  };
  std::vector<PerBlock> slots(submitted.size());
  // One retry budget shared by every worker: the *query* has a deadline, not
  // each block (Expired() is a lock-free read of the env clock).
  const RetryBudget budget(storage_env(), options_.query_deadline_ns);
  {
    ThreadPool pool(num_threads);
    for (size_t i = 0; i < submitted.size(); ++i) {
      const BlockInfo* block = submitted[i];
      PerBlock* slot = &slots[i];
      const std::string command_copy(command);
      const BoxKey key = KeyForBlock(block->seq);
      EngineOptions opts = options_.engine;
      opts.use_cache = false;  // per-task engines share no command cache...
      // ...but they all share the archive's BoxCache: a block decompressed by
      // one worker (or a prior serial query) is warm for every other.
      opts.box_cache = box_cache_.get();
      opts.use_box_cache = box_cache_ != nullptr;
      pool.Submit([this, block, slot, command_copy, key, opts, &budget] {
        // ThreadPool installs the submitting span as parent, so this span
        // nests under archive.parallel_query in the exported trace even
        // though it runs on a worker thread.
        const TraceSpan block_span("archive.query_block", "query", "seq",
                                   block->seq);
        LogGrepEngine engine(opts);
        auto loader = [this, block, &budget]() -> Result<std::string> {
          return LoadBlockBytes(block->seq, &budget);
        };
        Result<QueryResult> r = engine.QueryBox(key, loader, command_copy);
        if (!r.ok()) {
          slot->status = r.status();
          return;
        }
        slot->locator = r->locator;
        for (auto& [line, text] : r->hits) {
          slot->hits.emplace_back(block->first_line + line, std::move(text));
        }
      });
    }
    pool.Wait();
  }
  // Collection runs on the calling thread: quarantine mutation and sidecar
  // persistence stay single-threaded.
  for (size_t i = 0; i < submitted.size(); ++i) {
    PerBlock& slot = slots[i];
    if (!slot.status.ok()) {
      if (DegradeOnFailure(*submitted[i], slot.status, &result.partial)) {
        continue;
      }
      return slot.status;
    }
    ++result.blocks_queried;
    result.hits.insert(result.hits.end(),
                       std::make_move_iterator(slot.hits.begin()),
                       std::make_move_iterator(slot.hits.end()));
    result.locator.Accumulate(slot.locator);
  }
  return result;
}

uint64_t LogArchive::total_lines() const {
  uint64_t n = 0;
  for (const BlockInfo& b : blocks_) {
    n += b.line_count;
  }
  return n;
}

uint64_t LogArchive::total_raw_bytes() const {
  uint64_t n = 0;
  for (const BlockInfo& b : blocks_) {
    n += b.raw_bytes;
  }
  return n;
}

uint64_t LogArchive::total_stored_bytes() const {
  uint64_t n = 0;
  for (const BlockInfo& b : blocks_) {
    n += b.stored_bytes;
  }
  return n;
}

}  // namespace loggrep
