#include "src/store/log_archive.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "src/common/thread_pool.h"
#include "src/parser/template_miner.h"  // SplitLines
#include "src/parser/tokenizer.h"
#include "src/query/query_parser.h"
#include "src/query/wildcard.h"

namespace loggrep {
namespace {

constexpr uint32_t kManifestMagic = 0x4D41474Cu;  // "LGAM"
constexpr size_t kShingleLen = 4;

Result<std::string> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return NotFound("archive: cannot open " + path);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

Status WriteFileBytes(const std::string& path, std::string_view data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Internal("archive: cannot write " + path);
  }
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  if (!out.good()) {
    return Internal("archive: short write to " + path);
  }
  return OkStatus();
}

void AddTokenShingles(const std::string_view token, BloomFilter& bloom) {
  if (token.size() < kShingleLen) {
    return;  // short content is covered by the stamp check instead
  }
  for (size_t i = 0; i + kShingleLen <= token.size(); ++i) {
    bloom.Add(token.substr(i, kShingleLen));
  }
}

// Sound block-level admission test for one literal keyword.
bool BlockMayContainKeyword(const BlockInfo& block, std::string_view keyword) {
  if (HasWildcards(keyword)) {
    return StampAdmitsKeyword(block.token_stamp, keyword);
  }
  if (!block.token_stamp.AdmitsFragment(keyword)) {
    return false;
  }
  if (keyword.size() < kShingleLen || block.shingles.empty()) {
    return true;
  }
  for (size_t i = 0; i + kShingleLen <= keyword.size(); ++i) {
    if (!block.shingles.MayContain(keyword.substr(i, kShingleLen))) {
      return false;
    }
  }
  return true;
}

void CollectRequired(const QueryExpr& expr, std::vector<std::string>* out) {
  switch (expr.kind) {
    case QueryExpr::Kind::kTerm:
      out->insert(out->end(), expr.term.keywords.begin(),
                  expr.term.keywords.end());
      return;
    case QueryExpr::Kind::kAnd: {
      CollectRequired(*expr.left, out);
      CollectRequired(*expr.right, out);
      return;
    }
    case QueryExpr::Kind::kOr: {
      // A keyword is required only when both branches require it.
      std::vector<std::string> l;
      std::vector<std::string> r;
      CollectRequired(*expr.left, &l);
      CollectRequired(*expr.right, &r);
      const std::set<std::string> rset(r.begin(), r.end());
      for (std::string& kw : l) {
        if (rset.count(kw) > 0) {
          out->push_back(std::move(kw));
        }
      }
      return;
    }
    case QueryExpr::Kind::kNot:
      // Only the positive side constrains matching entries.
      if (expr.left != nullptr) {
        CollectRequired(*expr.left, out);
      }
      return;
  }
}

}  // namespace

std::vector<std::string> RequiredKeywords(const QueryExpr& expr) {
  std::vector<std::string> out;
  CollectRequired(expr, &out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string LogArchive::BlockPath(uint32_t seq) const {
  return dir_ + "/block-" + std::to_string(seq) + ".lgc";
}

std::string LogArchive::ManifestPath() const { return dir_ + "/archive.manifest"; }

Result<LogArchive> LogArchive::Create(std::string dir, ArchiveOptions options) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Internal("archive: cannot create directory " + dir);
  }
  LogArchive archive(std::move(dir), options);
  if (std::filesystem::exists(archive.ManifestPath())) {
    return InvalidArgument("archive: manifest already exists; use Open");
  }
  LOGGREP_RETURN_IF_ERROR(archive.WriteManifest());
  return archive;
}

Result<LogArchive> LogArchive::Open(std::string dir, ArchiveOptions options) {
  LogArchive archive(std::move(dir), options);
  Result<std::string> bytes = ReadFileBytes(archive.ManifestPath());
  if (!bytes.ok()) {
    return bytes.status();
  }
  ByteReader in(*bytes);
  Result<uint32_t> magic = in.ReadU32();
  if (!magic.ok()) {
    return magic.status();
  }
  if (*magic != kManifestMagic) {
    return CorruptData("archive: bad manifest magic");
  }
  Result<uint64_t> count = in.ReadVarint();
  if (!count.ok()) {
    return count.status();
  }
  for (uint64_t i = 0; i < *count; ++i) {
    BlockInfo block;
    Result<uint64_t> v = in.ReadVarint();
    if (!v.ok()) {
      return v.status();
    }
    block.seq = static_cast<uint32_t>(*v);
    for (uint64_t* field : {&block.first_line, &block.line_count,
                            &block.raw_bytes, &block.stored_bytes}) {
      Result<uint64_t> value = in.ReadVarint();
      if (!value.ok()) {
        return value.status();
      }
      *field = *value;
    }
    Result<CapsuleStamp> stamp = CapsuleStamp::ReadFrom(in);
    if (!stamp.ok()) {
      return stamp.status();
    }
    block.token_stamp = *stamp;
    Result<BloomFilter> bloom = BloomFilter::ReadFrom(in);
    if (!bloom.ok()) {
      return bloom.status();
    }
    block.shingles = std::move(*bloom);
    archive.blocks_.push_back(std::move(block));
  }
  return archive;
}

Status LogArchive::WriteManifest() const {
  ByteWriter out;
  out.PutU32(kManifestMagic);
  out.PutVarint(blocks_.size());
  for (const BlockInfo& block : blocks_) {
    out.PutVarint(block.seq);
    for (uint64_t field : {block.first_line, block.line_count, block.raw_bytes,
                           block.stored_bytes}) {
      out.PutVarint(field);
    }
    block.token_stamp.WriteTo(out);
    block.shingles.WriteTo(out);
  }
  return WriteFileBytes(ManifestPath(), out.data());
}

Status LogArchive::AppendBlock(std::string_view text) {
  BlockInfo block;
  block.seq =
      blocks_.empty() ? 0 : blocks_.back().seq + 1;
  block.first_line =
      blocks_.empty() ? 0 : blocks_.back().first_line + blocks_.back().line_count;
  block.raw_bytes = text.size();

  // Block-level summary: token stamp + shingle Bloom filter, sized for
  // roughly one shingle per 4 raw bytes.
  block.shingles = BloomFilter(std::max<uint64_t>(1024, text.size() / 4),
                               options_.bloom_bits_per_shingle);
  for (std::string_view line : SplitLines(text)) {
    ++block.line_count;
    for (std::string_view token : TokenizeKeywords(line)) {
      block.token_stamp.Absorb(token);
      AddTokenShingles(token, block.shingles);
    }
  }

  const std::string box = engine_.CompressBlock(text);
  block.stored_bytes = box.size();
  LOGGREP_RETURN_IF_ERROR(WriteFileBytes(BlockPath(block.seq), box));
  blocks_.push_back(std::move(block));
  return WriteManifest();
}

Result<ArchiveQueryResult> LogArchive::Query(std::string_view command) {
  Result<std::unique_ptr<QueryExpr>> expr = ParseQuery(command);
  if (!expr.ok()) {
    return expr.status();
  }
  const std::vector<std::string> required = RequiredKeywords(**expr);

  ArchiveQueryResult result;
  for (const BlockInfo& block : blocks_) {
    bool pruned = false;
    for (const std::string& kw : required) {
      if (!BlockMayContainKeyword(block, kw)) {
        pruned = true;
        break;
      }
    }
    if (pruned) {
      ++result.blocks_pruned;
      continue;
    }
    Result<std::string> box = ReadFileBytes(BlockPath(block.seq));
    if (!box.ok()) {
      return box.status();
    }
    Result<QueryResult> block_result = engine_.Query(*box, command);
    if (!block_result.ok()) {
      return block_result.status();
    }
    ++result.blocks_queried;
    for (auto& [line, text_line] : block_result->hits) {
      result.hits.emplace_back(static_cast<uint32_t>(block.first_line + line),
                               std::move(text_line));
    }
    result.locator.capsules_decompressed +=
        block_result->locator.capsules_decompressed;
    result.locator.capsules_stamp_filtered +=
        block_result->locator.capsules_stamp_filtered;
    result.locator.bytes_decompressed += block_result->locator.bytes_decompressed;
    result.locator.pattern_trivial_hits +=
        block_result->locator.pattern_trivial_hits;
    result.locator.possible_matches += block_result->locator.possible_matches;
  }
  return result;
}

Result<ArchiveQueryResult> LogArchive::ParallelQuery(std::string_view command,
                                                     size_t num_threads) {
  Result<std::unique_ptr<QueryExpr>> expr = ParseQuery(command);
  if (!expr.ok()) {
    return expr.status();
  }
  const std::vector<std::string> required = RequiredKeywords(**expr);

  ArchiveQueryResult result;
  std::vector<const BlockInfo*> to_query;
  for (const BlockInfo& block : blocks_) {
    bool pruned = false;
    for (const std::string& kw : required) {
      if (!BlockMayContainKeyword(block, kw)) {
        pruned = true;
        break;
      }
    }
    if (pruned) {
      ++result.blocks_pruned;
    } else {
      to_query.push_back(&block);
    }
  }

  struct PerBlock {
    Status status;
    QueryHits hits;
    LocatorStats locator;
  };
  std::vector<PerBlock> slots(to_query.size());
  {
    ThreadPool pool(num_threads);
    for (size_t i = 0; i < to_query.size(); ++i) {
      const BlockInfo* block = to_query[i];
      PerBlock* slot = &slots[i];
      const std::string path = BlockPath(block->seq);
      const std::string command_copy(command);
      EngineOptions opts = options_.engine;
      opts.use_cache = false;  // per-task engines share nothing
      pool.Submit([block, slot, path, command_copy, opts] {
        Result<std::string> box = ReadFileBytes(path);
        if (!box.ok()) {
          slot->status = box.status();
          return;
        }
        LogGrepEngine engine(opts);
        Result<QueryResult> r = engine.Query(*box, command_copy);
        if (!r.ok()) {
          slot->status = r.status();
          return;
        }
        slot->locator = r->locator;
        for (auto& [line, text] : r->hits) {
          slot->hits.emplace_back(static_cast<uint32_t>(block->first_line + line),
                                  std::move(text));
        }
      });
    }
    pool.Wait();
  }
  for (PerBlock& slot : slots) {
    if (!slot.status.ok()) {
      return slot.status;
    }
    ++result.blocks_queried;
    result.hits.insert(result.hits.end(),
                       std::make_move_iterator(slot.hits.begin()),
                       std::make_move_iterator(slot.hits.end()));
    result.locator.capsules_decompressed += slot.locator.capsules_decompressed;
    result.locator.capsules_stamp_filtered +=
        slot.locator.capsules_stamp_filtered;
    result.locator.bytes_decompressed += slot.locator.bytes_decompressed;
  }
  return result;
}

uint64_t LogArchive::total_lines() const {
  uint64_t n = 0;
  for (const BlockInfo& b : blocks_) {
    n += b.line_count;
  }
  return n;
}

uint64_t LogArchive::total_raw_bytes() const {
  uint64_t n = 0;
  for (const BlockInfo& b : blocks_) {
    n += b.raw_bytes;
  }
  return n;
}

uint64_t LogArchive::total_stored_bytes() const {
  uint64_t n = 0;
  for (const BlockInfo& b : blocks_) {
    n += b.stored_bytes;
  }
  return n;
}

}  // namespace loggrep
