#include "src/store/log_archive.h"

#include <algorithm>
#include <filesystem>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "src/common/hash.h"
#include "src/common/thread_pool.h"
#include "src/common/timer.h"
#include "src/common/trace.h"
#include "src/parser/template_miner.h"  // SplitLines
#include "src/parser/tokenizer.h"
#include "src/query/query_parser.h"
#include "src/query/wildcard.h"
#include "src/store/fs_util.h"

namespace loggrep {
namespace {

constexpr uint32_t kManifestMagic = 0x4D41474Cu;  // "LGAM"
// v2 adds a version byte plus per-block content / stored-bytes checksums
// (the v1 layout had no version byte at all, so v1 manifests now read as
// corrupt; archives are regenerated from raw logs in that case).
constexpr uint8_t kManifestVersion = 2;
constexpr size_t kShingleLen = 4;
// Line counts / line numbers beyond this are not plausible (they would need
// more than an exabyte of raw log) and would overflow the monotonicity
// arithmetic below; reject them during manifest parsing.
constexpr uint64_t kMaxPlausibleLines = 1ull << 62;

inline uint64_t ElapsedNanos(const WallTimer& timer) {
  return timer.ElapsedNanos();
}

// Engine options for an archive-embedded engine: wire in the shared cache
// (the engine must not own a second, private one).
EngineOptions ArchiveEngineOptions(EngineOptions base, BoxCache* cache) {
  base.box_cache = cache;
  base.use_box_cache = cache != nullptr;
  return base;
}

void AddTokenShingles(const std::string_view token, BloomFilter& bloom) {
  if (token.size() < kShingleLen) {
    return;  // short content is covered by the stamp check instead
  }
  for (size_t i = 0; i + kShingleLen <= token.size(); ++i) {
    bloom.Add(token.substr(i, kShingleLen));
  }
}

// Sound block-level admission test for one literal keyword. When `reason`
// is non-null and the block is rejected, it receives which filter fired
// (for archive-level explain records).
bool BlockMayContainKeyword(const BlockInfo& block, std::string_view keyword,
                            std::string* reason = nullptr) {
  if (HasWildcards(keyword)) {
    if (!StampAdmitsKeyword(block.token_stamp, keyword)) {
      if (reason != nullptr) {
        *reason = "keyword \"" + std::string(keyword) + "\" fails block stamp";
      }
      return false;
    }
    return true;
  }
  if (!block.token_stamp.AdmitsFragment(keyword)) {
    if (reason != nullptr) {
      *reason = "keyword \"" + std::string(keyword) + "\" fails block stamp";
    }
    return false;
  }
  if (keyword.size() < kShingleLen || block.shingles.empty()) {
    return true;
  }
  for (size_t i = 0; i + kShingleLen <= keyword.size(); ++i) {
    if (!block.shingles.MayContain(keyword.substr(i, kShingleLen))) {
      if (reason != nullptr) {
        *reason = "keyword \"" + std::string(keyword) +
                  "\" shingle \"" + std::string(keyword.substr(i, kShingleLen)) +
                  "\" absent from block shingle filter";
      }
      return false;
    }
  }
  return true;
}

void CollectRequired(const QueryExpr& expr, std::vector<std::string>* out) {
  switch (expr.kind) {
    case QueryExpr::Kind::kTerm:
      out->insert(out->end(), expr.term.keywords.begin(),
                  expr.term.keywords.end());
      return;
    case QueryExpr::Kind::kAnd: {
      CollectRequired(*expr.left, out);
      CollectRequired(*expr.right, out);
      return;
    }
    case QueryExpr::Kind::kOr: {
      // A keyword is required only when both branches require it.
      std::vector<std::string> l;
      std::vector<std::string> r;
      CollectRequired(*expr.left, &l);
      CollectRequired(*expr.right, &r);
      const std::set<std::string> rset(r.begin(), r.end());
      for (std::string& kw : l) {
        if (rset.count(kw) > 0) {
          out->push_back(std::move(kw));
        }
      }
      return;
    }
    case QueryExpr::Kind::kNot:
      // Only the positive side constrains matching entries.
      if (expr.left != nullptr) {
        CollectRequired(*expr.left, out);
      }
      return;
  }
}

}  // namespace

std::vector<std::string> RequiredKeywords(const QueryExpr& expr) {
  std::vector<std::string> out;
  CollectRequired(expr, &out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

const char* CommitKillPointName(CommitKillPoint point) {
  switch (point) {
    case CommitKillPoint::kBlockTmpWritten:
      return "block-tmp-written";
    case CommitKillPoint::kBlockRenamed:
      return "block-renamed";
    case CommitKillPoint::kManifestTmpWritten:
      return "manifest-tmp-written";
  }
  return "unknown";
}

uint64_t HashBlockContent(std::string_view text) {
  uint64_t h = 0xCBF29CE484222325ULL;  // FNV-1a offset basis
  for (std::string_view line : SplitLines(text)) {
    h = Fnv1a64(line, h);
    h = Fnv1a64("\n", h);
  }
  return h;
}

BlockInfo BuildBlockSummary(std::string_view text,
                            uint32_t bloom_bits_per_shingle) {
  BlockInfo block;
  block.raw_bytes = text.size();
  // Block-level summary: token stamp + shingle Bloom filter, sized for
  // roughly one shingle per 4 raw bytes.
  block.shingles = BloomFilter(std::max<uint64_t>(1024, text.size() / 4),
                               bloom_bits_per_shingle);
  uint64_t h = 0xCBF29CE484222325ULL;
  for (std::string_view line : SplitLines(text)) {
    ++block.line_count;
    h = Fnv1a64(line, h);
    h = Fnv1a64("\n", h);
    for (std::string_view token : TokenizeKeywords(line)) {
      block.token_stamp.Absorb(token);
      AddTokenShingles(token, block.shingles);
    }
  }
  block.content_hash = h;
  return block;
}

LogArchive::LogArchive(std::string dir, ArchiveOptions options)
    : dir_(std::move(dir)),
      options_(options),
      cache_namespace_(BoxKey::NextNamespaceId()),
      box_cache_(options.box_cache_budget_bytes > 0
                     ? std::make_shared<BoxCache>(BoxCacheOptions{
                           options.box_cache_budget_bytes, /*shards=*/8,
                           options.metrics})
                     : nullptr),
      engine_(ArchiveEngineOptions(options_.engine, box_cache_.get())) {}

BoxKey LogArchive::KeyForBlock(uint32_t seq) const {
  return BoxKey::ForSequence(cache_namespace_, seq);
}

std::string LogArchive::BlockPath(uint32_t seq) const {
  return dir_ + "/block-" + std::to_string(seq) + ".lgc";
}

std::string LogArchive::ManifestPath() const { return dir_ + "/archive.manifest"; }

Result<LogArchive> LogArchive::Create(std::string dir, ArchiveOptions options) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Internal("archive: cannot create directory " + dir);
  }
  LogArchive archive(std::move(dir), options);
  if (std::filesystem::exists(archive.ManifestPath())) {
    return InvalidArgument("archive: manifest already exists; use Open");
  }
  LOGGREP_RETURN_IF_ERROR(archive.WriteManifest());
  return archive;
}

Result<std::vector<BlockInfo>> ParseManifestBytes(std::string_view bytes) {
  ByteReader in(bytes);
  Result<uint32_t> magic = in.ReadU32();
  if (!magic.ok()) {
    return magic.status();
  }
  if (*magic != kManifestMagic) {
    return CorruptData("archive: bad manifest magic");
  }
  Result<uint8_t> version = in.ReadU8();
  if (!version.ok()) {
    return version.status();
  }
  if (*version != kManifestVersion) {
    return CorruptData("archive: unsupported manifest version");
  }
  Result<uint64_t> count = in.ReadVarint();
  if (!count.ok()) {
    return count.status();
  }
  // Every block entry costs well over one stream byte; a declared count
  // beyond the remaining bytes is hostile, reject before any allocation.
  if (*count > in.remaining()) {
    return CorruptData("archive: block count exceeds manifest size");
  }
  std::vector<BlockInfo> blocks;
  blocks.reserve(static_cast<size_t>(*count));
  for (uint64_t i = 0; i < *count; ++i) {
    BlockInfo block;
    Result<uint64_t> v = in.ReadVarint();
    if (!v.ok()) {
      return v.status();
    }
    if (*v > UINT32_MAX) {
      return CorruptData("archive: block seq out of range");
    }
    block.seq = static_cast<uint32_t>(*v);
    for (uint64_t* field : {&block.first_line, &block.line_count,
                            &block.raw_bytes, &block.stored_bytes}) {
      Result<uint64_t> value = in.ReadVarint();
      if (!value.ok()) {
        return value.status();
      }
      *field = *value;
    }
    for (uint64_t* hash : {&block.content_hash, &block.stored_hash}) {
      Result<uint64_t> value = in.ReadU64();
      if (!value.ok()) {
        return value.status();
      }
      *hash = *value;
    }
    Result<CapsuleStamp> stamp = CapsuleStamp::ReadFrom(in);
    if (!stamp.ok()) {
      return stamp.status();
    }
    block.token_stamp = *stamp;
    Result<BloomFilter> bloom = BloomFilter::ReadFrom(in);
    if (!bloom.ok()) {
      return bloom.status();
    }
    block.shingles = std::move(*bloom);
    // Structural coherence: seq strictly increasing, line space monotonic
    // and small enough that the arithmetic below cannot overflow.
    if (block.first_line > kMaxPlausibleLines ||
        block.line_count > kMaxPlausibleLines) {
      return CorruptData("archive: implausible line numbers in manifest");
    }
    if (!blocks.empty()) {
      const BlockInfo& prev = blocks.back();
      if (block.seq <= prev.seq) {
        return CorruptData("archive: block seqs not strictly increasing");
      }
      if (block.first_line < prev.first_line + prev.line_count) {
        return CorruptData("archive: block line ranges overlap");
      }
    }
    blocks.push_back(std::move(block));
  }
  if (in.remaining() != 0) {
    return CorruptData("archive: trailing garbage after manifest");
  }
  return blocks;
}

Result<LogArchive> LogArchive::Open(std::string dir, ArchiveOptions options) {
  LogArchive archive(std::move(dir), options);
  Result<std::string> bytes = ReadFileBytes(archive.ManifestPath());
  if (!bytes.ok()) {
    return bytes.status();
  }
  Result<std::vector<BlockInfo>> blocks = ParseManifestBytes(*bytes);
  if (!blocks.ok()) {
    return blocks.status();
  }
  archive.blocks_ = std::move(*blocks);

  // Crash recovery. A commit that died after the manifest tmp write but
  // before the rename leaves the *old* manifest in place — nothing to do
  // beyond sweeping. A manifest that somehow references a block whose file
  // never survived (e.g. manual tampering, partial restore) is repaired by
  // dropping trailing entries; an interior hole is real corruption.
  size_t dropped = 0;
  while (!archive.blocks_.empty() &&
         !std::filesystem::exists(
             archive.BlockPath(archive.blocks_.back().seq))) {
    archive.blocks_.pop_back();
    ++dropped;
  }
  for (const BlockInfo& block : archive.blocks_) {
    if (!std::filesystem::exists(archive.BlockPath(block.seq))) {
      return CorruptData("archive: interior block file missing: " +
                         archive.BlockPath(block.seq));
    }
  }
  if (dropped > 0) {
    LOGGREP_RETURN_IF_ERROR(archive.WriteManifest());
  }
  SweepTempFiles(archive.dir_);
  archive.SweepUnreferencedBlocks();
  return archive;
}

std::string LogArchive::SerializeManifest() const {
  ByteWriter out;
  out.PutU32(kManifestMagic);
  out.PutU8(kManifestVersion);
  out.PutVarint(blocks_.size());
  for (const BlockInfo& block : blocks_) {
    out.PutVarint(block.seq);
    for (uint64_t field : {block.first_line, block.line_count, block.raw_bytes,
                           block.stored_bytes}) {
      out.PutVarint(field);
    }
    out.PutU64(block.content_hash);
    out.PutU64(block.stored_hash);
    block.token_stamp.WriteTo(out);
    block.shingles.WriteTo(out);
  }
  return std::string(out.data());
}

Status LogArchive::WriteManifest() const {
  return WriteFileAtomic(ManifestPath(), SerializeManifest());
}

void LogArchive::SweepUnreferencedBlocks() const {
  std::unordered_set<uint32_t> live;
  live.reserve(blocks_.size());
  for (const BlockInfo& block : blocks_) {
    live.insert(block.seq);
  }
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file()) {
      continue;
    }
    const std::string name = entry.path().filename().string();
    constexpr std::string_view kPrefix = "block-";
    constexpr std::string_view kSuffix = ".lgc";
    if (name.size() <= kPrefix.size() + kSuffix.size() ||
        name.compare(0, kPrefix.size(), kPrefix) != 0 ||
        name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
            0) {
      continue;
    }
    const std::string digits =
        name.substr(kPrefix.size(), name.size() - kPrefix.size() - kSuffix.size());
    // `digits` must parse as a uint32 without throwing: cap the digit count
    // (std::stoul aborts the process via std::out_of_range on e.g. a
    // 40-digit filename someone drops into the directory).
    if (digits.empty() || digits.size() > 10 ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    const uint64_t parsed = std::stoull(digits);  // <= 10 digits: no throw
    if (parsed > UINT32_MAX) {
      continue;  // not a live seq; leave the stray file alone
    }
    const uint32_t seq = static_cast<uint32_t>(parsed);
    if (live.count(seq) == 0) {
      std::error_code rm_ec;
      std::filesystem::remove(entry.path(), rm_ec);
    }
  }
}

Status LogArchive::AppendBlock(std::string_view text) {
  BlockInfo block = BuildBlockSummary(text, options_.bloom_bits_per_shingle);
  const std::string box = engine_.CompressBlock(text);
  return CommitCompressedBlock(box, std::move(block), nullptr);
}

Status LogArchive::CommitCompressedBlock(std::string_view box_bytes,
                                         BlockInfo block,
                                         const CommitHook& hook) {
  block.seq = blocks_.empty() ? 0 : blocks_.back().seq + 1;
  // Contiguous by default; a caller backfilling at a known global offset may
  // pre-set first_line to any value >= the current end (sparse line space).
  const uint64_t next_line =
      blocks_.empty()
          ? 0
          : blocks_.back().first_line + blocks_.back().line_count;
  if (block.first_line < next_line) {
    block.first_line = next_line;
  }
  block.stored_bytes = box_bytes.size();
  block.stored_hash = Fnv1a64(box_bytes);

  // Step 1+2: block file via tmp + rename (kill points in between).
  const std::string path = BlockPath(block.seq);
  const std::string block_tmp = path + ".tmp";
  LOGGREP_RETURN_IF_ERROR(WriteFileBytes(block_tmp, box_bytes));
  if (hook && hook(CommitKillPoint::kBlockTmpWritten)) {
    return Internal(std::string("archive: commit aborted at ") +
                    CommitKillPointName(CommitKillPoint::kBlockTmpWritten));
  }
  std::error_code ec;
  std::filesystem::rename(block_tmp, path, ec);
  if (ec) {
    return Internal("archive: cannot rename " + block_tmp + " -> " + path);
  }
  if (hook && hook(CommitKillPoint::kBlockRenamed)) {
    return Internal(std::string("archive: commit aborted at ") +
                    CommitKillPointName(CommitKillPoint::kBlockRenamed));
  }

  // Step 3+4: manifest swap. On any failure the in-memory state rolls back;
  // the already-renamed block file becomes an orphan swept at next Open.
  blocks_.push_back(std::move(block));
  const std::string manifest = SerializeManifest();
  const std::string manifest_tmp = ManifestPath() + ".tmp";
  if (Status s = WriteFileBytes(manifest_tmp, manifest); !s.ok()) {
    blocks_.pop_back();
    return s;
  }
  if (hook && hook(CommitKillPoint::kManifestTmpWritten)) {
    blocks_.pop_back();
    return Internal(std::string("archive: commit aborted at ") +
                    CommitKillPointName(CommitKillPoint::kManifestTmpWritten));
  }
  std::filesystem::rename(manifest_tmp, ManifestPath(), ec);
  if (ec) {
    blocks_.pop_back();
    return Internal("archive: cannot rename " + manifest_tmp + " -> " +
                    ManifestPath());
  }
  return OkStatus();
}

uint64_t LogArchive::PruneBlocks(const std::vector<std::string>& required,
                                 std::vector<const BlockInfo*>* to_query,
                                 uint32_t* pruned,
                                 QueryExplain* explain) const {
  const TraceSpan span("archive.prune", "query", "blocks", blocks_.size());
  const WallTimer timer;
  for (const BlockInfo& block : blocks_) {
    bool drop = false;
    std::string reason;
    for (const std::string& kw : required) {
      if (!BlockMayContainKeyword(block, kw,
                                  explain != nullptr ? &reason : nullptr)) {
        drop = true;
        break;
      }
    }
    if (explain != nullptr) {
      BlockExplain be;
      be.seq = block.seq;
      be.block_pruned = drop;
      be.prune_reason = std::move(reason);
      explain->blocks.push_back(std::move(be));
    }
    if (drop) {
      ++*pruned;
    } else {
      to_query->push_back(&block);
    }
  }
  return ElapsedNanos(timer);
}

Result<ArchiveQueryResult> LogArchive::Query(std::string_view command) {
  const TraceSpan span("archive.query", "query");
  Result<std::unique_ptr<QueryExpr>> expr = ParseQuery(command);
  if (!expr.ok()) {
    return expr.status();
  }
  const std::vector<std::string> required = RequiredKeywords(**expr);

  ArchiveQueryResult result;
  std::vector<const BlockInfo*> to_query;
  result.locator.prune_nanos =
      PruneBlocks(required, &to_query, &result.blocks_pruned);

  for (const BlockInfo* block : to_query) {
    const TraceSpan block_span("archive.query_block", "query", "seq",
                               block->seq);
    // Warm blocks never touch the file: the loader only runs on a box-cache
    // miss (or when the archive runs without a cache).
    const std::string path = BlockPath(block->seq);
    auto loader = [&path]() -> Result<std::string> {
      return ReadFileBytes(path);
    };
    Result<QueryResult> block_result =
        engine_.QueryBox(KeyForBlock(block->seq), loader, command);
    if (!block_result.ok()) {
      return block_result.status();
    }
    ++result.blocks_queried;
    for (auto& [line, text_line] : block_result->hits) {
      result.hits.emplace_back(block->first_line + line, std::move(text_line));
    }
    result.locator.Accumulate(block_result->locator);
  }
  return result;
}

Result<ArchiveQueryResult> LogArchive::Explain(std::string_view command,
                                               QueryExplain* explain) {
  const TraceSpan span("archive.explain", "query");
  explain->command.assign(command.data(), command.size());
  explain->blocks.clear();
  Result<std::unique_ptr<QueryExpr>> expr = ParseQuery(command);
  if (!expr.ok()) {
    return expr.status();
  }
  const std::vector<std::string> required = RequiredKeywords(**expr);

  ArchiveQueryResult result;
  std::vector<const BlockInfo*> to_query;
  result.locator.prune_nanos =
      PruneBlocks(required, &to_query, &result.blocks_pruned, explain);

  // PruneBlocks appended one BlockExplain per block, in blocks_ order; map
  // seq -> slot so each queried block fills its own record.
  std::unordered_map<uint32_t, size_t> slot_of_seq;
  slot_of_seq.reserve(explain->blocks.size());
  for (size_t i = 0; i < explain->blocks.size(); ++i) {
    slot_of_seq.emplace(explain->blocks[i].seq, i);
  }

  for (const BlockInfo* block : to_query) {
    const TraceSpan block_span("archive.query_block", "query", "seq",
                               block->seq);
    const std::string path = BlockPath(block->seq);
    auto loader = [&path]() -> Result<std::string> {
      return ReadFileBytes(path);
    };
    BlockExplain* be = &explain->blocks[slot_of_seq.at(block->seq)];
    Result<QueryResult> block_result =
        engine_.ExplainBox(KeyForBlock(block->seq), loader, command, be);
    if (!block_result.ok()) {
      return block_result.status();
    }
    ++result.blocks_queried;
    for (auto& [line, text_line] : block_result->hits) {
      result.hits.emplace_back(block->first_line + line, std::move(text_line));
    }
    result.locator.Accumulate(block_result->locator);
  }
  return result;
}

Result<ArchiveQueryResult> LogArchive::ParallelQuery(std::string_view command,
                                                     size_t num_threads) {
  const TraceSpan span("archive.parallel_query", "query");
  Result<std::unique_ptr<QueryExpr>> expr = ParseQuery(command);
  if (!expr.ok()) {
    return expr.status();
  }
  const std::vector<std::string> required = RequiredKeywords(**expr);

  ArchiveQueryResult result;
  std::vector<const BlockInfo*> to_query;
  result.locator.prune_nanos =
      PruneBlocks(required, &to_query, &result.blocks_pruned);

  struct PerBlock {
    Status status;
    QueryHits hits;
    LocatorStats locator;
  };
  std::vector<PerBlock> slots(to_query.size());
  {
    ThreadPool pool(num_threads);
    for (size_t i = 0; i < to_query.size(); ++i) {
      const BlockInfo* block = to_query[i];
      PerBlock* slot = &slots[i];
      const std::string path = BlockPath(block->seq);
      const std::string command_copy(command);
      const BoxKey key = KeyForBlock(block->seq);
      EngineOptions opts = options_.engine;
      opts.use_cache = false;  // per-task engines share no command cache...
      // ...but they all share the archive's BoxCache: a block decompressed by
      // one worker (or a prior serial query) is warm for every other.
      opts.box_cache = box_cache_.get();
      opts.use_box_cache = box_cache_ != nullptr;
      pool.Submit([block, slot, path, command_copy, key, opts] {
        // ThreadPool installs the submitting span as parent, so this span
        // nests under archive.parallel_query in the exported trace even
        // though it runs on a worker thread.
        const TraceSpan block_span("archive.query_block", "query", "seq",
                                   block->seq);
        LogGrepEngine engine(opts);
        auto loader = [&path]() -> Result<std::string> {
          return ReadFileBytes(path);
        };
        Result<QueryResult> r = engine.QueryBox(key, loader, command_copy);
        if (!r.ok()) {
          slot->status = r.status();
          return;
        }
        slot->locator = r->locator;
        for (auto& [line, text] : r->hits) {
          slot->hits.emplace_back(block->first_line + line, std::move(text));
        }
      });
    }
    pool.Wait();
  }
  for (PerBlock& slot : slots) {
    if (!slot.status.ok()) {
      return slot.status;
    }
    ++result.blocks_queried;
    result.hits.insert(result.hits.end(),
                       std::make_move_iterator(slot.hits.begin()),
                       std::make_move_iterator(slot.hits.end()));
    result.locator.Accumulate(slot.locator);
  }
  return result;
}

uint64_t LogArchive::total_lines() const {
  uint64_t n = 0;
  for (const BlockInfo& b : blocks_) {
    n += b.line_count;
  }
  return n;
}

uint64_t LogArchive::total_raw_bytes() const {
  uint64_t n = 0;
  for (const BlockInfo& b : blocks_) {
    n += b.raw_bytes;
  }
  return n;
}

uint64_t LogArchive::total_stored_bytes() const {
  uint64_t n = 0;
  for (const BlockInfo& b : blocks_) {
    n += b.stored_bytes;
  }
  return n;
}

}  // namespace loggrep
