// RetryPolicy: bounded, jittered retries for StorageEnv operations.
//
// Cloud back-ends fail transiently all the time; the correct response is a
// capped number of re-attempts with exponential backoff and *decorrelated
// jitter* (each sleep is uniform in [base, 3 * previous], capped), which
// avoids the synchronized thundering herds plain exponential backoff causes
// across many workers. Two ceilings bound every retried operation:
//
//   * a per-op attempt cap (RetryPolicy::max_attempts), and
//   * an optional per-query deadline budget (RetryBudget) shared by every
//     storage operation a single query issues — a query never burns more
//     than its budget waiting on a sick backend, no matter how many blocks
//     it touches.
//
// Only kUnavailable and kIOError are retried. kNotFound and
// kPermissionDenied are deterministic answers (retrying cannot change them),
// and kCorruptData means the bytes arrived fine but are bad — retrying reads
// the same bad bytes again.
//
// All sleeping and clock reads go through the StorageEnv, so tests with a
// FaultInjectingStorageEnv virtual clock exercise backoff and deadlines in
// zero wall time. Outcomes are mirrored to "storage.retry.*" metrics.
#ifndef SRC_STORE_RETRY_H_
#define SRC_STORE_RETRY_H_

#include <cstdint>
#include <functional>
#include <string>

#include "src/common/metrics.h"
#include "src/store/storage_env.h"

namespace loggrep {

struct RetryPolicy {
  // Total tries per operation (1 = no retries).
  uint32_t max_attempts = 4;
  // First backoff; subsequent sleeps are decorrelated-jittered exponential.
  uint64_t initial_backoff_ns = 1'000'000;  // 1 ms
  uint64_t max_backoff_ns = 64'000'000;     // 64 ms
  // Jitter stream seed (deterministic given the same call sequence).
  uint64_t seed = 0x5EEDBACCull;

  bool enabled() const { return max_attempts > 1; }
};

// True for codes a later attempt may not see again (kUnavailable, kIOError).
bool RetryableStatus(StatusCode code);

// A per-query wall-budget for retrying. Copyable-by-pointer into worker
// threads; Expired() is a read of the env clock against a fixed deadline.
class RetryBudget {
 public:
  // budget_ns == 0 means "no deadline".
  RetryBudget(StorageEnv* env, uint64_t budget_ns)
      : env_(EnvOrDefault(env)),
        deadline_ns_(budget_ns == 0 ? 0 : env_->NowNanos() + budget_ns) {}

  bool unlimited() const { return deadline_ns_ == 0; }
  bool Expired() const {
    return deadline_ns_ != 0 && env_->NowNanos() >= deadline_ns_;
  }
  // Nanoseconds left (UINT64_MAX when unlimited).
  uint64_t RemainingNanos() const;

 private:
  StorageEnv* env_;
  uint64_t deadline_ns_;
};

// Runs `op` under `policy`: retries retryable failures with backoff until
// success, a non-retryable code, the attempt cap, or budget exhaustion
// (`budget` may be null). `op_name` labels trace spans and error messages;
// `metrics` (may be null) receives the "storage.retry.*" counters.
Status RetryOp(StorageEnv* env, const RetryPolicy& policy,
               const RetryBudget* budget, const char* op_name,
               MetricsRegistry* metrics, const std::function<Status()>& op);

// Retrying whole-file read through the env. The common query-path citizen.
Result<std::string> RetryReadFile(StorageEnv* env, const RetryPolicy& policy,
                                  const RetryBudget* budget,
                                  const std::string& path,
                                  MetricsRegistry* metrics);

}  // namespace loggrep

#endif  // SRC_STORE_RETRY_H_
