#include "src/store/compaction.h"

#include <algorithm>
#include <atomic>
#include <unistd.h>

#include "src/common/hash.h"
#include "src/store/fs_util.h"

namespace loggrep {

namespace {

constexpr std::string_view kStagingPrefix = "compacting-";

std::string JoinPath(const std::string& dir, const std::string& name) {
  if (dir.empty() || dir.back() == '/') {
    return dir + name;
  }
  return dir + "/" + name;
}

}  // namespace

std::string CompactionStagingDirName() {
  static std::atomic<uint64_t> nonce{0};
  return std::string(kStagingPrefix) + std::to_string(::getpid()) + "-" +
         std::to_string(nonce.fetch_add(1, std::memory_order_relaxed));
}

bool LooksLikeCompactionStagingDir(std::string_view name) {
  return name.size() > kStagingPrefix.size() &&
         name.substr(0, kStagingPrefix.size()) == kStagingPrefix;
}

Result<MergedShardBuild> BuildMergedShard(const std::string& set_root,
                                          const std::string& staging_dir,
                                          const std::vector<ShardInfo>& sources,
                                          const ArchiveOptions& options) {
  if (sources.empty()) {
    return InvalidArgument("compaction: empty source run");
  }
  // The builder only commits blocks — no queries, so no cache; and copied
  // bytes are hash-verified here, so the commit path's own retry policy is
  // all the resilience it needs.
  ArchiveOptions build_options = options;
  build_options.box_cache_budget_bytes = 0;

  const uint64_t merged_base = sources.front().line_base;
  Result<LogArchive> merged =
      LogArchive::Create(JoinPath(set_root, staging_dir), build_options);
  if (!merged.ok()) {
    return Status(merged.status().code(), "compaction: create staging dir: " +
                                              merged.status().message());
  }

  MergedShardBuild build;
  for (const ShardInfo& src : sources) {
    if (src.line_base < merged_base) {
      return Internal("compaction: sources not in line_base order");
    }
    Result<LogArchive> source =
        LogArchive::Open(JoinPath(set_root, src.dir_name), build_options);
    if (!source.ok()) {
      return Status(source.status().code(),
                    "compaction: open source shard " + std::to_string(src.id) +
                        ": " + source.status().message());
    }
    const uint64_t rebase = src.line_base - merged_base;
    for (const BlockInfo& block : source->blocks()) {
      BlockInfo carried = block;  // content/stored hash, stamp, shingles
      carried.first_line = rebase + block.first_line;
      const QuarantineEntry* q = source->quarantine().Find(block.seq);
      if (q != nullptr) {
        if (!q->tombstoned) {
          // The planner excludes shards with unrepaired holes; reaching one
          // means the plan went stale under us. Abort — repair may yet
          // reinstate the block's bytes, and a merge would freeze the hole.
          return Internal("compaction: source shard " +
                          std::to_string(src.id) + " block " +
                          std::to_string(block.seq) +
                          " is quarantined but not tombstoned");
        }
        if (Status s = merged->CommitTombstonedBlock(carried, *q); !s.ok()) {
          return Status(s.code(), "compaction: carry tombstone (shard " +
                                      std::to_string(src.id) + " block " +
                                      std::to_string(block.seq) +
                                      "): " + s.message());
        }
        ++build.tombstones_carried;
        continue;
      }
      Result<std::string> bytes = ReadFileBytes(
          JoinPath(JoinPath(set_root, src.dir_name),
                   LogArchive::BlockFileName(block.seq)),
          build_options.env);
      if (!bytes.ok()) {
        return Status(bytes.status().code(),
                      "compaction: read source block (shard " +
                          std::to_string(src.id) + " block " +
                          std::to_string(block.seq) +
                          "): " + bytes.status().message());
      }
      if (Fnv1a64(*bytes) != block.stored_hash) {
        return CorruptData("compaction: source shard " +
                           std::to_string(src.id) + " block " +
                           std::to_string(block.seq) +
                           " bytes do not match their stored_hash");
      }
      if (Status s = merged->CommitCompressedBlock(*bytes, carried); !s.ok()) {
        return Status(s.code(), "compaction: commit block (shard " +
                                    std::to_string(src.id) + " block " +
                                    std::to_string(block.seq) +
                                    "): " + s.message());
      }
      ++build.blocks_copied;
    }
    build.min_ts_ns = std::min(build.min_ts_ns, src.min_ts_ns);
    build.max_ts_ns = std::max(build.max_ts_ns, src.max_ts_ns);
  }
  build.lines = merged->total_lines();
  build.raw_bytes = merged->total_raw_bytes();
  build.stored_bytes = merged->total_stored_bytes();
  return build;
}

std::string SetCompactionReport::Summary() const {
  if (!fatal.ok()) {
    return "compaction failed: " + fatal.ToString();
  }
  std::string out = "compacted " + std::to_string(shards_merged) +
                    " shard(s) into " + std::to_string(merges_committed) +
                    " (planned " + std::to_string(runs_planned) +
                    " run(s), removed " + std::to_string(dirs_removed) +
                    " dir(s)";
  if (runs_aborted != 0) {
    out += ", aborted " + std::to_string(runs_aborted);
  }
  if (skipped_quarantined != 0) {
    out += ", skipped " + std::to_string(skipped_quarantined) + " quarantined";
  }
  out += ")";
  return out;
}

}  // namespace loggrep
