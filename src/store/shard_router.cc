#include "src/store/shard_router.h"

#include <cstdio>

namespace loggrep {

namespace {

constexpr size_t kMaxTenantComponent = 48;

bool IsTenantSafe(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == '-';
}

}  // namespace

std::string SanitizeTenant(std::string_view tenant) {
  if (tenant.empty()) {
    return "default";
  }
  std::string out;
  out.reserve(tenant.size() < kMaxTenantComponent ? tenant.size()
                                                  : kMaxTenantComponent);
  for (char c : tenant) {
    if (out.size() >= kMaxTenantComponent) {
      break;
    }
    out.push_back(IsTenantSafe(c) ? c : '_');
  }
  return out;
}

std::string ShardDirName(uint64_t id, std::string_view tenant) {
  char prefix[32];
  std::snprintf(prefix, sizeof(prefix), "shard-%06llu-",
                static_cast<unsigned long long>(id));
  return std::string(prefix) + SanitizeTenant(tenant);
}

bool LooksLikeShardDir(std::string_view name) {
  constexpr std::string_view kPrefix = "shard-";
  if (name.size() <= kPrefix.size() ||
      name.substr(0, kPrefix.size()) != kPrefix) {
    return false;
  }
  // At least one digit must follow the prefix.
  char c = name[kPrefix.size()];
  return c >= '0' && c <= '9';
}

uint64_t WindowStartFor(uint64_t ts_ns, uint64_t span_ns) {
  if (span_ns == 0) {
    return 0;
  }
  return ts_ns - ts_ns % span_ns;
}

const char* RollReasonName(RollReason reason) {
  switch (reason) {
    case RollReason::kNone:
      return "none";
    case RollReason::kNoActive:
      return "no-active-shard";
    case RollReason::kWindowMoved:
      return "window-moved";
    case RollReason::kSizeCut:
      return "size-cut";
    case RollReason::kLineSpanFull:
      return "line-span-full";
  }
  return "unknown";
}

RollReason DecideRoll(const ShardInfo* active, uint64_t ts_ns,
                      uint64_t append_lines, uint64_t span_ns,
                      uint64_t max_shard_bytes, uint64_t line_span) {
  if (active == nullptr || active->sealed || active->expired) {
    return RollReason::kNoActive;
  }
  if (span_ns != 0) {
    uint64_t window = WindowStartFor(ts_ns, span_ns);
    if (window != active->window_start_ns) {
      return RollReason::kWindowMoved;
    }
  }
  if (max_shard_bytes != 0 && active->raw_bytes >= max_shard_bytes) {
    return RollReason::kSizeCut;
  }
  if (active->lines + append_lines > line_span) {
    return RollReason::kLineSpanFull;
  }
  return RollReason::kNone;
}

std::string ShardPruneReason(const ShardInfo& shard,
                             const SetQueryPredicate& pred) {
  if (pred.tenant.has_value() && *pred.tenant != shard.tenant) {
    return "tenant '" + shard.tenant + "' != predicate tenant '" +
           *pred.tenant + "'";
  }
  if (shard.sealed && shard.empty()) {
    return "sealed empty shard";
  }
  if (pred.constrains_time() && shard.sealed && !shard.empty()) {
    // Inclusive-range overlap test against the conservative event range.
    if (shard.max_ts_ns < pred.from_ns) {
      return "ts range [" + std::to_string(shard.min_ts_ns) + "," +
             std::to_string(shard.max_ts_ns) + "] ends before from=" +
             std::to_string(pred.from_ns);
    }
    if (shard.min_ts_ns > pred.to_ns) {
      return "ts range [" + std::to_string(shard.min_ts_ns) + "," +
             std::to_string(shard.max_ts_ns) + "] starts after to=" +
             std::to_string(pred.to_ns);
    }
  }
  return "";
}

}  // namespace loggrep
