#include "src/store/shard_router.h"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace loggrep {

namespace {

constexpr size_t kMaxTenantComponent = 48;

bool IsTenantSafe(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == '-';
}

}  // namespace

std::string SanitizeTenant(std::string_view tenant) {
  if (tenant.empty()) {
    return "default";
  }
  std::string out;
  out.reserve(tenant.size() < kMaxTenantComponent ? tenant.size()
                                                  : kMaxTenantComponent);
  for (char c : tenant) {
    if (out.size() >= kMaxTenantComponent) {
      break;
    }
    out.push_back(IsTenantSafe(c) ? c : '_');
  }
  return out;
}

std::string ShardDirName(uint64_t id, std::string_view tenant) {
  char prefix[32];
  std::snprintf(prefix, sizeof(prefix), "shard-%06llu-",
                static_cast<unsigned long long>(id));
  return std::string(prefix) + SanitizeTenant(tenant);
}

bool LooksLikeShardDir(std::string_view name) {
  constexpr std::string_view kPrefix = "shard-";
  if (name.size() <= kPrefix.size() ||
      name.substr(0, kPrefix.size()) != kPrefix) {
    return false;
  }
  // At least one digit must follow the prefix.
  char c = name[kPrefix.size()];
  return c >= '0' && c <= '9';
}

uint64_t WindowStartFor(uint64_t ts_ns, uint64_t span_ns) {
  if (span_ns == 0) {
    return 0;
  }
  return ts_ns - ts_ns % span_ns;
}

const char* RollReasonName(RollReason reason) {
  switch (reason) {
    case RollReason::kNone:
      return "none";
    case RollReason::kNoActive:
      return "no-active-shard";
    case RollReason::kWindowMoved:
      return "window-moved";
    case RollReason::kSizeCut:
      return "size-cut";
    case RollReason::kLineSpanFull:
      return "line-span-full";
  }
  return "unknown";
}

RollReason DecideRoll(const ShardInfo* active, uint64_t ts_ns,
                      uint64_t append_lines, uint64_t span_ns,
                      uint64_t max_shard_bytes, uint64_t line_span) {
  if (active == nullptr || active->sealed || active->expired) {
    return RollReason::kNoActive;
  }
  if (span_ns != 0) {
    uint64_t window = WindowStartFor(ts_ns, span_ns);
    if (window != active->window_start_ns) {
      return RollReason::kWindowMoved;
    }
  }
  if (max_shard_bytes != 0 && active->raw_bytes >= max_shard_bytes) {
    return RollReason::kSizeCut;
  }
  if (active->lines + append_lines > line_span) {
    return RollReason::kLineSpanFull;
  }
  return RollReason::kNone;
}

namespace {

// Policy gates that look at one shard in isolation (run-shape gates —
// adjacency, run length, run bytes — live in PlanCompaction itself).
bool IsCompactionCandidate(const ShardInfo& shard,
                           const CompactionPolicy& policy, uint64_t now_ns,
                           const std::set<uint64_t>& excluded_ids) {
  if (!shard.sealed || !shard.live() || shard.empty()) {
    return false;
  }
  if (excluded_ids.count(shard.id) != 0) {
    return false;
  }
  if (policy.max_source_raw_bytes != 0 &&
      shard.raw_bytes >= policy.max_source_raw_bytes) {
    return false;
  }
  if (policy.min_idle_ns != 0) {
    // max_ts_ns + min_idle_ns may not exceed now; phrase it without overflow.
    if (shard.max_ts_ns > now_ns || now_ns - shard.max_ts_ns < policy.min_idle_ns) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::vector<CompactionRun> PlanCompaction(
    const std::vector<ShardInfo>& shards, const CompactionPolicy& policy,
    uint64_t now_ns, const std::set<uint64_t>& excluded_ids) {
  std::vector<CompactionRun> runs;
  const size_t min_run = policy.min_run_shards < 2 ? 2 : policy.min_run_shards;
  const size_t max_run =
      policy.max_run_shards < min_run ? min_run : policy.max_run_shards;

  // Per-tenant open run being grown. Keyed implicitly: a shard extends the
  // current run for its tenant only when it is that tenant's *next* live
  // shard in manifest order; any same-tenant non-candidate in between closes
  // the run.
  struct OpenRun {
    CompactionRun run;
    uint64_t raw_bytes = 0;
  };
  std::vector<std::pair<std::string, OpenRun>> open;  // tenant -> run

  auto close_run = [&](const std::string& tenant, OpenRun* o) {
    if (o->run.shard_ids.size() >= min_run) {
      runs.push_back(std::move(o->run));
    }
    o->run.tenant = tenant;
    o->run.shard_ids.clear();
    o->raw_bytes = 0;
  };

  for (const ShardInfo& shard : shards) {
    if (!shard.live()) {
      continue;  // tombstones break no run: they sit between live shards
    }
    OpenRun* o = nullptr;
    for (auto& entry : open) {
      if (entry.first == shard.tenant) {
        o = &entry.second;
        break;
      }
    }
    if (o == nullptr) {
      open.emplace_back(shard.tenant, OpenRun{});
      o = &open.back().second;
      o->run.tenant = shard.tenant;
    }
    if (!IsCompactionCandidate(shard, policy, now_ns, excluded_ids)) {
      close_run(shard.tenant, o);
      continue;
    }
    if (!o->run.shard_ids.empty() &&
        (o->run.shard_ids.size() >= max_run ||
         (policy.max_run_raw_bytes != 0 &&
          o->raw_bytes + shard.raw_bytes > policy.max_run_raw_bytes))) {
      close_run(shard.tenant, o);
    }
    o->run.shard_ids.push_back(shard.id);
    o->raw_bytes += shard.raw_bytes;
  }
  for (auto& entry : open) {
    close_run(entry.first, &entry.second);
  }
  // close_run appends in per-tenant completion order; re-establish manifest
  // order (runs are disjoint, so ordering by first shard id's position is
  // equivalent to ordering by the run's smallest line_base).
  std::sort(runs.begin(), runs.end(),
            [&](const CompactionRun& a, const CompactionRun& b) {
              auto pos = [&](uint64_t id) {
                for (size_t i = 0; i < shards.size(); ++i) {
                  if (shards[i].id == id) {
                    return i;
                  }
                }
                return shards.size();
              };
              return pos(a.shard_ids.front()) < pos(b.shard_ids.front());
            });
  return runs;
}

std::string ShardPruneReason(const ShardInfo& shard,
                             const SetQueryPredicate& pred) {
  if (pred.tenant.has_value() && *pred.tenant != shard.tenant) {
    return "tenant '" + shard.tenant + "' != predicate tenant '" +
           *pred.tenant + "'";
  }
  if (shard.sealed && shard.empty()) {
    return "sealed empty shard";
  }
  if (pred.constrains_time() && shard.sealed && !shard.empty()) {
    // Inclusive-range overlap test against the conservative event range.
    if (shard.max_ts_ns < pred.from_ns) {
      return "ts range [" + std::to_string(shard.min_ts_ns) + "," +
             std::to_string(shard.max_ts_ns) + "] ends before from=" +
             std::to_string(pred.from_ns);
    }
    if (shard.min_ts_ns > pred.to_ns) {
      return "ts range [" + std::to_string(shard.min_ts_ns) + "," +
             std::to_string(shard.max_ts_ns) + "] starts after to=" +
             std::to_string(pred.to_ns);
    }
  }
  return "";
}

}  // namespace loggrep
