// Archive fsck: end-to-end integrity verification for a LogArchive directory.
//
// `loggrep_cli verify <dir>` proves, for every committed block,
//   1. the stored CapsuleBox bytes hash to the manifest's stored_hash
//      (at-rest bit rot, torn writes);
//   2. the box opens and its metadata passes referential validation;
//   3. every Capsule decompresses and every line reconstructs, each global
//      line exactly once (no overlap, no hole);
//   4. the chained FNV-1a over the reconstructed lines equals the
//      manifest's content_hash — i.e. the block decodes byte-for-byte to
//      the text that was ingested.
// The walk is strictly read-only (it parses the manifest directly instead
// of going through LogArchive::Open, which may re-persist during recovery),
// and hostile bytes anywhere yield a recorded failure, never a crash.
#ifndef SRC_STORE_VERIFY_H_
#define SRC_STORE_VERIFY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/store/storage_env.h"

namespace loggrep {

// One block's verdict. `error` carries the first failure in human-readable
// form; empty means the block passed every check.
struct BlockVerifyResult {
  uint32_t seq = 0;
  uint64_t line_count = 0;
  uint64_t stored_bytes = 0;
  std::string error;

  bool ok() const { return error.empty(); }
};

struct VerifyReport {
  std::string dir;
  std::vector<BlockVerifyResult> blocks;
  size_t blocks_failed = 0;
  uint64_t lines_verified = 0;
  // Archive-level failure (unreadable/corrupt manifest): nothing block-wise
  // was checkable.
  Status fatal = OkStatus();

  bool ok() const { return fatal.ok() && blocks_failed == 0; }
  std::string Summary() const;
};

// Reconstructs every line of a serialized CapsuleBox, in global line order.
// Fails cleanly on corrupt boxes, including line-number coverage violations
// (a line rendered twice or never). Exposed for the verifier and tests.
Result<std::vector<std::string>> ReconstructAllLines(std::string_view box_bytes);

// Chained FNV-1a over `lines`, identical to HashBlockContent over the
// original block text (each line absorbed, then one '\n').
uint64_t HashReconstructedLines(const std::vector<std::string>& lines);

// Verifies every block of the archive at `dir`. Never throws; never writes.
// All reads go through `env` (null = real POSIX filesystem).
VerifyReport VerifyArchive(const std::string& dir, StorageEnv* env = nullptr);

// ---------------------------------------------------------------------------
// Self-healing repair
// ---------------------------------------------------------------------------

// What RepairArchive did to one quarantined block.
struct RepairAction {
  uint32_t seq = 0;
  bool reinstated = false;  // passed re-verification; serves queries again
  bool tombstoned = false;  // still failing; the hole is accepted for now
  std::string detail;       // the verification error (empty when reinstated)
};

struct RepairReport {
  std::string dir;
  std::vector<RepairAction> actions;  // one per quarantined block examined
  size_t reinstated = 0;
  size_t tombstoned = 0;
  // Archive-level failure (unreadable manifest / unwritable sidecar).
  Status fatal = OkStatus();

  bool ok() const { return fatal.ok(); }
  std::string Summary() const;
};

// `loggrep_cli repair`: re-verifies every block in quarantine.json against
// the manifest v2 hashes (same checks as VerifyArchive) and rewrites the
// sidecar — blocks that now pass are *reinstated* (entry removed), blocks
// that still fail are *tombstoned* (kept, marked, so queries keep reporting
// the hole without re-paying the retry storm). A previously tombstoned block
// whose file was restored passes re-verification and is reinstated too.
// Entries for blocks the manifest no longer references are dropped. The only
// file repair ever writes is quarantine.json (atomically).
RepairReport RepairArchive(const std::string& dir, StorageEnv* env = nullptr);

}  // namespace loggrep

#endif  // SRC_STORE_VERIFY_H_
