// Archive fsck: end-to-end integrity verification for a LogArchive directory.
//
// `loggrep_cli verify <dir>` proves, for every committed block,
//   1. the stored CapsuleBox bytes hash to the manifest's stored_hash
//      (at-rest bit rot, torn writes);
//   2. the box opens and its metadata passes referential validation;
//   3. every Capsule decompresses and every line reconstructs, each global
//      line exactly once (no overlap, no hole);
//   4. the chained FNV-1a over the reconstructed lines equals the
//      manifest's content_hash — i.e. the block decodes byte-for-byte to
//      the text that was ingested.
// The walk is strictly read-only (it parses the manifest directly instead
// of going through LogArchive::Open, which may re-persist during recovery),
// and hostile bytes anywhere yield a recorded failure, never a crash.
#ifndef SRC_STORE_VERIFY_H_
#define SRC_STORE_VERIFY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"

namespace loggrep {

// One block's verdict. `error` carries the first failure in human-readable
// form; empty means the block passed every check.
struct BlockVerifyResult {
  uint32_t seq = 0;
  uint64_t line_count = 0;
  uint64_t stored_bytes = 0;
  std::string error;

  bool ok() const { return error.empty(); }
};

struct VerifyReport {
  std::string dir;
  std::vector<BlockVerifyResult> blocks;
  size_t blocks_failed = 0;
  uint64_t lines_verified = 0;
  // Archive-level failure (unreadable/corrupt manifest): nothing block-wise
  // was checkable.
  Status fatal = OkStatus();

  bool ok() const { return fatal.ok() && blocks_failed == 0; }
  std::string Summary() const;
};

// Reconstructs every line of a serialized CapsuleBox, in global line order.
// Fails cleanly on corrupt boxes, including line-number coverage violations
// (a line rendered twice or never). Exposed for the verifier and tests.
Result<std::vector<std::string>> ReconstructAllLines(std::string_view box_bytes);

// Chained FNV-1a over `lines`, identical to HashBlockContent over the
// original block text (each line absorbed, then one '\n').
uint64_t HashReconstructedLines(const std::vector<std::string>& lines);

// Verifies every block of the archive at `dir`. Never throws; never writes.
VerifyReport VerifyArchive(const std::string& dir);

}  // namespace loggrep

#endif  // SRC_STORE_VERIFY_H_
