#include "src/store/archive_set.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <utility>

#include "src/common/json.h"
#include "src/common/thread_pool.h"
#include "src/query/query_parser.h"
#include "src/store/fs_util.h"

namespace loggrep {

namespace {

// Version 2 added compaction: a top-level `generation` counter plus
// per-shard `superseded_by` / `line_span`. Version-1 manifests parse with
// the pre-compaction defaults (generation 0, nothing superseded, every
// shard kShardLineSpan wide).
constexpr int kSetManifestVersion = 2;
constexpr int kOldestParsableSetManifestVersion = 1;

// u64 values (line bases, nanosecond timestamps) exceed the 2^53 exact-integer
// range of the JSON parser's double representation, so the manifest stores
// them as decimal strings.
void AppendU64Field(std::string* out, const char* key, uint64_t value,
                    bool* first) {
  if (!*first) {
    out->append(",");
  }
  *first = false;
  AppendJsonString(out, key);
  out->append(":\"");
  out->append(std::to_string(value));
  out->append("\"");
}

void AppendStrField(std::string* out, const char* key, std::string_view value,
                    bool* first) {
  if (!*first) {
    out->append(",");
  }
  *first = false;
  AppendJsonString(out, key);
  out->append(":");
  AppendJsonString(out, value);
}

void AppendBoolField(std::string* out, const char* key, bool value,
                     bool* first) {
  if (!*first) {
    out->append(",");
  }
  *first = false;
  AppendJsonString(out, key);
  out->append(value ? ":true" : ":false");
}

// Reads a u64 that may be a decimal string (current writer) or a plain
// number (tolerated for hand-edited manifests).
bool ReadU64(const JsonValue& obj, const std::string& key, uint64_t* out) {
  const JsonValue& v = obj.Get(key);
  if (v.kind() == JsonValue::Kind::kString) {
    const std::string& s = v.AsString();
    if (s.empty()) {
      return false;
    }
    errno = 0;
    char* end = nullptr;
    unsigned long long parsed = std::strtoull(s.c_str(), &end, 10);
    if (errno != 0 || end != s.c_str() + s.size()) {
      return false;
    }
    *out = parsed;
    return true;
  }
  if (v.kind() == JsonValue::Kind::kNumber) {
    *out = v.AsUint();
    return true;
  }
  return false;
}

uint64_t ReadU64Or(const JsonValue& obj, const std::string& key,
                   uint64_t fallback) {
  uint64_t out = fallback;
  if (!ReadU64(obj, key, &out)) {
    return fallback;
  }
  return out;
}

std::string JoinPath(const std::string& dir, const std::string& name) {
  if (dir.empty() || dir.back() == '/') {
    return dir + name;
  }
  return dir + "/" + name;
}

uint64_t CountLines(std::string_view text) {
  if (text.empty()) {
    return 0;
  }
  uint64_t lines = 0;
  for (char c : text) {
    if (c == '\n') {
      ++lines;
    }
  }
  if (text.back() != '\n') {
    ++lines;
  }
  return lines;
}

}  // namespace

const char* SetKillPointName(SetKillPoint point) {
  switch (point) {
    case SetKillPoint::kShardCreated:
      return "shard-created";
    case SetKillPoint::kRollManifestWritten:
      return "roll-manifest-written";
    case SetKillPoint::kAppendManifestWritten:
      return "append-manifest-written";
    case SetKillPoint::kRetentionManifestWritten:
      return "retention-manifest-written";
    case SetKillPoint::kCompactStaged:
      return "compact-staged";
    case SetKillPoint::kCompactShardRenamed:
      return "compact-shard-renamed";
    case SetKillPoint::kCompactManifestWritten:
      return "compact-manifest-written";
    case SetKillPoint::kCompactSourcesRemoved:
      return "compact-sources-removed";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// Manifest serialization
// ---------------------------------------------------------------------------

std::string ArchiveSet::SetManifestPath(const std::string& root) {
  return JoinPath(root, "set_manifest.json");
}

std::string ArchiveSet::SerializeSetManifest(
    uint64_t window_span_ns, uint64_t next_shard_id, uint64_t next_line_base,
    const std::vector<ShardInfo>& shards) {
  SetManifestHeader header;
  header.window_span_ns = window_span_ns;
  header.next_shard_id = next_shard_id;
  header.next_line_base = next_line_base;
  return SerializeSetManifest(header, shards);
}

Result<std::vector<ShardInfo>> ArchiveSet::ParseSetManifest(
    std::string_view bytes, uint64_t* window_span_ns, uint64_t* next_shard_id,
    uint64_t* next_line_base) {
  SetManifestHeader header;
  Result<std::vector<ShardInfo>> shards = ParseSetManifest(bytes, &header);
  *window_span_ns = header.window_span_ns;
  *next_shard_id = header.next_shard_id;
  *next_line_base = header.next_line_base;
  return shards;
}

std::string ArchiveSet::SerializeSetManifest(
    const SetManifestHeader& header, const std::vector<ShardInfo>& shards) {
  std::string out = "{\"version\":" + std::to_string(kSetManifestVersion);
  bool first = false;
  AppendU64Field(&out, "window_span_ns", header.window_span_ns, &first);
  AppendU64Field(&out, "next_shard_id", header.next_shard_id, &first);
  AppendU64Field(&out, "next_line_base", header.next_line_base, &first);
  AppendU64Field(&out, "generation", header.generation, &first);
  out.append(",\"shards\":[");
  for (size_t i = 0; i < shards.size(); ++i) {
    const ShardInfo& s = shards[i];
    if (i > 0) {
      out.append(",");
    }
    out.append("{");
    bool sf = true;
    AppendU64Field(&out, "id", s.id, &sf);
    AppendStrField(&out, "tenant", s.tenant, &sf);
    AppendStrField(&out, "dir", s.dir_name, &sf);
    AppendU64Field(&out, "window_start_ns", s.window_start_ns, &sf);
    AppendU64Field(&out, "window_end_ns", s.window_end_ns, &sf);
    AppendU64Field(&out, "line_base", s.line_base, &sf);
    AppendU64Field(&out, "lines", s.lines, &sf);
    AppendU64Field(&out, "raw_bytes", s.raw_bytes, &sf);
    AppendU64Field(&out, "stored_bytes", s.stored_bytes, &sf);
    AppendU64Field(&out, "min_ts_ns", s.min_ts_ns, &sf);
    AppendU64Field(&out, "max_ts_ns", s.max_ts_ns, &sf);
    AppendBoolField(&out, "sealed", s.sealed, &sf);
    AppendBoolField(&out, "expired", s.expired, &sf);
    if (s.superseded()) {
      AppendU64Field(&out, "superseded_by", s.superseded_by, &sf);
    }
    if (s.line_span != 0 && s.line_span != ArchiveSet::kShardLineSpan) {
      AppendU64Field(&out, "line_span", s.line_span, &sf);
    }
    out.append("}");
  }
  out.append("]}\n");
  return out;
}

Result<std::vector<ShardInfo>> ArchiveSet::ParseSetManifest(
    std::string_view bytes, SetManifestHeader* header) {
  Result<JsonValue> doc = ParseJson(bytes);
  if (!doc.ok()) {
    return CorruptData("set manifest: " + doc.status().message());
  }
  const JsonValue& root = *doc;
  if (!root.is_object()) {
    return CorruptData("set manifest: not a JSON object");
  }
  const int version = static_cast<int>(root.Get("version").AsInt());
  if (version < kOldestParsableSetManifestVersion ||
      version > kSetManifestVersion) {
    return CorruptData("set manifest: unsupported version");
  }
  header->window_span_ns = ReadU64Or(root, "window_span_ns", 0);
  header->next_shard_id = ReadU64Or(root, "next_shard_id", 0);
  header->next_line_base = ReadU64Or(root, "next_line_base", 0);
  header->generation = ReadU64Or(root, "generation", 0);

  std::vector<ShardInfo> shards;
  const JsonValue& arr = root.Get("shards");
  if (!arr.is_array()) {
    return CorruptData("set manifest: 'shards' missing or not an array");
  }
  for (const JsonValue& item : arr.AsArray()) {
    if (!item.is_object()) {
      return CorruptData("set manifest: shard entry not an object");
    }
    ShardInfo s;
    if (!ReadU64(item, "id", &s.id)) {
      return CorruptData("set manifest: shard entry without id");
    }
    s.tenant = item.Get("tenant").AsString();
    s.dir_name = item.Get("dir").AsString();
    if (s.dir_name.empty() || s.dir_name.find('/') != std::string::npos ||
        s.dir_name.find("..") != std::string::npos) {
      return CorruptData("set manifest: shard " + std::to_string(s.id) +
                         " has a missing or unsafe dir name");
    }
    s.window_start_ns = ReadU64Or(item, "window_start_ns", 0);
    s.window_end_ns = ReadU64Or(item, "window_end_ns", UINT64_MAX);
    s.line_base = ReadU64Or(item, "line_base", 0);
    s.lines = ReadU64Or(item, "lines", 0);
    s.raw_bytes = ReadU64Or(item, "raw_bytes", 0);
    s.stored_bytes = ReadU64Or(item, "stored_bytes", 0);
    s.min_ts_ns = ReadU64Or(item, "min_ts_ns", UINT64_MAX);
    s.max_ts_ns = ReadU64Or(item, "max_ts_ns", 0);
    s.sealed = item.Get("sealed").AsBool();
    s.expired = item.Get("expired").AsBool();
    s.superseded_by = ReadU64Or(item, "superseded_by", kNotSuperseded);
    s.line_span = ReadU64Or(item, "line_span", ArchiveSet::kShardLineSpan);
    if (s.line_span == 0) {
      return CorruptData("set manifest: shard " + std::to_string(s.id) +
                         " has a zero line span");
    }
    if (s.expired && !s.sealed) {
      return CorruptData("set manifest: shard " + std::to_string(s.id) +
                         " expired but not sealed");
    }
    if (s.superseded() && !s.sealed) {
      return CorruptData("set manifest: shard " + std::to_string(s.id) +
                         " superseded but not sealed");
    }
    if (!shards.empty()) {
      // Ids are unique but no longer monotone in manifest order: a merged
      // shard (allocated later, so a higher id) sits immediately before its
      // first source so line bases stay non-decreasing.
      const ShardInfo& prev = shards.back();
      if (s.line_base < prev.line_base) {
        return CorruptData(
            "set manifest: shard line bases not non-decreasing");
      }
    }
    shards.push_back(std::move(s));
  }
  uint64_t max_id = 0;
  uint64_t max_line_base = 0;
  for (size_t i = 0; i < shards.size(); ++i) {
    max_id = std::max(max_id, shards[i].id);
    max_line_base = std::max(max_line_base, shards[i].line_base);
    for (size_t j = i + 1; j < shards.size(); ++j) {
      if (shards[i].id == shards[j].id) {
        return CorruptData("set manifest: duplicate shard id " +
                           std::to_string(shards[i].id));
      }
    }
    if (shards[i].superseded()) {
      bool found = false;
      for (const ShardInfo& other : shards) {
        if (other.id == shards[i].superseded_by && !other.expired &&
            !other.superseded()) {
          found = true;
          break;
        }
      }
      if (!found) {
        return CorruptData("set manifest: shard " +
                           std::to_string(shards[i].id) +
                           " superseded by an unknown or dead shard");
      }
    }
  }
  if (!shards.empty()) {
    if (header->next_shard_id <= max_id) {
      return CorruptData("set manifest: next_shard_id not past the last shard");
    }
    if (header->next_line_base <= max_line_base) {
      return CorruptData(
          "set manifest: next_line_base not past the last shard");
    }
  }
  return shards;
}

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

ArchiveSet::ArchiveSet(std::string root, ArchiveSetOptions options)
    : root_(std::move(root)), options_(std::move(options)) {}

ArchiveSet::~ArchiveSet() { StopJanitor(); }

Result<std::unique_ptr<ArchiveSet>> ArchiveSet::Create(
    std::string root, ArchiveSetOptions options) {
  StorageEnv* env = EnvOrDefault(options.archive.env);
  std::error_code ec;
  std::filesystem::create_directories(root, ec);
  if (ec) {
    return IOError("create set root " + root + ": " + ec.message());
  }
  if (env->FileExists(SetManifestPath(root))) {
    return InvalidArgument("set root " + root +
                           " already holds a set manifest");
  }
  std::unique_ptr<ArchiveSet> set(
      new ArchiveSet(std::move(root), std::move(options)));
  {
    std::lock_guard<std::mutex> lock(set->mu_);
    LOGGREP_RETURN_IF_ERROR(set->WriteSetManifestLocked());
  }
  return set;
}

Result<std::unique_ptr<ArchiveSet>> ArchiveSet::Open(
    std::string root, ArchiveSetOptions options) {
  StorageEnv* env = EnvOrDefault(options.archive.env);
  Result<std::string> bytes = ReadFileBytes(SetManifestPath(root), env);
  if (!bytes.ok()) {
    return Status(bytes.status().code(),
                  "open archive set " + root + ": " + bytes.status().message());
  }
  SetManifestHeader header;
  Result<std::vector<ShardInfo>> shards = ParseSetManifest(*bytes, &header);
  if (!shards.ok()) {
    return shards.status();
  }

  std::unique_ptr<ArchiveSet> set(
      new ArchiveSet(std::move(root), std::move(options)));
  // The persisted span wins over the option (a set's partitioning is fixed
  // at Create time; reopening with a different span must not re-route).
  set->options_.window_span_ns = header.window_span_ns;
  set->next_shard_id_ = header.next_shard_id;
  set->next_line_base_ = header.next_line_base;
  set->generation_ = header.generation;
  set->shards_ = std::move(*shards);

  // Recovery, in order:
  //   1. stray atomic-write temps of the set manifest itself;
  //   2. finish interrupted retention and compaction GC (entry expired or
  //      superseded, dir still present — the merged shard holding a
  //      superseded shard's lines was committed first by protocol order);
  //   3. sweep orphan shard dirs (a roll — or a compaction rename — that
  //      died before its manifest rewrite: the dir holds no committed data
  //      by protocol order) and half-built compaction staging dirs;
  //   4. mark unsealed shards' stats stale (recomputed from their archives
  //      on first open — the manifest's unsealed stats are advisory).
  SweepTempFiles(set->root_, env);
  for (size_t i = 0; i < set->shards_.size(); ++i) {
    ShardInfo& s = set->shards_[i];
    std::string dir = JoinPath(set->root_, s.dir_name);
    if (!s.live()) {
      RemoveTreeBestEffort(dir);
      continue;
    }
    if (!s.sealed) {
      set->stats_stale_[s.id] = true;
      set->active_[s.tenant] = i;
    }
  }
  {
    std::error_code ec;
    for (const auto& entry :
         std::filesystem::directory_iterator(set->root_, ec)) {
      if (!entry.is_directory()) {
        continue;
      }
      std::string name = entry.path().filename().string();
      if (LooksLikeCompactionStagingDir(name)) {
        RemoveTreeBestEffort(entry.path().string());
        continue;
      }
      if (!LooksLikeShardDir(name)) {
        continue;
      }
      bool referenced = false;
      for (const ShardInfo& s : set->shards_) {
        if (s.dir_name == name) {
          referenced = true;
          break;
        }
      }
      if (!referenced) {
        RemoveTreeBestEffort(entry.path().string());
      }
    }
  }
  return set;
}

Status ArchiveSet::WriteSetManifestLocked() {
  SetManifestHeader header;
  header.window_span_ns = options_.window_span_ns;
  header.next_shard_id = next_shard_id_;
  header.next_line_base = next_line_base_;
  header.generation = generation_ + 1;
  Status wrote = WriteFileAtomic(SetManifestPath(root_),
                                 SerializeSetManifest(header, shards_),
                                 options_.archive.env);
  if (wrote.ok()) {
    // The in-memory generation tracks the persisted one exactly: a failed
    // write leaves both untouched, so a compaction plan snapshotting the
    // generation can detect any committed manifest movement.
    ++generation_;
  }
  return wrote;
}

Status ArchiveSet::MaybeKill(SetKillPoint point) const {
  if (hook_ && hook_(point)) {
    return Internal(std::string("killed at ") + SetKillPointName(point));
  }
  return OkStatus();
}

Result<LogArchive*> ArchiveSet::OpenShardLocked(size_t index) {
  ShardInfo& info = shards_[index];
  auto it = open_.find(info.id);
  if (it != open_.end()) {
    return it->second.get();
  }
  Result<LogArchive> arch =
      LogArchive::Open(JoinPath(root_, info.dir_name), options_.archive);
  if (!arch.ok()) {
    return Status(arch.status().code(),
                  "shard " + std::to_string(info.id) + " (" + info.tenant +
                      "): " + arch.status().message());
  }
  auto handle = std::make_unique<LogArchive>(std::move(*arch));
  LogArchive* raw = handle.get();
  if (!info.sealed && stats_stale_.count(info.id) != 0) {
    info.lines = raw->total_lines();
    info.raw_bytes = raw->total_raw_bytes();
    info.stored_bytes = raw->total_stored_bytes();
    stats_stale_.erase(info.id);
  }
  open_[info.id] = std::move(handle);
  return raw;
}

// ---------------------------------------------------------------------------
// Ingest
// ---------------------------------------------------------------------------

Result<size_t> ArchiveSet::RollShardLocked(const std::string& tenant,
                                           uint64_t ts_ns) {
  // 1. Shard dir + empty archive land on disk first. A crash from here to
  //    the manifest rewrite leaves an orphan dir with no committed data;
  //    Open sweeps it.
  uint64_t id = next_shard_id_;
  std::string dir_name = ShardDirName(id, tenant);
  std::string dir = JoinPath(root_, dir_name);
  Result<LogArchive> created = LogArchive::Create(dir, options_.archive);
  if (!created.ok()) {
    return Status(created.status().code(),
                  "roll shard for tenant '" + tenant +
                      "': " + created.status().message());
  }
  LOGGREP_RETURN_IF_ERROR(MaybeKill(SetKillPoint::kShardCreated));

  // 2. Seal the tenant's previous active shard (its stats are exact in
  //    memory: refreshed on open, updated on every append) and add the new
  //    one, in ONE manifest rewrite — the commit point of the roll.
  auto prev_active = active_.find(tenant);
  size_t sealed_index = shards_.size();
  ShardInfo sealed_backup;
  if (prev_active != active_.end()) {
    sealed_index = prev_active->second;
    // A stale-stat shard must consult its archive before the seal freezes
    // the numbers (min/max ts stay as recorded: conservative, thus sound).
    if (stats_stale_.count(shards_[sealed_index].id) != 0) {
      Result<LogArchive*> opened = OpenShardLocked(sealed_index);
      if (!opened.ok()) {
        return opened.status();
      }
    }
    sealed_backup = shards_[sealed_index];
    shards_[sealed_index].sealed = true;
  }

  ShardInfo next;
  next.id = id;
  next.tenant = tenant;
  next.dir_name = dir_name;
  if (options_.window_span_ns != 0) {
    next.window_start_ns = WindowStartFor(ts_ns, options_.window_span_ns);
    next.window_end_ns = next.window_start_ns + options_.window_span_ns;
  }
  next.line_base = next_line_base_;
  next.line_span = kShardLineSpan;
  shards_.push_back(next);
  next_shard_id_ = id + 1;
  next_line_base_ += kShardLineSpan;

  Status wrote = WriteSetManifestLocked();
  if (!wrote.ok()) {
    // Roll back the in-memory mutation and drop the never-committed dir so a
    // retry can recreate it (a crash instead of a clean failure leaves the
    // dir behind; Open sweeps it).
    shards_.pop_back();
    next_shard_id_ = id;
    next_line_base_ -= kShardLineSpan;
    if (sealed_index < shards_.size()) {
      shards_[sealed_index] = sealed_backup;
    }
    RemoveTreeBestEffort(dir);
    return wrote;
  }

  size_t new_index = shards_.size() - 1;
  active_[tenant] = new_index;
  open_[id] = std::make_unique<LogArchive>(std::move(*created));
  LOGGREP_RETURN_IF_ERROR(MaybeKill(SetKillPoint::kRollManifestWritten));
  return new_index;
}

Result<AppendReceipt> ArchiveSet::Append(std::string_view tenant,
                                         std::string_view text,
                                         uint64_t ts_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ts_ns == 0) {
    ts_ns = storage_env()->NowNanos();
  }
  uint64_t lines = CountLines(text);
  if (lines == 0) {
    return InvalidArgument("append of empty text");
  }

  std::string tenant_key(tenant);
  const ShardInfo* active = nullptr;
  auto it = active_.find(tenant_key);
  if (it != active_.end()) {
    // A stale active shard's line/byte counters must be real before the
    // roll decision reads them.
    if (stats_stale_.count(shards_[it->second].id) != 0) {
      Result<LogArchive*> opened = OpenShardLocked(it->second);
      if (!opened.ok()) {
        return opened.status();
      }
    }
    active = &shards_[it->second];
  }

  AppendReceipt receipt;
  RollReason roll =
      DecideRoll(active, ts_ns, lines, options_.window_span_ns,
                 options_.max_shard_bytes, kShardLineSpan);
  size_t index;
  if (roll != RollReason::kNone) {
    Result<size_t> rolled = RollShardLocked(tenant_key, ts_ns);
    if (!rolled.ok()) {
      return rolled.status();
    }
    index = *rolled;
    receipt.rolled = true;
    receipt.roll_reason = roll;
  } else {
    index = active_[tenant_key];
  }

  Result<LogArchive*> arch = OpenShardLocked(index);
  if (!arch.ok()) {
    return arch.status();
  }

  // Widen the recorded event range BEFORE committing the block: a crash
  // between the two leaves the range too wide (pruning stays sound), never
  // too narrow (which would let a time predicate skip real hits).
  ShardInfo& info = shards_[index];
  uint64_t prev_min = info.min_ts_ns, prev_max = info.max_ts_ns;
  info.min_ts_ns = std::min(info.min_ts_ns, ts_ns);
  info.max_ts_ns = std::max(info.max_ts_ns, ts_ns);
  if (info.min_ts_ns != prev_min || info.max_ts_ns != prev_max) {
    Status wrote = WriteSetManifestLocked();
    if (!wrote.ok()) {
      info.min_ts_ns = prev_min;
      info.max_ts_ns = prev_max;
      return wrote;
    }
  }
  LOGGREP_RETURN_IF_ERROR(MaybeKill(SetKillPoint::kAppendManifestWritten));

  receipt.shard_id = info.id;
  receipt.first_global_line = info.line_base + (*arch)->total_lines();
  receipt.lines = lines;
  LOGGREP_RETURN_IF_ERROR((*arch)->AppendBlock(text));
  info.lines = (*arch)->total_lines();
  info.raw_bytes = (*arch)->total_raw_bytes();
  info.stored_bytes = (*arch)->total_stored_bytes();
  return receipt;
}

// ---------------------------------------------------------------------------
// Query
// ---------------------------------------------------------------------------

std::string SetQueryResult::RenderPartial() const {
  std::string out;
  for (const SetShardFailure& f : shard_failures) {
    out += "shard " + std::to_string(f.shard_id) + " (tenant '" + f.tenant +
           "') unavailable: " + f.error + "\n";
  }
  if (partial.partial()) {
    out += partial.Render();
  }
  return out;
}

Result<SetQueryResult> ArchiveSet::Query(std::string_view command,
                                         const SetQueryPredicate& pred) {
  return QueryImpl(command, pred, /*num_threads=*/0, /*explain=*/nullptr);
}

Result<SetQueryResult> ArchiveSet::ParallelQuery(std::string_view command,
                                                 const SetQueryPredicate& pred,
                                                 size_t num_threads) {
  if (num_threads == 0) {
    return InvalidArgument("ParallelQuery needs at least one thread");
  }
  return QueryImpl(command, pred, num_threads, /*explain=*/nullptr);
}

Result<SetQueryResult> ArchiveSet::Explain(std::string_view command,
                                           const SetQueryPredicate& pred,
                                           SetExplain* explain) {
  return QueryImpl(command, pred, /*num_threads=*/0, explain);
}

Result<SetQueryResult> ArchiveSet::QueryImpl(std::string_view command,
                                             const SetQueryPredicate& pred,
                                             size_t num_threads,
                                             SetExplain* explain) {
  std::lock_guard<std::mutex> lock(mu_);
  // A malformed command must fail even when every shard is pruned (the
  // answer "no hits" would be a lie about a query that has no meaning).
  {
    Result<std::unique_ptr<QueryExpr>> parsed = ParseQuery(command);
    if (!parsed.ok()) {
      return parsed.status();
    }
  }
  if (explain != nullptr) {
    explain->command = std::string(command);
    explain->shards.clear();
  }

  SetQueryResult result;
  struct Visit {
    size_t index;            // into shards_
    LogArchive* archive;     // open handle
    size_t explain_index;    // into explain->shards (or SIZE_MAX)
  };
  std::vector<Visit> visits;
  for (size_t i = 0; i < shards_.size(); ++i) {
    const ShardInfo& s = shards_[i];
    if (!s.live()) {
      // Tombstone: expired data is gone by design; a superseded shard's
      // lines are served by its merged successor. Neither is a hole.
      continue;
    }
    ++result.shards_total;
    std::string reason = ShardPruneReason(s, pred);
    if (!reason.empty()) {
      ++result.shards_pruned;
      if (explain != nullptr) {
        ShardExplain se;
        se.id = s.id;
        se.tenant = s.tenant;
        se.pruned = true;
        se.prune_reason = std::move(reason);
        explain->shards.push_back(std::move(se));
      }
      continue;
    }
    ++result.shards_visited;
    size_t explain_index = SIZE_MAX;
    if (explain != nullptr) {
      ShardExplain se;
      se.id = s.id;
      se.tenant = s.tenant;
      explain->shards.push_back(std::move(se));
      explain_index = explain->shards.size() - 1;
    }
    Result<LogArchive*> arch = OpenShardLocked(i);
    if (!arch.ok()) {
      if (!options_.archive.degraded_queries) {
        return arch.status();
      }
      ++result.shards_failed;
      SetShardFailure failure;
      failure.shard_id = s.id;
      failure.tenant = s.tenant;
      failure.line_base = s.line_base;
      failure.lines = s.lines;
      failure.error = arch.status().ToString();
      if (explain_index != SIZE_MAX) {
        explain->shards[explain_index].failed = true;
        explain->shards[explain_index].failure = failure.error;
      }
      result.shard_failures.push_back(std::move(failure));
      continue;
    }
    visits.push_back(Visit{i, *arch, explain_index});
  }

  // Scatter. Each visit queries a distinct LogArchive, so parallel workers
  // never share mutable state (they do share the env and, per archive, a
  // BoxCache — both thread-safe).
  struct Slot {
    bool done = false;
    Status status = OkStatus();
    ArchiveQueryResult result;
  };
  std::vector<Slot> slots(visits.size());
  auto run_one = [&](size_t v) {
    Slot& slot = slots[v];
    Result<ArchiveQueryResult> r =
        explain != nullptr
            ? visits[v].archive->Explain(
                  command, &explain->shards[visits[v].explain_index].archive)
            : visits[v].archive->Query(command);
    if (r.ok()) {
      slot.result = std::move(*r);
      slot.done = true;
    } else {
      slot.status = r.status();
    }
  };
  if (num_threads > 1 && visits.size() > 1) {
    ThreadPool pool(std::min(num_threads, visits.size()));
    for (size_t v = 0; v < visits.size(); ++v) {
      pool.Submit([&, v] { run_one(v); });
    }
    pool.Wait();
  } else {
    for (size_t v = 0; v < visits.size(); ++v) {
      run_one(v);
    }
  }

  // Gather in id order (visits preserve it), rebasing shard-local line
  // numbers onto each shard's global base.
  for (size_t v = 0; v < visits.size(); ++v) {
    const ShardInfo& s = shards_[visits[v].index];
    Slot& slot = slots[v];
    if (!slot.done) {
      // A whole-shard query failure. Query-syntax errors never degrade
      // (same rule as LogArchive) — but the upfront parse already caught
      // those, so any InvalidArgument here is real and must surface.
      if (!options_.archive.degraded_queries ||
          slot.status.code() == StatusCode::kInvalidArgument) {
        return slot.status;
      }
      ++result.shards_failed;
      SetShardFailure failure;
      failure.shard_id = s.id;
      failure.tenant = s.tenant;
      failure.line_base = s.line_base;
      failure.lines = s.lines;
      failure.error = slot.status.ToString();
      if (visits[v].explain_index != SIZE_MAX) {
        explain->shards[visits[v].explain_index].failed = true;
        explain->shards[visits[v].explain_index].failure = failure.error;
      }
      result.shard_failures.push_back(std::move(failure));
      continue;
    }
    ArchiveQueryResult& r = slot.result;
    for (auto& hit : r.hits) {
      result.hits.emplace_back(s.line_base + hit.first,
                               std::move(hit.second));
    }
    result.blocks_pruned += r.blocks_pruned;
    result.blocks_queried += r.blocks_queried;
    result.blocks_from_cache += r.blocks_from_cache;
    result.locator.Accumulate(r.locator);
    for (BlockQueryFailure& f : r.partial.failures) {
      f.first_line += s.line_base;
      result.partial.failures.push_back(std::move(f));
    }
  }
  // Visit order is line_base order, so hits usually gather already sorted —
  // except when a merged shard's span interleaves with other tenants' bases.
  // Global line numbers are unique, so sorting by them is a total order.
  if (!std::is_sorted(result.hits.begin(), result.hits.end(),
                      [](const auto& a, const auto& b) {
                        return a.first < b.first;
                      })) {
    std::sort(result.hits.begin(), result.hits.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
  }
  return result;
}

// ---------------------------------------------------------------------------
// Set explain
// ---------------------------------------------------------------------------

ExplainTotals SetExplain::Totals() const {
  ExplainTotals totals;
  for (const ShardExplain& s : shards) {
    if (!s.pruned && !s.failed) {
      totals.Accumulate(s.archive.Totals());
    }
  }
  return totals;
}

bool SetExplain::CheckInvariant(std::string* detail) const {
  for (const ShardExplain& s : shards) {
    if (s.pruned || s.failed) {
      continue;
    }
    if (!s.archive.CheckInvariant(detail)) {
      if (detail != nullptr) {
        *detail = "shard " + std::to_string(s.id) + ": " + *detail;
      }
      return false;
    }
  }
  if (!Totals().Balanced()) {
    if (detail != nullptr) {
      *detail = "set-level totals imbalanced";
    }
    return false;
  }
  return true;
}

std::string SetExplain::Render() const {
  std::string out = "federated query: " + command + "\n";
  for (const ShardExplain& s : shards) {
    out += "shard " + std::to_string(s.id) + " tenant '" + s.tenant + "': ";
    if (s.pruned) {
      out += "pruned (" + s.prune_reason + ")\n";
      continue;
    }
    if (s.failed) {
      out += "failed (" + s.failure + ")\n";
      continue;
    }
    ExplainTotals t = s.archive.Totals();
    out += "visited (capsules " + std::to_string(t.visited) + " = pruned " +
           std::to_string(t.pruned) + " + cached " + std::to_string(t.cached) +
           " + decompressed " + std::to_string(t.decompressed) + ")\n";
  }
  ExplainTotals t = Totals();
  out += "total: capsules " + std::to_string(t.visited) + " = pruned " +
         std::to_string(t.pruned) + " + cached " + std::to_string(t.cached) +
         " + decompressed " + std::to_string(t.decompressed) + "\n";
  return out;
}

// ---------------------------------------------------------------------------
// Retention + repair
// ---------------------------------------------------------------------------

std::string SetRetentionReport::Summary() const {
  if (!fatal.ok()) {
    return "retention failed: " + fatal.ToString();
  }
  return "expired " + std::to_string(expired_ids.size()) + " shard(s), removed " +
         std::to_string(dirs_removed) + " dir(s)";
}

Result<SetRetentionReport> ArchiveSet::RunRetention(uint64_t now_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  SetRetentionReport report;
  if (options_.retention_ns == 0) {
    return report;
  }
  uint64_t cut =
      now_ns > options_.retention_ns ? now_ns - options_.retention_ns : 0;
  std::vector<size_t> expiring;
  for (size_t i = 0; i < shards_.size(); ++i) {
    const ShardInfo& s = shards_[i];
    if (!s.live() || !s.sealed) {
      continue;  // the active shard never expires; superseded data already
                 // expired-or-lives through its merged successor
    }
    if (s.empty() || s.max_ts_ns < cut) {
      expiring.push_back(i);
    }
  }
  if (expiring.empty()) {
    return report;
  }

  // Commit point: one manifest rewrite marks every expiring shard. The
  // entries stay in the manifest forever — dropping one would shift nothing
  // (line bases are explicit), but keeping it preserves lineage and lets
  // Open distinguish "expired by design" from "lost".
  for (size_t i : expiring) {
    shards_[i].expired = true;
  }
  Status wrote = WriteSetManifestLocked();
  if (!wrote.ok()) {
    for (size_t i : expiring) {
      shards_[i].expired = false;
    }
    report.fatal = wrote;
    return report;
  }
  for (size_t i : expiring) {
    report.expired_ids.push_back(shards_[i].id);
  }
  Status killed = MaybeKill(SetKillPoint::kRetentionManifestWritten);
  if (!killed.ok()) {
    return killed;  // dirs linger; Open finishes the removal
  }

  for (size_t i : expiring) {
    open_.erase(shards_[i].id);
    stats_stale_.erase(shards_[i].id);
    if (RemoveTreeBestEffort(JoinPath(root_, shards_[i].dir_name))) {
      ++report.dirs_removed;
    }
  }
  return report;
}

std::string SetRepairReport::Summary() const {
  if (!fatal.ok()) {
    return "set repair failed: " + fatal.ToString();
  }
  return "repaired " + std::to_string(shards.size()) + " shard(s): " +
         std::to_string(reinstated) + " reinstated, " +
         std::to_string(tombstoned) + " tombstoned";
}

Status ArchiveSet::RefreshStats() {
  std::lock_guard<std::mutex> lock(mu_);
  Status first_error = OkStatus();
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (!shards_[i].live() || stats_stale_.count(shards_[i].id) == 0) {
      continue;
    }
    Result<LogArchive*> opened = OpenShardLocked(i);
    if (!opened.ok() && first_error.ok()) {
      first_error = opened.status();
    }
  }
  return first_error;
}

void ArchiveSet::set_degraded_queries(bool degraded) {
  std::lock_guard<std::mutex> lock(mu_);
  options_.archive.degraded_queries = degraded;
  for (auto& [id, archive] : open_) {
    archive->set_degraded_queries(degraded);
  }
}

void ArchiveSet::set_query_deadline_ns(uint64_t deadline_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  options_.archive.query_deadline_ns = deadline_ns;
  for (auto& [id, archive] : open_) {
    archive->set_query_deadline_ns(deadline_ns);
  }
}

SetRepairReport ArchiveSet::RepairAll() {
  std::lock_guard<std::mutex> lock(mu_);
  SetRepairReport report;
  for (const ShardInfo& s : shards_) {
    if (!s.live()) {
      continue;
    }
    RepairReport shard_report =
        RepairArchive(JoinPath(root_, s.dir_name), options_.archive.env);
    if (!shard_report.ok()) {
      report.fatal = shard_report.fatal;
    }
    report.reinstated += shard_report.reinstated;
    report.tombstoned += shard_report.tombstoned;
    if (!shard_report.actions.empty() || !shard_report.ok()) {
      report.shards.emplace_back(s.id, std::move(shard_report));
    }
    auto it = open_.find(s.id);
    if (it != open_.end()) {
      // Best effort: a reinstated block should serve without reopening.
      (void)it->second->ReloadQuarantine();
    }
  }
  return report;
}

// ---------------------------------------------------------------------------
// Compaction
// ---------------------------------------------------------------------------

SetCompactionReport ArchiveSet::Compact() {
  return Compact(options_.compaction);
}

SetCompactionReport ArchiveSet::Compact(const CompactionPolicy& policy) {
  // One compactor at a time: the build phase runs outside mu_, so mu_ alone
  // would let two callers plan — and race to commit — the same sources.
  std::lock_guard<std::mutex> serial(compact_mu_);
  SetCompactionReport report;

  struct Planned {
    CompactionRun run;
    std::vector<ShardInfo> sources;  // snapshot, line_base order
  };
  std::vector<Planned> planned;
  uint64_t planned_generation = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Shards with unrepaired quarantined blocks are excluded: their holes
    // are not final (repair may yet reinstate the bytes), so they must not
    // be frozen into a merged shard. Tombstoned-only quarantines are fine —
    // those holes are accepted and carried through verbatim.
    std::set<uint64_t> excluded;
    for (const ShardInfo& s : shards_) {
      if (!s.live() || !s.sealed || s.empty()) {
        continue;
      }
      bool pending = false;
      auto it = open_.find(s.id);
      if (it != open_.end()) {
        for (const QuarantineEntry& e : it->second->quarantine().entries) {
          if (!e.tombstoned) {
            pending = true;
            break;
          }
        }
      } else {
        Result<QuarantineSet> q =
            LoadQuarantine(JoinPath(root_, s.dir_name), options_.archive.env);
        if (!q.ok()) {
          pending = true;  // unreadable sidecar: treat as not-compactable
        } else {
          for (const QuarantineEntry& e : q->entries) {
            if (!e.tombstoned) {
              pending = true;
              break;
            }
          }
        }
      }
      if (pending) {
        excluded.insert(s.id);
        ++report.skipped_quarantined;
      }
    }
    std::vector<CompactionRun> runs = PlanCompaction(
        shards_, policy, storage_env()->NowNanos(), excluded);
    report.runs_planned = runs.size();
    planned_generation = generation_;
    for (CompactionRun& run : runs) {
      Planned p;
      p.run = std::move(run);
      for (uint64_t id : p.run.shard_ids) {
        for (const ShardInfo& s : shards_) {
          if (s.id == id) {
            p.sources.push_back(s);
            break;
          }
        }
      }
      planned.push_back(std::move(p));
    }
  }

  for (const Planned& p : planned) {
    const size_t committed_before = report.merges_committed;
    Status status =
        CompactOneRun(p.run, p.sources, planned_generation, &report);
    if (!status.ok()) {
      ++report.runs_aborted;
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++compaction_totals_.failures;
      }
      if (options_.archive.metrics != nullptr) {
        options_.archive.metrics->GetOrCreate("set.compaction.failures")
            ->Increment();
      }
      report.fatal = status;
      EmitEvent("compaction.run", status);
      break;  // a failed (or kill-aborted) run ends the pass; retried later
    }
    if (report.merges_committed > committed_before) {
      EmitEvent("compaction.merge", OkStatus());
    }
  }
  return report;
}

Status ArchiveSet::CompactOneRun(const CompactionRun& run,
                                 const std::vector<ShardInfo>& sources,
                                 uint64_t planned_generation,
                                 SetCompactionReport* report) {
  // Build phase — no set lock held: queries and appends proceed against the
  // sources while the merged shard grows in its staging dir.
  const std::string staging = CompactionStagingDirName();
  const std::string staging_path = JoinPath(root_, staging);
  auto remove_staging = [&] { RemoveTreeBestEffort(staging_path); };
  Result<MergedShardBuild> build =
      BuildMergedShard(root_, staging, sources, options_.archive);
  if (!build.ok()) {
    remove_staging();
    return build.status();
  }
  if (Status killed = MaybeKill(SetKillPoint::kCompactStaged); !killed.ok()) {
    return killed;  // staging dir lingers exactly like a crash; Open sweeps it
  }

  // Commit phase — under the set lock, so it is atomic w.r.t. queries: a
  // query sees all sources (before) or only the merged shard (after), never
  // both, never neither.
  std::lock_guard<std::mutex> lock(mu_);
  if (generation_ != planned_generation) {
    // The manifest moved under the build (an append widened a ts range, a
    // roll sealed a shard, retention expired something, …). The plan is
    // still good iff every source is exactly as planned: present, sealed,
    // live, same base. Any miss → a newer manifest won; abort, do not
    // clobber.
    for (const ShardInfo& want : sources) {
      const ShardInfo* now = nullptr;
      for (const ShardInfo& s : shards_) {
        if (s.id == want.id) {
          now = &s;
          break;
        }
      }
      if (now == nullptr || !now->live() || !now->sealed ||
          now->line_base != want.line_base) {
        remove_staging();
        ++report->runs_aborted;
        return OkStatus();  // benign: retention or a racing writer won
      }
    }
  }

  // Rename staging to its final shard name. Still uncommitted: a crash
  // before the manifest rewrite leaves an unreferenced shard dir, which
  // Open's orphan sweep removes.
  const uint64_t id = next_shard_id_;
  const std::string dir_name = ShardDirName(id, run.tenant);
  StorageEnv* env = storage_env();
  if (Status s = env->Rename(staging_path, JoinPath(root_, dir_name));
      !s.ok()) {
    remove_staging();
    return Status(s.code(), "compaction: rename staging dir: " + s.message());
  }
  (void)env->SyncDir(root_);
  if (Status killed = MaybeKill(SetKillPoint::kCompactShardRenamed);
      !killed.ok()) {
    return killed;  // orphan shard dir; Open sweeps it
  }

  ShardInfo merged;
  merged.id = id;
  merged.tenant = run.tenant;
  merged.dir_name = dir_name;
  merged.window_start_ns = UINT64_MAX;
  merged.window_end_ns = 0;
  merged.line_base = sources.front().line_base;
  merged.line_span = sources.back().line_base + sources.back().line_span -
                     sources.front().line_base;
  merged.lines = build->lines;
  merged.raw_bytes = build->raw_bytes;
  merged.stored_bytes = build->stored_bytes;
  merged.min_ts_ns = build->min_ts_ns;
  merged.max_ts_ns = build->max_ts_ns;
  merged.sealed = true;
  for (const ShardInfo& src : sources) {
    merged.window_start_ns = std::min(merged.window_start_ns, src.window_start_ns);
    merged.window_end_ns = std::max(merged.window_end_ns, src.window_end_ns);
  }

  // THE commit point: one manifest rewrite inserts the merged entry
  // (immediately before its first source, keeping line bases non-decreasing
  // in manifest order) and marks every source superseded_by=<id>.
  const std::vector<ShardInfo> shards_backup = shards_;
  const std::map<std::string, size_t> active_backup = active_;
  size_t insert_at = shards_.size();
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (shards_[i].id == sources.front().id) {
      insert_at = i;
      break;
    }
  }
  shards_.insert(shards_.begin() + insert_at, merged);
  for (const ShardInfo& src : sources) {
    for (ShardInfo& s : shards_) {
      if (s.id == src.id) {
        s.superseded_by = id;
        break;
      }
    }
  }
  next_shard_id_ = id + 1;
  for (auto& [tenant, index] : active_) {
    if (index >= insert_at) {
      ++index;  // the insertion shifted everything at and after it
    }
  }
  Status wrote = WriteSetManifestLocked();
  if (!wrote.ok()) {
    shards_ = shards_backup;
    active_ = active_backup;
    next_shard_id_ = id;
    RemoveTreeBestEffort(JoinPath(root_, dir_name));
    return wrote;
  }

  ++report->merges_committed;
  report->shards_merged += sources.size();
  report->merged_ids.push_back(id);
  ++compaction_totals_.merges;
  compaction_totals_.shards_merged += sources.size();
  if (options_.archive.metrics != nullptr) {
    options_.archive.metrics->GetOrCreate("set.compaction.merges")
        ->Increment();
    options_.archive.metrics->GetOrCreate("set.compaction.shards_merged")
        ->Add(sources.size());
  }
  if (Status killed = MaybeKill(SetKillPoint::kCompactManifestWritten);
      !killed.ok()) {
    return killed;  // source dirs linger; Open finishes the removal
  }

  // GC: drop handles and directories of the superseded sources. Queries
  // already see only the merged shard (the manifest said so under this same
  // lock), so nothing can touch these handles again.
  for (const ShardInfo& src : sources) {
    open_.erase(src.id);
    stats_stale_.erase(src.id);
    if (RemoveTreeBestEffort(JoinPath(root_, src.dir_name))) {
      ++report->dirs_removed;
    }
  }
  if (Status killed = MaybeKill(SetKillPoint::kCompactSourcesRemoved);
      !killed.ok()) {
    return killed;
  }
  return OkStatus();
}

ArchiveSet::CompactionTotals ArchiveSet::compaction_totals() const {
  std::lock_guard<std::mutex> lock(mu_);
  return compaction_totals_;
}

// ---------------------------------------------------------------------------
// Janitor
// ---------------------------------------------------------------------------

void ArchiveSet::EmitEvent(const char* what, const Status& status) {
  if (!options_.event_log) {
    return;
  }
  std::string line = "{\"event\":";
  AppendJsonString(&line, what);
  line += ",\"ok\":";
  line += status.ok() ? "true" : "false";
  if (!status.ok()) {
    line += ",\"error\":";
    AppendJsonString(&line, status.ToString());
  }
  line += "}";
  options_.event_log(line);
}

void ArchiveSet::JanitorPass(bool compaction) {
  // Every step runs even when an earlier one fails (repair is most useful
  // exactly when retention or compaction hit trouble), and every failure is
  // counted, kept, and logged — never swallowed.
  struct Step {
    const char* name;
    Status status;
  };
  std::vector<Step> steps;
  {
    Result<SetRetentionReport> retention =
        RunRetention(storage_env()->NowNanos());
    steps.push_back({"janitor.retention",
                     retention.ok() ? retention->fatal : retention.status()});
  }
  steps.push_back({"janitor.repair", RepairAll().fatal});
  if (compaction) {
    // Mutual exclusion with retention is structural: both mutate shard
    // state under mu_, and a compaction commit whose sources retention
    // expired mid-build aborts on generation revalidation.
    steps.push_back({"janitor.compaction", Compact().fatal});
  }

  size_t errors = 0;
  std::string last_error;
  for (const Step& step : steps) {
    if (step.status.ok()) {
      continue;
    }
    ++errors;
    last_error = std::string(step.name) + ": " + step.status.ToString();
    EmitEvent(step.name, step.status);
    if (options_.archive.metrics != nullptr) {
      options_.archive.metrics->GetOrCreate("set.janitor.errors")->Increment();
    }
  }
  if (options_.archive.metrics != nullptr) {
    options_.archive.metrics->GetOrCreate("set.janitor.passes")->Increment();
  }
  std::lock_guard<std::mutex> lock(janitor_mu_);
  ++janitor_passes_;
  janitor_errors_ += errors;
  if (errors != 0) {
    janitor_last_error_ = std::move(last_error);
  }
}

void ArchiveSet::StartJanitor(uint64_t interval_ns) {
  JanitorOptions options;
  options.interval_ns = interval_ns;
  StartJanitor(options);
}

void ArchiveSet::StartJanitor(const JanitorOptions& options) {
  std::lock_guard<std::mutex> lock(janitor_mu_);
  if (janitor_running_) {
    return;  // idempotent: the first caller's cadence wins
  }
  JanitorOptions opts = options;
  if (opts.interval_ns < kMinJanitorIntervalNs) {
    opts.interval_ns = kMinJanitorIntervalNs;  // an interval of 0 must not
                                               // become a busy spin
  }
  // The stop flag is shared with (and only with) the thread it stops: a
  // StopJanitor racing a fresh StartJanitor can never leave a stale thread
  // running against a re-armed flag.
  auto stop = std::make_shared<bool>(false);
  janitor_stop_ = stop;
  janitor_running_ = true;
  janitor_ = std::thread([this, opts, stop] {
    std::unique_lock<std::mutex> lock(janitor_mu_);
    bool first = true;
    while (!*stop) {
      if (!(first && opts.run_immediately)) {
        janitor_cv_.wait_for(lock, std::chrono::nanoseconds(opts.interval_ns),
                             [&] { return *stop; });
        if (*stop) {
          break;
        }
      }
      first = false;
      lock.unlock();
      JanitorPass(opts.compaction);
      lock.lock();
    }
  });
}

void ArchiveSet::StopJanitor() {
  std::thread doomed;
  {
    std::lock_guard<std::mutex> lock(janitor_mu_);
    if (!janitor_running_) {
      return;  // concurrent StopJanitor calls: the first one owns the join
    }
    janitor_running_ = false;
    if (janitor_stop_ != nullptr) {
      *janitor_stop_ = true;
    }
    doomed = std::move(janitor_);
  }
  janitor_cv_.notify_all();
  if (doomed.joinable()) {
    doomed.join();
  }
}

ArchiveSet::JanitorStatus ArchiveSet::janitor_status() const {
  std::lock_guard<std::mutex> lock(janitor_mu_);
  JanitorStatus status;
  status.running = janitor_running_;
  status.passes = janitor_passes_;
  status.errors = janitor_errors_;
  status.last_error = janitor_last_error_;
  return status;
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

std::vector<ShardInfo> ArchiveSet::shards() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shards_;
}

size_t ArchiveSet::live_shard_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const ShardInfo& s : shards_) {
    if (s.live()) {
      ++n;
    }
  }
  return n;
}

size_t ArchiveSet::tenant_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> tenants;
  for (const ShardInfo& s : shards_) {
    if (!s.live()) {
      continue;
    }
    if (std::find(tenants.begin(), tenants.end(), s.tenant) == tenants.end()) {
      tenants.push_back(s.tenant);
    }
  }
  return tenants.size();
}

uint64_t ArchiveSet::total_lines() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = 0;
  for (const ShardInfo& s : shards_) {
    if (s.live()) {
      n += s.lines;
    }
  }
  return n;
}

uint64_t ArchiveSet::total_raw_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = 0;
  for (const ShardInfo& s : shards_) {
    if (s.live()) {
      n += s.raw_bytes;
    }
  }
  return n;
}

uint64_t ArchiveSet::total_stored_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = 0;
  for (const ShardInfo& s : shards_) {
    if (s.live()) {
      n += s.stored_bytes;
    }
  }
  return n;
}

}  // namespace loggrep
