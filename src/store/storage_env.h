// StorageEnv: the pluggable I/O backend every durable read, write, rename
// and sync in the store goes through.
//
// LogGrep's deployment target is cheap cloud storage, where I/O fails,
// stalls and throttles as a matter of course — a perfect local filesystem is
// the exception, not the rule. Routing all storage traffic through one
// virtual interface buys three things:
//
//   1. PosixStorageEnv — the real thing: errno-faithful reads (NOT_FOUND vs
//      PERMISSION_DENIED vs IO_ERROR), durable fsync of files *and* parent
//      directories, a monotonic clock.
//   2. LatencyStorageEnv — a wrapper that charges a configurable (jittered)
//      latency per operation, approximating an object store's RTT so cache
//      and retry behavior can be studied without a network.
//   3. FaultInjectingStorageEnv — a deterministic, seeded chaos backend:
//      probabilistic or scheduled (fail-the-nth-call) read/write/rename/sync
//      failures, transient-vs-permanent fault budgets per path, torn writes
//      that persist a prefix before failing, and a virtual clock so retry
//      backoff and deadline budgets are testable in zero wall time.
//
// The retry policy that consumes this interface lives in src/store/retry.h;
// the quarantine/degraded-query machinery on top lives in
// src/store/quarantine.h and LogArchive.
#ifndef SRC_STORE_STORAGE_ENV_H_
#define SRC_STORE_STORAGE_ENV_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/result.h"
#include "src/common/rng.h"

namespace loggrep {

// Operation kinds, used by fault schedules and per-op metrics.
enum class StorageOp : uint8_t {
  kRead = 0,
  kWrite,
  kRename,
  kRemove,
  kSyncFile,
  kSyncDir,
};
inline constexpr size_t kNumStorageOps = 6;
const char* StorageOpName(StorageOp op);

class StorageEnv {
 public:
  virtual ~StorageEnv() = default;

  // Whole-file read. Errors are errno-faithful: kNotFound only when the
  // entity truly does not exist, kPermissionDenied when it exists but is
  // unreadable, kIOError/kUnavailable for device-level failures.
  virtual Result<std::string> ReadFile(const std::string& path) = 0;

  // Direct (non-atomic) whole-file write.
  virtual Status WriteFile(const std::string& path, std::string_view data) = 0;

  // Atomic on POSIX filesystems when from/to share a directory.
  virtual Status Rename(const std::string& from, const std::string& to) = 0;

  // Removes a regular file; kNotFound when absent.
  virtual Status RemoveFile(const std::string& path) = 0;

  // Durability barriers. SyncFile flushes a file's data to stable storage;
  // SyncDir flushes a directory entry (required after rename for the new
  // name itself to survive power loss). Tests inject counting/failing
  // implementations of these — this is the "injectable fsync hook".
  virtual Status SyncFile(const std::string& path) = 0;
  virtual Status SyncDir(const std::string& dir) = 0;

  virtual bool FileExists(const std::string& path) = 0;

  // Clock + sleep, so retry backoff and deadline budgets are injectable.
  // PosixStorageEnv uses the real monotonic clock; FaultInjectingStorageEnv
  // substitutes a virtual clock that SleepNanos advances instantly.
  virtual uint64_t NowNanos() = 0;
  virtual void SleepNanos(uint64_t nanos) = 0;

  virtual const char* name() const = 0;
};

// The process-wide real-POSIX env (never null; callers passing a null
// StorageEnv* mean "use this").
StorageEnv* DefaultStorageEnv();
// `env` if non-null, else DefaultStorageEnv().
inline StorageEnv* EnvOrDefault(StorageEnv* env) {
  return env != nullptr ? env : DefaultStorageEnv();
}

// ---------------------------------------------------------------------------
// PosixStorageEnv
// ---------------------------------------------------------------------------

class PosixStorageEnv : public StorageEnv {
 public:
  Result<std::string> ReadFile(const std::string& path) override;
  Status WriteFile(const std::string& path, std::string_view data) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Status SyncFile(const std::string& path) override;
  Status SyncDir(const std::string& dir) override;
  bool FileExists(const std::string& path) override;
  uint64_t NowNanos() override;
  void SleepNanos(uint64_t nanos) override;
  const char* name() const override { return "posix"; }
};

// ---------------------------------------------------------------------------
// LatencyStorageEnv
// ---------------------------------------------------------------------------

struct LatencyOptions {
  uint64_t per_op_nanos = 0;      // charged on every operation
  uint64_t jitter_nanos = 0;      // + uniform[0, jitter) per operation
  uint64_t per_byte_picos = 0;    // + bytes * picos / 1000 (bandwidth model)
  uint64_t seed = 0x1A7E11C7ull;  // jitter stream
};

// Simulates a slow backend by sleeping (through the base env's SleepNanos,
// so a virtual-clock base makes the simulation free) before delegating.
class LatencyStorageEnv : public StorageEnv {
 public:
  explicit LatencyStorageEnv(LatencyOptions options,
                             StorageEnv* base = nullptr);

  Result<std::string> ReadFile(const std::string& path) override;
  Status WriteFile(const std::string& path, std::string_view data) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Status SyncFile(const std::string& path) override;
  Status SyncDir(const std::string& dir) override;
  bool FileExists(const std::string& path) override;
  uint64_t NowNanos() override;
  void SleepNanos(uint64_t nanos) override;
  const char* name() const override { return "latency"; }

 private:
  void Charge(uint64_t payload_bytes);

  LatencyOptions options_;
  StorageEnv* base_;
  std::mutex mu_;
  Rng rng_;
};

// ---------------------------------------------------------------------------
// FaultInjectingStorageEnv
// ---------------------------------------------------------------------------

struct FaultOptions {
  uint64_t seed = 1;

  // Probabilistic fault storm: each operation of the kind fails with the
  // given probability (before touching the base env, except torn writes).
  double read_fail_p = 0;
  double write_fail_p = 0;
  double rename_fail_p = 0;
  double sync_fail_p = 0;

  // Fraction of injected *write* faults that tear: a seeded prefix of the
  // data is persisted through the base env before the failure is reported.
  double torn_write_p = 0;

  // Cap on probabilistic faults injected per path. A finite cap below the
  // retry attempt limit makes every fault storm *transient*: retries always
  // converge. Scheduled (FailNext/FailNth) and permanent faults ignore it.
  uint32_t max_faults_per_path = UINT32_MAX;

  // Status code injected for probabilistic faults.
  StatusCode fault_code = StatusCode::kUnavailable;

  // When true (default), NowNanos is a virtual clock advanced by SleepNanos
  // (and by 1us per operation) — retry backoff costs zero wall time.
  bool virtual_clock = true;

  // Optional registry for "storage.fault.*" counters. Borrowed.
  MetricsRegistry* metrics = nullptr;
};

// Deterministic seeded chaos backend. Thread-safe (ParallelQuery workers
// share one instance).
class FaultInjectingStorageEnv : public StorageEnv {
 public:
  explicit FaultInjectingStorageEnv(FaultOptions options,
                                    StorageEnv* base = nullptr);

  Result<std::string> ReadFile(const std::string& path) override;
  Status WriteFile(const std::string& path, std::string_view data) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Status SyncFile(const std::string& path) override;
  Status SyncDir(const std::string& dir) override;
  bool FileExists(const std::string& path) override;
  uint64_t NowNanos() override;
  void SleepNanos(uint64_t nanos) override;
  const char* name() const override { return "fault-injecting"; }

  // --- Scheduled faults (deterministic unit-test control). ---

  // Fails the next `count` operations of kind `op` with `code`.
  void FailNext(StorageOp op, uint32_t count,
                StatusCode code = StatusCode::kUnavailable);
  // Fails exactly the nth future call (1-based) of kind `op` — the classic
  // "EIO on the nth call" schedule.
  void FailNth(StorageOp op, uint32_t nth,
               StatusCode code = StatusCode::kIOError);

  // --- Permanent faults. ---

  // Every operation whose path contains `substring` fails with `code`,
  // forever (until cleared). Rename checks both endpoints.
  void AddPermanentFault(std::string substring,
                         StatusCode code = StatusCode::kIOError);
  void ClearPermanentFaults();

  // --- Introspection. ---

  uint64_t faults_injected() const;
  uint64_t calls(StorageOp op) const;
  uint64_t torn_writes() const;

 private:
  struct PermanentFault {
    std::string substring;
    StatusCode code;
  };

  // Returns the fault to inject for (op, path), or OkStatus(). Caller holds
  // mu_. `payload` is the write payload for torn-write simulation (the tear
  // itself happens in WriteFile after this returns non-OK with torn=true).
  Status PickFault(StorageOp op, const std::string& path, bool* torn);
  void CountFault(StorageOp op);

  FaultOptions options_;
  StorageEnv* base_;

  mutable std::mutex mu_;
  Rng rng_;
  uint64_t virtual_now_ns_ = 1;  // virtual clock (strictly monotonic)
  uint64_t call_counts_[kNumStorageOps] = {};
  uint64_t total_calls_[kNumStorageOps] = {};  // includes scheduled lookups
  uint64_t faults_injected_ = 0;
  uint64_t torn_writes_ = 0;
  std::map<std::string, uint32_t> faults_per_path_;
  // Scheduled faults per op kind: pairs of (remaining count, code) for
  // FailNext, plus absolute call indices for FailNth.
  struct Schedule {
    uint32_t fail_next = 0;
    StatusCode fail_next_code = StatusCode::kUnavailable;
    std::vector<std::pair<uint64_t, StatusCode>> fail_at_call;  // 1-based
  };
  Schedule schedules_[kNumStorageOps];
  std::vector<PermanentFault> permanent_;
  Counter* fault_counters_[kNumStorageOps] = {};
};

}  // namespace loggrep

#endif  // SRC_STORE_STORAGE_ENV_H_
