// ShardRouter: the pure routing/pruning arithmetic of the ArchiveSet layer.
//
// An ArchiveSet partitions ingest by (tenant, time-window): every appended
// block lands in the active shard of its tenant, and a shard covers one
// aligned time window. This header holds the side-effect-free half of that
// story — tenant name sanitization (tenant strings become directory-name
// components), window alignment math, the roll decision, and the shard-level
// predicate pruning a query runs before any shard directory is even opened.
// Keeping it free of I/O makes the routing rules unit-testable in
// microseconds and keeps ArchiveSet's crash-safety logic separate from its
// arithmetic.
#ifndef SRC_STORE_SHARD_ROUTER_H_
#define SRC_STORE_SHARD_ROUTER_H_

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace loggrep {

// Sentinel for ShardInfo::superseded_by: the shard has not been compacted
// away. (0 is a valid shard id, so the sentinel is all-ones.)
inline constexpr uint64_t kNotSuperseded = UINT64_MAX;

// One shard's routing-relevant identity, as recorded in set_manifest.json.
// (ArchiveSet keeps richer state; the router only sees what pruning needs.)
struct ShardInfo {
  uint64_t id = 0;
  std::string tenant;       // raw tenant name (pre-sanitization)
  std::string dir_name;     // directory under the set root ("shard-...")
  uint64_t window_start_ns = 0;
  uint64_t window_end_ns = UINT64_MAX;  // exclusive; UINT64_MAX = unbounded
  // Global line-number base: shard-local line L is global line
  // line_base + L. Bases are allocated once and never reused — so global
  // line numbers stay stable after retention removes interior shards.
  // Freshly rolled shards get strictly increasing bases; a merged shard
  // inherits its first source's base (the merge preserves every source
  // line's global number), so bases are non-decreasing in manifest order.
  uint64_t line_base = 0;
  // Stats. For sealed shards these are final and exact; for the active
  // shard they are advisory (refreshed on append, recomputed from the
  // archive itself after a crash).
  uint64_t lines = 0;
  uint64_t raw_bytes = 0;
  uint64_t stored_bytes = 0;
  // Observed event-timestamp range, inclusive. Maintained conservatively:
  // the manifest write that widens the range happens *before* the append it
  // covers, so a crash can only leave the range too wide, never too narrow —
  // which keeps time pruning sound. Empty shards keep the
  // (UINT64_MAX, 0) sentinel.
  uint64_t min_ts_ns = UINT64_MAX;
  uint64_t max_ts_ns = 0;
  bool sealed = false;   // no further appends; stats and ts range are final
  bool expired = false;  // retention tombstone: data removed, entry kept
                         // forever so line bases of later shards never shift
  // Compaction tombstone: this shard's blocks now live (at the same global
  // line numbers) inside merged shard `superseded_by`. Like `expired`, the
  // entry is kept forever so later line bases never shift; unlike `expired`
  // the data is still queryable — through the merged shard.
  uint64_t superseded_by = kNotSuperseded;
  // Width of the global line-number span this shard owns. Freshly rolled
  // shards own kShardLineSpan; a merged shard owns the union of its
  // sources' spans (last source's base + span - first source's base).
  uint64_t line_span = 0;

  bool empty() const { return lines == 0; }
  bool superseded() const { return superseded_by != kNotSuperseded; }
  // A shard a query may visit: not a retention tombstone, not compacted
  // away. Everything that enumerates "real" shards filters on this.
  bool live() const { return !expired && !superseded(); }
};

// Optional shard-level predicates a federated query carries. Absent fields
// impose nothing. The time range is inclusive on both ends and matches
// against the shard's *event-timestamp* range, not its window bounds (the
// window is where data was routed; min/max_ts is what is actually there).
struct SetQueryPredicate {
  std::optional<std::string> tenant;
  uint64_t from_ns = 0;
  uint64_t to_ns = UINT64_MAX;

  bool constrains_time() const { return from_ns > 0 || to_ns < UINT64_MAX; }
};

// Tenant string -> directory-safe component: [A-Za-z0-9_-] pass through,
// every other byte becomes '_', the result is truncated to 48 bytes, and an
// empty tenant maps to "default". Distinct tenants may collide after
// sanitization; shard directories stay unique regardless because the shard
// id is part of the name.
std::string SanitizeTenant(std::string_view tenant);

// "shard-<id, 6+ digits>-<sanitized tenant>".
std::string ShardDirName(uint64_t id, std::string_view tenant);

// True when `name` looks like a shard directory this layer created (used by
// the orphan sweep on Open; never matches set_manifest.json or foreign
// files).
bool LooksLikeShardDir(std::string_view name);

// Aligned window start for an event timestamp. span_ns == 0 means a single
// unbounded window (all time routes to one shard per tenant).
uint64_t WindowStartFor(uint64_t ts_ns, uint64_t span_ns);

// Why Route() decided a new shard is needed (also the explain vocabulary
// for roll decisions in tests).
enum class RollReason {
  kNone,          // append goes to the existing active shard
  kNoActive,      // tenant has no active shard yet
  kWindowMoved,   // ts falls outside the active shard's window
  kSizeCut,       // active shard reached max_shard_bytes of raw input
  kLineSpanFull,  // active shard would overflow its global line-number span
};
const char* RollReasonName(RollReason reason);

// Decides whether an append of `append_lines` lines at event time `ts_ns`
// may land in `active` (the tenant's current unsealed shard; null when the
// tenant has none). `max_shard_bytes` == 0 disables the size cut;
// `line_span` is the per-shard global line budget (ArchiveSet passes
// kShardLineSpan).
RollReason DecideRoll(const ShardInfo* active, uint64_t ts_ns,
                      uint64_t append_lines, uint64_t span_ns,
                      uint64_t max_shard_bytes, uint64_t line_span);

// Shard-level pruning: returns an empty string when the query must visit
// `shard`, otherwise a human-readable reason naming the rejecting predicate
// (surfaced verbatim in SetExplain). Soundness: a shard is only pruned on
// evidence that is exact-or-conservative — the tenant label, the sealed
// emptiness, or a sealed shard's conservative [min_ts, max_ts] range. An
// unsealed shard is never time-pruned (its recorded range may predate a
// crash).
std::string ShardPruneReason(const ShardInfo& shard,
                             const SetQueryPredicate& pred);

// ---------------------------------------------------------------------------
// Compaction planning (pure; ArchiveSet::Compact executes the plan).

// Thresholds deciding which sealed shards are worth merging. Defaults suit
// the janitor; tests and the CLI tighten them.
struct CompactionPolicy {
  // A run shorter than this is left alone (merging one shard is a no-op and
  // merging pairs too eagerly churns I/O for little fan-out win).
  size_t min_run_shards = 2;
  // At most this many sources per merged shard, so a single merge stays a
  // bounded amount of I/O and a bounded crash-recovery window.
  size_t max_run_shards = 8;
  // Size threshold: only shards with raw_bytes below this are candidates —
  // already-large (typically already-merged) shards are left alone.
  // 0 = no size threshold.
  uint64_t max_source_raw_bytes = 0;
  // Byte cap on one merged shard's raw input. 0 = uncapped.
  uint64_t max_run_raw_bytes = 0;
  // Age threshold: a shard is a candidate only once its newest event is at
  // least this old relative to `now_ns` (recently sealed shards may still
  // be hot). 0 = no age gate.
  uint64_t min_idle_ns = 0;
};

// One planned merge: adjacent candidate shards of a single tenant, in
// line_base order (== manifest order).
struct CompactionRun {
  std::string tenant;
  std::vector<uint64_t> shard_ids;
};

// Selects runs of adjacent sealed same-tenant shards worth merging.
// A candidate is sealed, live (neither expired nor superseded), non-empty,
// not in `excluded_ids` (ArchiveSet passes shards with unrepaired
// quarantined blocks — their holes are not final, so their bytes must not
// be frozen into a merged shard), and passes the policy's size/age gates.
// Adjacency is within a tenant's live shards in manifest order: shards of
// *other* tenants interleaved between two candidates do not break a run,
// but a non-candidate shard of the same tenant does. Runs are disjoint and
// returned in manifest order; each honors max_run_shards/max_run_raw_bytes
// and contains at least min_run_shards shards.
std::vector<CompactionRun> PlanCompaction(const std::vector<ShardInfo>& shards,
                                          const CompactionPolicy& policy,
                                          uint64_t now_ns,
                                          const std::set<uint64_t>& excluded_ids);

}  // namespace loggrep

#endif  // SRC_STORE_SHARD_ROUTER_H_
