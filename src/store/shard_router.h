// ShardRouter: the pure routing/pruning arithmetic of the ArchiveSet layer.
//
// An ArchiveSet partitions ingest by (tenant, time-window): every appended
// block lands in the active shard of its tenant, and a shard covers one
// aligned time window. This header holds the side-effect-free half of that
// story — tenant name sanitization (tenant strings become directory-name
// components), window alignment math, the roll decision, and the shard-level
// predicate pruning a query runs before any shard directory is even opened.
// Keeping it free of I/O makes the routing rules unit-testable in
// microseconds and keeps ArchiveSet's crash-safety logic separate from its
// arithmetic.
#ifndef SRC_STORE_SHARD_ROUTER_H_
#define SRC_STORE_SHARD_ROUTER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace loggrep {

// One shard's routing-relevant identity, as recorded in set_manifest.json.
// (ArchiveSet keeps richer state; the router only sees what pruning needs.)
struct ShardInfo {
  uint64_t id = 0;
  std::string tenant;       // raw tenant name (pre-sanitization)
  std::string dir_name;     // directory under the set root ("shard-...")
  uint64_t window_start_ns = 0;
  uint64_t window_end_ns = UINT64_MAX;  // exclusive; UINT64_MAX = unbounded
  // Global line-number base: shard-local line L is global line
  // line_base + L. Bases are allocated once, strictly increase with id, and
  // are never reused — so global line numbers stay stable after retention
  // removes interior shards.
  uint64_t line_base = 0;
  // Stats. For sealed shards these are final and exact; for the active
  // shard they are advisory (refreshed on append, recomputed from the
  // archive itself after a crash).
  uint64_t lines = 0;
  uint64_t raw_bytes = 0;
  uint64_t stored_bytes = 0;
  // Observed event-timestamp range, inclusive. Maintained conservatively:
  // the manifest write that widens the range happens *before* the append it
  // covers, so a crash can only leave the range too wide, never too narrow —
  // which keeps time pruning sound. Empty shards keep the
  // (UINT64_MAX, 0) sentinel.
  uint64_t min_ts_ns = UINT64_MAX;
  uint64_t max_ts_ns = 0;
  bool sealed = false;   // no further appends; stats and ts range are final
  bool expired = false;  // retention tombstone: data removed, entry kept
                         // forever so line bases of later shards never shift

  bool empty() const { return lines == 0; }
};

// Optional shard-level predicates a federated query carries. Absent fields
// impose nothing. The time range is inclusive on both ends and matches
// against the shard's *event-timestamp* range, not its window bounds (the
// window is where data was routed; min/max_ts is what is actually there).
struct SetQueryPredicate {
  std::optional<std::string> tenant;
  uint64_t from_ns = 0;
  uint64_t to_ns = UINT64_MAX;

  bool constrains_time() const { return from_ns > 0 || to_ns < UINT64_MAX; }
};

// Tenant string -> directory-safe component: [A-Za-z0-9_-] pass through,
// every other byte becomes '_', the result is truncated to 48 bytes, and an
// empty tenant maps to "default". Distinct tenants may collide after
// sanitization; shard directories stay unique regardless because the shard
// id is part of the name.
std::string SanitizeTenant(std::string_view tenant);

// "shard-<id, 6+ digits>-<sanitized tenant>".
std::string ShardDirName(uint64_t id, std::string_view tenant);

// True when `name` looks like a shard directory this layer created (used by
// the orphan sweep on Open; never matches set_manifest.json or foreign
// files).
bool LooksLikeShardDir(std::string_view name);

// Aligned window start for an event timestamp. span_ns == 0 means a single
// unbounded window (all time routes to one shard per tenant).
uint64_t WindowStartFor(uint64_t ts_ns, uint64_t span_ns);

// Why Route() decided a new shard is needed (also the explain vocabulary
// for roll decisions in tests).
enum class RollReason {
  kNone,          // append goes to the existing active shard
  kNoActive,      // tenant has no active shard yet
  kWindowMoved,   // ts falls outside the active shard's window
  kSizeCut,       // active shard reached max_shard_bytes of raw input
  kLineSpanFull,  // active shard would overflow its global line-number span
};
const char* RollReasonName(RollReason reason);

// Decides whether an append of `append_lines` lines at event time `ts_ns`
// may land in `active` (the tenant's current unsealed shard; null when the
// tenant has none). `max_shard_bytes` == 0 disables the size cut;
// `line_span` is the per-shard global line budget (ArchiveSet passes
// kShardLineSpan).
RollReason DecideRoll(const ShardInfo* active, uint64_t ts_ns,
                      uint64_t append_lines, uint64_t span_ns,
                      uint64_t max_shard_bytes, uint64_t line_span);

// Shard-level pruning: returns an empty string when the query must visit
// `shard`, otherwise a human-readable reason naming the rejecting predicate
// (surfaced verbatim in SetExplain). Soundness: a shard is only pruned on
// evidence that is exact-or-conservative — the tenant label, the sealed
// emptiness, or a sealed shard's conservative [min_ts, max_ts] range. An
// unsealed shard is never time-pruned (its recorded range may predate a
// crash).
std::string ShardPruneReason(const ShardInfo& shard,
                             const SetQueryPredicate& pred);

}  // namespace loggrep

#endif  // SRC_STORE_SHARD_ROUTER_H_
