// Shard compaction: merging runs of small sealed same-tenant shards into one
// larger shard, online and crash-safely.
//
// The paper's compression ratio and the federation's shard-pruning win both
// decay as a tenant accumulates many tiny sealed shards (per-shard manifests
// and dictionaries, wider scatter-gather fan-out). Compaction merges such a
// run into one shard while preserving every source line's *global* line
// number: the merged shard takes the first source's line_base, and each
// source block is committed with a pre-set sparse first_line of
// (source.line_base - merged.line_base) + block.first_line — the exact
// backfill contract CommitCompressedBlock already honors. Block bytes are
// copied verbatim (stored_hash-verified, never recompressed, so content
// hashes and stamps stay authoritative); tombstoned holes are carried over
// as tombstoned holes.
//
// This header holds the side-effect-contained half: staging-dir naming (the
// build must never be mistaken for a committed shard) and the merged-shard
// builder. The swap protocol — rename, manifest rewrite marking sources
// superseded, source GC, kill points, generation revalidation — lives in
// ArchiveSet::Compact (archive_set.cc), which owns the manifest.
#ifndef SRC_STORE_COMPACTION_H_
#define SRC_STORE_COMPACTION_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/store/log_archive.h"
#include "src/store/shard_router.h"

namespace loggrep {

// "compacting-<pid>-<nonce>": unique per process lifetime, and structurally
// distinct from both shard dirs ("shard-<id>-...") and atomic-write temps
// ("*.tmp"), so neither the orphan-shard sweep nor the temp sweep can
// confuse a half-built merge with anything it owns.
std::string CompactionStagingDirName();
bool LooksLikeCompactionStagingDir(std::string_view name);

// What BuildMergedShard produced (the merged ShardInfo's stats; min/max ts
// come from the sources' conservative recorded ranges, which stay sound).
struct MergedShardBuild {
  uint64_t lines = 0;
  uint64_t raw_bytes = 0;
  uint64_t stored_bytes = 0;
  uint64_t min_ts_ns = UINT64_MAX;
  uint64_t max_ts_ns = 0;
  size_t blocks_copied = 0;
  size_t tombstones_carried = 0;
};

// Builds the merged shard for `sources` (line_base order; all sealed) at
// `staging_dir`. Every source block is re-committed at its original global
// line number relative to sources.front().line_base; bytes are verified
// against the source manifest's stored_hash before commit (a rotted source
// must abort the merge, not propagate). A source block that is quarantined
// but NOT tombstoned aborts the build — the caller's planner excludes such
// shards, so hitting one means the plan is stale. On any failure the caller
// removes the staging dir; this function only reports.
Result<MergedShardBuild> BuildMergedShard(const std::string& set_root,
                                          const std::string& staging_dir,
                                          const std::vector<ShardInfo>& sources,
                                          const ArchiveOptions& options);

// One Compact() call's outcome.
struct SetCompactionReport {
  size_t runs_planned = 0;
  size_t merges_committed = 0;    // merged shards now in the manifest
  size_t shards_merged = 0;       // source shards superseded
  size_t dirs_removed = 0;        // source dirs GC'd after the commits
  size_t runs_aborted = 0;        // failed builds + stale-plan revalidations
  size_t skipped_quarantined = 0; // shards excluded for unrepaired blocks
  std::vector<uint64_t> merged_ids;
  Status fatal = OkStatus();      // first build/commit failure

  bool ok() const { return fatal.ok(); }
  std::string Summary() const;
};

}  // namespace loggrep

#endif  // SRC_STORE_COMPACTION_H_
