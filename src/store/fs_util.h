// Filesystem helpers shared by the archive store and the ingest pipeline.
//
// All durable writes in the store go through WriteFileAtomic: bytes land in
// `<path>.tmp` first and are renamed over `<path>` only after a successful
// full write, so a crash at any instant leaves either the old file, the new
// file, or the old file plus a stray `*.tmp` — never a torn file. Stray temps
// are garbage-collected by SweepTempFiles on archive open.
#ifndef SRC_STORE_FS_UTIL_H_
#define SRC_STORE_FS_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"

namespace loggrep {

// Whole-file read; NotFound when the file cannot be opened.
Result<std::string> ReadFileBytes(const std::string& path);

// Direct (non-atomic) whole-file write. Prefer WriteFileAtomic for anything
// a reader may observe mid-write.
Status WriteFileBytes(const std::string& path, std::string_view data);

// Crash-safe whole-file replace: write `<path>.tmp`, then rename over
// `<path>`. The rename is atomic on POSIX filesystems.
Status WriteFileAtomic(const std::string& path, std::string_view data);

// Deletes every regular file in `dir` whose name ends with `.tmp` (the
// droppings of interrupted WriteFileAtomic calls). Returns the paths removed.
std::vector<std::string> SweepTempFiles(const std::string& dir);

}  // namespace loggrep

#endif  // SRC_STORE_FS_UTIL_H_
