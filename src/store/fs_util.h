// Filesystem helpers shared by the archive store and the ingest pipeline.
//
// All durable writes in the store go through WriteFileAtomic: bytes land in
// a process-tagged temp file first (`<path>.<pid>-<nonce>.tmp`), are fsynced,
// and are renamed over `<path>` only after a successful full write — followed
// by an fsync of the parent directory so the *rename itself* survives power
// loss, not just process death. A crash at any instant leaves either the old
// file, the new file, or the old file plus a stray temp — never a torn file.
//
// Stray temps are garbage-collected by SweepTempFiles on archive open, with
// a liveness check: a temp registered by this process (ScopedTempFile) or
// named with the pid of another *live* process is an in-flight write by a
// concurrent ingestor and must not be yanked; everything else (legacy bare
// `*.tmp`, dead-pid temps, this process's abandoned temps) is a crash
// dropping and is removed.
//
// Every function takes an optional StorageEnv (null = the real POSIX env),
// so fault-injection tests drive these exact code paths.
#ifndef SRC_STORE_FS_UTIL_H_
#define SRC_STORE_FS_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"
#include "src/store/storage_env.h"

namespace loggrep {

// Whole-file read with errno-faithful errors: kNotFound only when the file
// truly does not exist; kPermissionDenied / kIOError / kUnavailable
// otherwise (the retry policy must not retry a true not-found, and recovery
// must not drop a block that is merely unreadable right now).
Result<std::string> ReadFileBytes(const std::string& path,
                                  StorageEnv* env = nullptr);

// Direct (non-atomic) whole-file write. Prefer WriteFileAtomic for anything
// a reader may observe mid-write.
Status WriteFileBytes(const std::string& path, std::string_view data,
                      StorageEnv* env = nullptr);

// Crash-safe whole-file replace: write a tagged temp, fsync it, rename over
// `<path>`, fsync the parent directory. The rename is atomic on POSIX
// filesystems; the syncs make "committed" mean "survives power loss".
Status WriteFileAtomic(const std::string& path, std::string_view data,
                       StorageEnv* env = nullptr);

// In-flight temp bookkeeping -------------------------------------------------

// Builds the tagged temp name for `path`: "<path>.<pid>-<nonce>.tmp". Each
// call yields a fresh nonce.
std::string MakeTempPath(const std::string& path);

// Registers a temp path as live (in-flight) for this process until the guard
// dies, so SweepTempFiles running concurrently in the same process (e.g. an
// archive Open during streaming ingest) never yanks it.
class ScopedTempFile {
 public:
  // Registers MakeTempPath(final_path).
  explicit ScopedTempFile(const std::string& final_path);
  ~ScopedTempFile();

  ScopedTempFile(const ScopedTempFile&) = delete;
  ScopedTempFile& operator=(const ScopedTempFile&) = delete;

  const std::string& path() const { return temp_path_; }

 private:
  std::string temp_path_;
};

// True when `temp_path` is registered live in this process (exposed for
// sweep + tests).
bool TempFileIsLive(const std::string& temp_path);

// Deletes stale `*.tmp` droppings of interrupted atomic writes in `dir`,
// skipping temps that are live in this process or owned by another live
// process (pid parsed from the tagged name). Returns the paths removed.
std::vector<std::string> SweepTempFiles(const std::string& dir,
                                        StorageEnv* env = nullptr);

// Recursively deletes `path` (file or directory tree), swallowing errors.
// Returns true when the tree is gone afterwards — either removed here or
// never present. Used by the garbage-collection paths (superseded shard
// dirs, abandoned compaction staging dirs, orphan shard dirs), where a
// failed removal must not fail the caller: the next Open retries the sweep.
bool RemoveTreeBestEffort(const std::string& path);

}  // namespace loggrep

#endif  // SRC_STORE_FS_UTIL_H_
