#include "src/store/retry.h"

#include <algorithm>

#include "src/common/hash.h"
#include "src/common/rng.h"
#include "src/common/trace.h"

namespace loggrep {

bool RetryableStatus(StatusCode code) {
  return code == StatusCode::kUnavailable || code == StatusCode::kIOError;
}

uint64_t RetryBudget::RemainingNanos() const {
  if (deadline_ns_ == 0) {
    return UINT64_MAX;
  }
  const uint64_t now = env_->NowNanos();
  return now >= deadline_ns_ ? 0 : deadline_ns_ - now;
}

namespace {

struct RetryCounters {
  Counter* attempts = nullptr;
  Counter* retries = nullptr;
  Counter* success_after_retry = nullptr;
  Counter* exhausted = nullptr;
  Counter* deadline_exceeded = nullptr;
  Counter* backoff_ns = nullptr;
};

RetryCounters ResolveCounters(MetricsRegistry* metrics) {
  RetryCounters c;
  if (metrics != nullptr) {
    c.attempts = metrics->GetOrCreate("storage.retry.attempts");
    c.retries = metrics->GetOrCreate("storage.retry.retries");
    c.success_after_retry =
        metrics->GetOrCreate("storage.retry.success_after_retry");
    c.exhausted = metrics->GetOrCreate("storage.retry.exhausted");
    c.deadline_exceeded =
        metrics->GetOrCreate("storage.retry.deadline_exceeded");
    c.backoff_ns = metrics->GetOrCreate("storage.retry.backoff_ns");
  }
  return c;
}

inline void Bump(Counter* counter, uint64_t delta = 1) {
  if (counter != nullptr) {
    counter->Add(delta);
  }
}

}  // namespace

Status RetryOp(StorageEnv* env, const RetryPolicy& policy,
               const RetryBudget* budget, const char* op_name,
               MetricsRegistry* metrics, const std::function<Status()>& op) {
  env = EnvOrDefault(env);
  const RetryCounters counters = ResolveCounters(metrics);
  const uint32_t max_attempts = std::max<uint32_t>(1, policy.max_attempts);
  // Decorrelated jitter state. Seeded from the policy seed and the op name
  // so two different op kinds never sleep in lockstep.
  Rng rng(policy.seed ^ Fnv1a64(op_name));
  uint64_t prev_sleep_ns = std::max<uint64_t>(1, policy.initial_backoff_ns);

  Status last = OkStatus();
  for (uint32_t attempt = 1; attempt <= max_attempts; ++attempt) {
    Bump(counters.attempts);
    {
      const TraceSpan span("storage.op", "storage", "attempt", attempt);
      last = op();
    }
    if (last.ok()) {
      if (attempt > 1) {
        Bump(counters.success_after_retry);
      }
      return last;
    }
    if (!RetryableStatus(last.code())) {
      return last;  // deterministic answer; retrying cannot change it
    }
    if (attempt == max_attempts) {
      break;
    }
    if (budget != nullptr && budget->Expired()) {
      Bump(counters.deadline_exceeded);
      return Status(last.code(),
                    std::string(op_name) + ": retry budget exhausted after " +
                        std::to_string(attempt) +
                        " attempt(s); last error: " + last.ToString());
    }
    // Decorrelated jitter: sleep = min(cap, uniform[base, 3 * prev]).
    const uint64_t base = std::max<uint64_t>(1, policy.initial_backoff_ns);
    const uint64_t hi = std::max<uint64_t>(base + 1, 3 * prev_sleep_ns);
    uint64_t sleep_ns = base + rng.NextBelow(hi - base);
    sleep_ns = std::min(sleep_ns, std::max<uint64_t>(1, policy.max_backoff_ns));
    if (budget != nullptr && !budget->unlimited()) {
      sleep_ns = std::min(sleep_ns, budget->RemainingNanos());
    }
    prev_sleep_ns = sleep_ns;
    Bump(counters.retries);
    Bump(counters.backoff_ns, sleep_ns);
    {
      const TraceSpan span("storage.retry_backoff", "storage", "attempt",
                           attempt);
      env->SleepNanos(sleep_ns);
    }
  }
  Bump(counters.exhausted);
  return Status(last.code(), std::string(op_name) + ": " +
                                 std::to_string(max_attempts) +
                                 " attempt(s) exhausted; last error: " +
                                 last.ToString());
}

Result<std::string> RetryReadFile(StorageEnv* env, const RetryPolicy& policy,
                                  const RetryBudget* budget,
                                  const std::string& path,
                                  MetricsRegistry* metrics) {
  env = EnvOrDefault(env);
  std::string bytes;
  Status s = RetryOp(env, policy, budget, "storage.read", metrics,
                     [env, &path, &bytes]() -> Status {
                       Result<std::string> r = env->ReadFile(path);
                       if (!r.ok()) {
                         return r.status();
                       }
                       bytes = std::move(*r);
                       return OkStatus();
                     });
  if (!s.ok()) {
    return s;
  }
  return bytes;
}

}  // namespace loggrep
