// ArchiveSet: a federation of LogArchive shards under one root directory,
// partitioned by (tenant, time-window).
//
// One LogArchive is one directory — MB-to-GB scale. The paper's setting is
// TB/day across many streams (§2, §8), which needs one more dimension:
// ArchiveSet owns many shards, routes every append to the active shard of
// its tenant (rolling to a new shard when the time window moves or the shard
// hits its size cut), and scatter-gathers queries across the shards that
// survive tenant/time-range pruning, merging per-shard results into one
// globally line-numbered answer.
//
// Crash safety follows the store's one discipline, lifted a level: the
// manifest-of-manifests `set_manifest.json` is the single commit point and
// every rewrite goes through WriteFileAtomic (tmp + fsync + rename + parent
// fsync, via the injectable StorageEnv). Ordering makes each transition safe:
//
//   roll       create shard dir + archive FIRST        [kShardCreated]
//              then one manifest rewrite (seal old +
//              add new)                                [kRollManifestWritten]
//              — a crash between the two leaves an orphan dir holding no
//                committed appends; Open sweeps it.
//   append     widen the shard's recorded ts range
//              in the manifest FIRST                   [kAppendManifestWritten]
//              then commit the block into the shard
//              — a crash between the two leaves the range too wide (pruning
//                stays sound) and stale advisory stats (Open recomputes
//                unsealed shard stats from the archive itself).
//   retention  mark entries expired in the manifest    [kRetentionManifest-
//              (THE commit point), then remove dirs     Written]
//              — a crash mid-removal is finished by Open; an expired entry
//                is never resurrected, and is kept in the manifest forever
//                so later shards' global line bases never shift.
//
// Global line numbering: shard `i` owns the half-open line range
// [line_base_i, line_base_i + kShardLineSpan); bases are allocated from a
// persisted counter and never reused. A hit at shard-local line L reports
// global line line_base + L — stable across retention, compaction, and
// reopen, and safely summable into 64 bits (2^24 shards of 2^40 lines).
//
// Degradation composes: one failing block inside a shard degrades that
// shard's result (PartialReport, PR 5); one failing *shard* degrades the
// federation the same way — the set answer carries exact hits from every
// healthy shard plus a report naming each hole, and the serving layer maps
// it to HTTP 206 exactly as for a single archive.
//
// Thread-safety: public methods serialize on one internal mutex (so the
// background janitor can run against live traffic); ParallelQuery fans the
// *per-shard* work across a ThreadPool while holding it — distinct shards
// are distinct archives, so workers never contend.
#ifndef SRC_STORE_ARCHIVE_SET_H_
#define SRC_STORE_ARCHIVE_SET_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <condition_variable>
#include <vector>

#include "src/query/explain.h"
#include "src/store/log_archive.h"
#include "src/store/shard_router.h"
#include "src/store/verify.h"

namespace loggrep {

struct ArchiveSetOptions {
  // Per-shard archive options (storage env, retry policy, cache budget,
  // metrics registry, degraded-query switch — all apply to every shard).
  ArchiveOptions archive;
  // Time-window span for shard partitioning. 0 = one unbounded window per
  // tenant (shards then roll on size only).
  uint64_t window_span_ns = 0;
  // Raw-byte size cut: an active shard at or past this many ingested bytes
  // rolls before the next append. 0 disables the size cut.
  uint64_t max_shard_bytes = 64ull << 20;
  // Retention TTL for sealed shards, measured against event timestamps:
  // RunRetention(now) expires sealed shards whose newest event is older
  // than now - retention_ns. 0 = keep forever.
  uint64_t retention_ns = 0;
};

// What one Append did — enough for a caller (or an oracle) to know exactly
// which global lines its text received without re-deriving routing.
struct AppendReceipt {
  uint64_t shard_id = 0;
  uint64_t first_global_line = 0;  // global line of the appended text's
                                   // first entry
  uint64_t lines = 0;              // entries appended
  bool rolled = false;             // this append opened a new shard
  RollReason roll_reason = RollReason::kNone;
};

// A shard the federated query could not serve at all (archive failed to
// open, or the whole per-shard query failed). Block-level holes inside
// shards that *did* answer land in SetQueryResult::partial instead.
struct SetShardFailure {
  uint64_t shard_id = 0;
  std::string tenant;
  uint64_t line_base = 0;
  uint64_t lines = 0;  // advisory line count of the hole
  std::string error;
};

struct SetQueryResult {
  // Global line numbers (shard line_base + shard-local line), ascending —
  // shards are visited in id order and bases increase with id.
  QueryHits hits;
  uint32_t shards_total = 0;    // live (non-expired) shards considered
  uint32_t shards_pruned = 0;   // rejected by tenant/time predicates
  uint32_t shards_visited = 0;  // actually queried (pruned+visited==total)
  uint32_t shards_failed = 0;   // of visited, how many failed entirely
  // Summed over visited shards.
  uint32_t blocks_pruned = 0;
  uint32_t blocks_queried = 0;
  uint32_t blocks_from_cache = 0;
  LocatorStats locator;
  // Block-level holes, concatenated across shards with first_line rebased
  // to global numbering.
  PartialReport partial;
  // Whole-shard holes.
  std::vector<SetShardFailure> shard_failures;

  bool complete() const {
    return !partial.partial() && shard_failures.empty();
  }
  // Human-readable degradation report covering both hole kinds.
  std::string RenderPartial() const;
};

// Set-level explain: one entry per live shard, each either pruned (with the
// rejecting predicate), failed, or carrying the full per-block QueryExplain
// of the shard's execution.
struct ShardExplain {
  uint64_t id = 0;
  std::string tenant;
  bool pruned = false;
  std::string prune_reason;
  bool failed = false;
  std::string failure;
  QueryExplain archive;  // visited shards only
};

struct SetExplain {
  std::string command;
  std::vector<ShardExplain> shards;

  ExplainTotals Totals() const;  // summed over visited shards
  // Shard accounting (pruned + visited == total) plus every visited shard's
  // own capsule invariant (pruned + cached + decompressed == visited).
  bool CheckInvariant(std::string* detail = nullptr) const;
  std::string Render() const;
};

struct SetRetentionReport {
  std::vector<uint64_t> expired_ids;
  size_t dirs_removed = 0;
  Status fatal = OkStatus();

  bool ok() const { return fatal.ok(); }
  std::string Summary() const;
};

struct SetRepairReport {
  // One RepairArchive report per live shard with a non-empty quarantine.
  std::vector<std::pair<uint64_t, RepairReport>> shards;
  size_t reinstated = 0;
  size_t tombstoned = 0;
  Status fatal = OkStatus();

  bool ok() const { return fatal.ok(); }
  std::string Summary() const;
};

// Kill points for the set-level commit protocols (mirrors CommitKillPoint
// one level down). The hook returns true to abort as if the process died at
// that instant; the interrupted operation returns an error and the on-disk
// state is whatever the protocol guarantees for that point.
enum class SetKillPoint {
  kShardCreated,             // roll: new shard dir + archive exist, manifest
                             // does not mention them yet
  kRollManifestWritten,      // roll: manifest rewrite committed
  kAppendManifestWritten,    // append: ts-range widening committed, block
                             // not yet in the shard
  kRetentionManifestWritten, // retention: entries marked expired, dirs not
                             // yet removed
};
const char* SetKillPointName(SetKillPoint point);
using SetCommitHook = std::function<bool(SetKillPoint)>;

class ArchiveSet {
 public:
  // Global line-number span owned by one shard (2^40 lines). line_base
  // allocation strides by this; DecideRoll cuts a shard before it overflows.
  static constexpr uint64_t kShardLineSpan = 1ull << 40;

  // Creates an empty set at `root` (created if missing; must not already
  // hold a set manifest).
  static Result<std::unique_ptr<ArchiveSet>> Create(std::string root,
                                                    ArchiveSetOptions options = {});
  // Opens an existing set. Recovery: finishes interrupted retention
  // removals, sweeps orphan shard dirs (a roll that died before its
  // manifest rewrite) and stray manifest temps, and marks unsealed shards'
  // stats for recomputation from their own archives. Never loses a shard
  // the manifest committed; never resurrects an expired one.
  static Result<std::unique_ptr<ArchiveSet>> Open(std::string root,
                                                  ArchiveSetOptions options = {});

  ~ArchiveSet();
  ArchiveSet(const ArchiveSet&) = delete;
  ArchiveSet& operator=(const ArchiveSet&) = delete;

  // Appends one block of text for `tenant` at event time `ts_ns` (0 = the
  // storage env's clock). Routes to the tenant's active shard, rolling
  // first when the router says so.
  Result<AppendReceipt> Append(std::string_view tenant, std::string_view text,
                               uint64_t ts_ns = 0);

  // Federated query over every live shard surviving `pred`. Serial
  // (shard-at-a-time) scatter.
  Result<SetQueryResult> Query(std::string_view command,
                               const SetQueryPredicate& pred = {});
  // Same result; surviving shards are queried concurrently on
  // `num_threads` pool workers.
  Result<SetQueryResult> ParallelQuery(std::string_view command,
                                       const SetQueryPredicate& pred,
                                       size_t num_threads);
  // Query with the full shard-level decision record (pruned shards carry
  // the rejecting predicate; visited shards carry their per-block
  // QueryExplain). Serial, like LogArchive::Explain.
  Result<SetQueryResult> Explain(std::string_view command,
                                 const SetQueryPredicate& pred,
                                 SetExplain* explain);

  // Expires sealed shards whose newest event timestamp is older than
  // now_ns - retention_ns (plus sealed empty shards). No-op when
  // retention_ns == 0.
  Result<SetRetentionReport> RunRetention(uint64_t now_ns);

  // Fleet-level janitor pass: RepairArchive over every live shard that has
  // quarantined blocks, then reloads the quarantine of any open handle so
  // reinstated blocks serve immediately.
  SetRepairReport RepairAll();

  // Background janitor: every interval_ns (storage-env clock), runs
  // retention (at the env's NowNanos) and RepairAll. Idempotent start;
  // StopJanitor joins the thread (also called by the destructor).
  void StartJanitor(uint64_t interval_ns);
  void StopJanitor();

  // Fault-injection hook for the set-level kill points above. Not
  // thread-safe; set before driving traffic.
  void set_commit_hook(SetCommitHook hook) { hook_ = std::move(hook); }

  // Per-request knobs for the serving layer: applied to every shard archive
  // currently open and to every shard opened afterwards. Thread-safe (takes
  // the set lock); the caller restores the defaults after its query.
  void set_degraded_queries(bool degraded);
  void set_query_deadline_ns(uint64_t deadline_ns);

  // Opens every live shard whose persisted stats are stale (unsealed at the
  // last crash/close) and refreshes lines/bytes from its archive, so
  // shards()/total_*() report exact numbers. Best-effort per shard: an
  // unopenable shard keeps its advisory stats and its error is returned
  // (the first one), but the sweep continues.
  Status RefreshStats();

  // Snapshot of the manifest (includes expired tombstones).
  std::vector<ShardInfo> shards() const;
  // Live = not expired.
  size_t live_shard_count() const;
  size_t tenant_count() const;
  const std::string& root() const { return root_; }
  uint64_t window_span_ns() const { return options_.window_span_ns; }
  // Sums over live shards (advisory for shards not yet touched since Open).
  uint64_t total_lines() const;
  uint64_t total_raw_bytes() const;
  uint64_t total_stored_bytes() const;
  StorageEnv* storage_env() const { return EnvOrDefault(options_.archive.env); }

  // `<root>/set_manifest.json`.
  static std::string SetManifestPath(const std::string& root);
  // Serialization, exposed for tests and fuzzing: hostile bytes yield a
  // clean status, never a crash.
  static std::string SerializeSetManifest(uint64_t window_span_ns,
                                          uint64_t next_shard_id,
                                          uint64_t next_line_base,
                                          const std::vector<ShardInfo>& shards);
  static Result<std::vector<ShardInfo>> ParseSetManifest(
      std::string_view bytes, uint64_t* window_span_ns,
      uint64_t* next_shard_id, uint64_t* next_line_base);

 private:
  ArchiveSet(std::string root, ArchiveSetOptions options);

  // Shared scatter-gather body. When `explain` is non-null the per-shard
  // queries run through LogArchive::Explain. num_threads == 0 => serial.
  Result<SetQueryResult> QueryImpl(std::string_view command,
                                   const SetQueryPredicate& pred,
                                   size_t num_threads, SetExplain* explain);

  Status WriteSetManifestLocked() const;
  // Opens (and caches) the archive of shard `index` in shards_. For an
  // unsealed shard opened for the first time since Open, refreshes the
  // advisory stats from the archive itself.
  Result<LogArchive*> OpenShardLocked(size_t index);
  // Rolls `tenant` to a fresh shard for window_start; returns its index.
  Result<size_t> RollShardLocked(const std::string& tenant, uint64_t ts_ns);
  // Runs the hook at `point`; non-null return aborts the caller.
  Status MaybeKill(SetKillPoint point) const;

  std::string root_;
  ArchiveSetOptions options_;
  SetCommitHook hook_;

  mutable std::mutex mu_;
  uint64_t next_shard_id_ = 0;
  uint64_t next_line_base_ = 0;
  std::vector<ShardInfo> shards_;  // manifest order == id order
  // tenant -> index into shards_ of the active (unsealed) shard.
  std::map<std::string, size_t> active_;
  // shard id -> open archive handle (lazy; sealed shards open on first
  // query, unsealed ones on first append/query).
  std::map<uint64_t, std::unique_ptr<LogArchive>> open_;
  // Unsealed shard ids whose manifest stats are stale until the archive is
  // opened and consulted (set by Open after a crash or plain restart).
  std::map<uint64_t, bool> stats_stale_;

  // Janitor thread.
  std::thread janitor_;
  std::mutex janitor_mu_;
  std::condition_variable janitor_cv_;
  bool janitor_stop_ = false;
  bool janitor_running_ = false;
};

}  // namespace loggrep

#endif  // SRC_STORE_ARCHIVE_SET_H_
