// ArchiveSet: a federation of LogArchive shards under one root directory,
// partitioned by (tenant, time-window).
//
// One LogArchive is one directory — MB-to-GB scale. The paper's setting is
// TB/day across many streams (§2, §8), which needs one more dimension:
// ArchiveSet owns many shards, routes every append to the active shard of
// its tenant (rolling to a new shard when the time window moves or the shard
// hits its size cut), and scatter-gathers queries across the shards that
// survive tenant/time-range pruning, merging per-shard results into one
// globally line-numbered answer.
//
// Crash safety follows the store's one discipline, lifted a level: the
// manifest-of-manifests `set_manifest.json` is the single commit point and
// every rewrite goes through WriteFileAtomic (tmp + fsync + rename + parent
// fsync, via the injectable StorageEnv). Ordering makes each transition safe:
//
//   roll       create shard dir + archive FIRST        [kShardCreated]
//              then one manifest rewrite (seal old +
//              add new)                                [kRollManifestWritten]
//              — a crash between the two leaves an orphan dir holding no
//                committed appends; Open sweeps it.
//   append     widen the shard's recorded ts range
//              in the manifest FIRST                   [kAppendManifestWritten]
//              then commit the block into the shard
//              — a crash between the two leaves the range too wide (pruning
//                stays sound) and stale advisory stats (Open recomputes
//                unsealed shard stats from the archive itself).
//   retention  mark entries expired in the manifest    [kRetentionManifest-
//              (THE commit point), then remove dirs     Written]
//              — a crash mid-removal is finished by Open; an expired entry
//                is never resurrected, and is kept in the manifest forever
//                so later shards' global line bases never shift.
//   compaction build the merged shard in a staging dir [kCompactStaged]
//              (never shard-named: a crash leaves it
//              sweepable, invisible to the manifest),
//              rename it to its final shard name       [kCompactShardRenamed]
//              (still unreferenced — a crash here
//              leaves an orphan shard dir, swept),
//              then ONE manifest rewrite adding the
//              merged entry + marking every source
//              superseded_by=<id> (THE commit point),  [kCompactManifest-
//              then remove the source dirs              Written]
//              — resumable by Open like retention.     [kCompactSources-
//                                                       Removed]
//              Every manifest rewrite bumps a persisted generation counter;
//              a compaction commit re-validates its sources against the
//              live manifest when the generation moved under it (retention
//              may have expired a source mid-build), so a stale plan aborts
//              instead of clobbering newer state.
//
// Global line numbering: shard `i` owns the half-open line range
// [line_base_i, line_base_i + kShardLineSpan); bases are allocated from a
// persisted counter and never reused. A hit at shard-local line L reports
// global line line_base + L — stable across retention, compaction, and
// reopen, and safely summable into 64 bits (2^24 shards of 2^40 lines).
//
// Degradation composes: one failing block inside a shard degrades that
// shard's result (PartialReport, PR 5); one failing *shard* degrades the
// federation the same way — the set answer carries exact hits from every
// healthy shard plus a report naming each hole, and the serving layer maps
// it to HTTP 206 exactly as for a single archive.
//
// Thread-safety: public methods serialize on one internal mutex (so the
// background janitor can run against live traffic); ParallelQuery fans the
// *per-shard* work across a ThreadPool while holding it — distinct shards
// are distinct archives, so workers never contend.
#ifndef SRC_STORE_ARCHIVE_SET_H_
#define SRC_STORE_ARCHIVE_SET_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <condition_variable>
#include <vector>

#include "src/query/explain.h"
#include "src/store/compaction.h"
#include "src/store/log_archive.h"
#include "src/store/shard_router.h"
#include "src/store/verify.h"

namespace loggrep {

struct ArchiveSetOptions {
  // Per-shard archive options (storage env, retry policy, cache budget,
  // metrics registry, degraded-query switch — all apply to every shard).
  ArchiveOptions archive;
  // Time-window span for shard partitioning. 0 = one unbounded window per
  // tenant (shards then roll on size only).
  uint64_t window_span_ns = 0;
  // Raw-byte size cut: an active shard at or past this many ingested bytes
  // rolls before the next append. 0 disables the size cut.
  uint64_t max_shard_bytes = 64ull << 20;
  // Retention TTL for sealed shards, measured against event timestamps:
  // RunRetention(now) expires sealed shards whose newest event is older
  // than now - retention_ns. 0 = keep forever.
  uint64_t retention_ns = 0;
  // Thresholds for Compact() and the janitor's compaction step.
  CompactionPolicy compaction;
  // Optional sink for structured one-line JSON events from background
  // maintenance (janitor pass errors, compaction commits). The serving
  // layer wires this into its access log so operator-relevant failures are
  // never silently swallowed. Called without the set lock held; must be
  // thread-safe.
  std::function<void(const std::string& json_line)> event_log;
};

// What one Append did — enough for a caller (or an oracle) to know exactly
// which global lines its text received without re-deriving routing.
struct AppendReceipt {
  uint64_t shard_id = 0;
  uint64_t first_global_line = 0;  // global line of the appended text's
                                   // first entry
  uint64_t lines = 0;              // entries appended
  bool rolled = false;             // this append opened a new shard
  RollReason roll_reason = RollReason::kNone;
};

// A shard the federated query could not serve at all (archive failed to
// open, or the whole per-shard query failed). Block-level holes inside
// shards that *did* answer land in SetQueryResult::partial instead.
struct SetShardFailure {
  uint64_t shard_id = 0;
  std::string tenant;
  uint64_t line_base = 0;
  uint64_t lines = 0;  // advisory line count of the hole
  std::string error;
};

struct SetQueryResult {
  // Global line numbers (shard line_base + shard-local line), ascending.
  // Usually free (bases are non-decreasing in visit order); when a merged
  // shard's line span interleaves with other tenants' bases the gather
  // re-sorts — line numbers are globally unique, so the order is total.
  QueryHits hits;
  uint32_t shards_total = 0;    // live (non-tombstoned) shards considered
  uint32_t shards_pruned = 0;   // rejected by tenant/time predicates
  uint32_t shards_visited = 0;  // actually queried (pruned+visited==total)
  uint32_t shards_failed = 0;   // of visited, how many failed entirely
  // Summed over visited shards.
  uint32_t blocks_pruned = 0;
  uint32_t blocks_queried = 0;
  uint32_t blocks_from_cache = 0;
  LocatorStats locator;
  // Block-level holes, concatenated across shards with first_line rebased
  // to global numbering.
  PartialReport partial;
  // Whole-shard holes.
  std::vector<SetShardFailure> shard_failures;

  bool complete() const {
    return !partial.partial() && shard_failures.empty();
  }
  // Human-readable degradation report covering both hole kinds.
  std::string RenderPartial() const;
};

// Set-level explain: one entry per live shard, each either pruned (with the
// rejecting predicate), failed, or carrying the full per-block QueryExplain
// of the shard's execution.
struct ShardExplain {
  uint64_t id = 0;
  std::string tenant;
  bool pruned = false;
  std::string prune_reason;
  bool failed = false;
  std::string failure;
  QueryExplain archive;  // visited shards only
};

struct SetExplain {
  std::string command;
  std::vector<ShardExplain> shards;

  ExplainTotals Totals() const;  // summed over visited shards
  // Shard accounting (pruned + visited == total) plus every visited shard's
  // own capsule invariant (pruned + cached + decompressed == visited).
  bool CheckInvariant(std::string* detail = nullptr) const;
  std::string Render() const;
};

struct SetRetentionReport {
  std::vector<uint64_t> expired_ids;
  size_t dirs_removed = 0;
  Status fatal = OkStatus();

  bool ok() const { return fatal.ok(); }
  std::string Summary() const;
};

struct SetRepairReport {
  // One RepairArchive report per live shard with a non-empty quarantine.
  std::vector<std::pair<uint64_t, RepairReport>> shards;
  size_t reinstated = 0;
  size_t tombstoned = 0;
  Status fatal = OkStatus();

  bool ok() const { return fatal.ok(); }
  std::string Summary() const;
};

// Kill points for the set-level commit protocols (mirrors CommitKillPoint
// one level down). The hook returns true to abort as if the process died at
// that instant; the interrupted operation returns an error and the on-disk
// state is whatever the protocol guarantees for that point.
enum class SetKillPoint {
  kShardCreated,             // roll: new shard dir + archive exist, manifest
                             // does not mention them yet
  kRollManifestWritten,      // roll: manifest rewrite committed
  kAppendManifestWritten,    // append: ts-range widening committed, block
                             // not yet in the shard
  kRetentionManifestWritten, // retention: entries marked expired, dirs not
                             // yet removed
  kCompactStaged,            // compaction: merged shard fully built in its
                             // staging dir, not yet renamed
  kCompactShardRenamed,      // compaction: merged dir at its final shard
                             // name, manifest still ignorant of it
  kCompactManifestWritten,   // compaction: merged entry committed + sources
                             // marked superseded, source dirs not yet gone
  kCompactSourcesRemoved,    // compaction: source dirs removed
};
const char* SetKillPointName(SetKillPoint point);
using SetCommitHook = std::function<bool(SetKillPoint)>;

class ArchiveSet {
 public:
  // Global line-number span owned by one shard (2^40 lines). line_base
  // allocation strides by this; DecideRoll cuts a shard before it overflows.
  static constexpr uint64_t kShardLineSpan = 1ull << 40;

  // Creates an empty set at `root` (created if missing; must not already
  // hold a set manifest).
  static Result<std::unique_ptr<ArchiveSet>> Create(std::string root,
                                                    ArchiveSetOptions options = {});
  // Opens an existing set. Recovery: finishes interrupted retention and
  // compaction removals (expired/superseded entries whose dirs linger),
  // sweeps orphan shard dirs (a roll — or a compaction rename — that died
  // before its manifest rewrite), half-built compaction staging dirs, and
  // stray manifest temps, and marks unsealed shards' stats for
  // recomputation from their own archives. Never loses a shard the
  // manifest committed; never resurrects an expired or superseded one.
  static Result<std::unique_ptr<ArchiveSet>> Open(std::string root,
                                                  ArchiveSetOptions options = {});

  ~ArchiveSet();
  ArchiveSet(const ArchiveSet&) = delete;
  ArchiveSet& operator=(const ArchiveSet&) = delete;

  // Appends one block of text for `tenant` at event time `ts_ns` (0 = the
  // storage env's clock). Routes to the tenant's active shard, rolling
  // first when the router says so.
  Result<AppendReceipt> Append(std::string_view tenant, std::string_view text,
                               uint64_t ts_ns = 0);

  // Federated query over every live shard surviving `pred`. Serial
  // (shard-at-a-time) scatter.
  Result<SetQueryResult> Query(std::string_view command,
                               const SetQueryPredicate& pred = {});
  // Same result; surviving shards are queried concurrently on
  // `num_threads` pool workers.
  Result<SetQueryResult> ParallelQuery(std::string_view command,
                                       const SetQueryPredicate& pred,
                                       size_t num_threads);
  // Query with the full shard-level decision record (pruned shards carry
  // the rejecting predicate; visited shards carry their per-block
  // QueryExplain). Serial, like LogArchive::Explain.
  Result<SetQueryResult> Explain(std::string_view command,
                                 const SetQueryPredicate& pred,
                                 SetExplain* explain);

  // Expires sealed shards whose newest event timestamp is older than
  // now_ns - retention_ns (plus sealed empty shards). No-op when
  // retention_ns == 0.
  Result<SetRetentionReport> RunRetention(uint64_t now_ns);

  // Fleet-level janitor pass: RepairArchive over every live shard that has
  // quarantined blocks, then reloads the quarantine of any open handle so
  // reinstated blocks serve immediately.
  SetRepairReport RepairAll();

  // Online compaction: plans runs of adjacent sealed same-tenant shards
  // (PlanCompaction; shards with unrepaired quarantined blocks are
  // excluded), builds each run's merged shard in a staging dir *outside*
  // the set lock (concurrent appends/queries proceed on the sources), then
  // commits it under the lock with the ordered protocol documented at the
  // top of this file. Every source line keeps its exact global line number.
  // Concurrent Compact() calls serialize on their own mutex; a run whose
  // sources changed under it (retention, a racing compactor) is aborted,
  // not committed. Returns per-call counts; `fatal` carries the first
  // build/commit failure (later runs are still attempted unless the
  // failure was a kill-point abort).
  SetCompactionReport Compact();  // options_.compaction thresholds
  SetCompactionReport Compact(const CompactionPolicy& policy);

  // Background janitor: every interval (storage-env clock) runs one
  // maintenance pass — retention (at the env's NowNanos), then RepairAll,
  // then Compact when `options.compaction` allows. Pass failures are
  // counted ("set.janitor.errors"), kept as a last-error string
  // (janitor_status()), and emitted through ArchiveSetOptions::event_log —
  // never silently swallowed. Idempotent start; StopJanitor joins the
  // thread (also called by the destructor) and is itself safe to race from
  // multiple threads.
  struct JanitorOptions {
    // Clamped up to kMinJanitorIntervalNs (an interval of 0 must not turn
    // the janitor into a busy spin).
    uint64_t interval_ns = 1'000'000'000;
    // Run the first pass immediately instead of after the first interval
    // (tests and operators kicking a freshly opened set).
    bool run_immediately = false;
    // Include the compaction step in each pass.
    bool compaction = true;
  };
  // Documented floor for JanitorOptions::interval_ns.
  static constexpr uint64_t kMinJanitorIntervalNs = 10'000'000;  // 10 ms
  void StartJanitor(uint64_t interval_ns);  // default options, this interval
  void StartJanitor(const JanitorOptions& options);
  void StopJanitor();

  // Observability snapshot of the background janitor.
  struct JanitorStatus {
    bool running = false;
    uint64_t passes = 0;       // completed passes
    uint64_t errors = 0;       // failed steps across all passes
    std::string last_error;    // most recent failed step ("" = none yet)
  };
  JanitorStatus janitor_status() const;

  // Lifetime compaction counters (this process; survives nothing).
  struct CompactionTotals {
    uint64_t merges = 0;         // merged shards committed
    uint64_t shards_merged = 0;  // source shards superseded
    uint64_t failures = 0;       // runs aborted by error or revalidation
  };
  CompactionTotals compaction_totals() const;

  // Fault-injection hook for the set-level kill points above. Not
  // thread-safe; set before driving traffic.
  void set_commit_hook(SetCommitHook hook) { hook_ = std::move(hook); }

  // Per-request knobs for the serving layer: applied to every shard archive
  // currently open and to every shard opened afterwards. Thread-safe (takes
  // the set lock); the caller restores the defaults after its query.
  void set_degraded_queries(bool degraded);
  void set_query_deadline_ns(uint64_t deadline_ns);

  // Opens every live shard whose persisted stats are stale (unsealed at the
  // last crash/close) and refreshes lines/bytes from its archive, so
  // shards()/total_*() report exact numbers. Best-effort per shard: an
  // unopenable shard keeps its advisory stats and its error is returned
  // (the first one), but the sweep continues.
  Status RefreshStats();

  // Snapshot of the manifest (includes expired + superseded tombstones).
  std::vector<ShardInfo> shards() const;
  // Live = neither expired nor superseded.
  size_t live_shard_count() const;
  size_t tenant_count() const;
  const std::string& root() const { return root_; }
  uint64_t window_span_ns() const { return options_.window_span_ns; }
  // Sums over live shards (advisory for shards not yet touched since Open).
  uint64_t total_lines() const;
  uint64_t total_raw_bytes() const;
  uint64_t total_stored_bytes() const;
  StorageEnv* storage_env() const { return EnvOrDefault(options_.archive.env); }

  // `<root>/set_manifest.json`.
  static std::string SetManifestPath(const std::string& root);

  // Top-level manifest fields beside the shard list. The generation counter
  // increments on every successful manifest rewrite; a compaction commit
  // uses it to detect that the manifest moved under its plan.
  struct SetManifestHeader {
    uint64_t window_span_ns = 0;
    uint64_t next_shard_id = 0;
    uint64_t next_line_base = 0;
    uint64_t generation = 0;
  };
  // Serialization, exposed for tests and fuzzing: hostile bytes yield a
  // clean status, never a crash. Writes version 2; version-1 manifests
  // (pre-compaction) parse with generation 0, no superseded entries, and
  // kShardLineSpan-wide shards.
  static std::string SerializeSetManifest(const SetManifestHeader& header,
                                          const std::vector<ShardInfo>& shards);
  static Result<std::vector<ShardInfo>> ParseSetManifest(
      std::string_view bytes, SetManifestHeader* header);
  // Back-compat shims for the pre-generation call shape.
  static std::string SerializeSetManifest(uint64_t window_span_ns,
                                          uint64_t next_shard_id,
                                          uint64_t next_line_base,
                                          const std::vector<ShardInfo>& shards);
  static Result<std::vector<ShardInfo>> ParseSetManifest(
      std::string_view bytes, uint64_t* window_span_ns,
      uint64_t* next_shard_id, uint64_t* next_line_base);

 private:
  ArchiveSet(std::string root, ArchiveSetOptions options);

  // Shared scatter-gather body. When `explain` is non-null the per-shard
  // queries run through LogArchive::Explain. num_threads == 0 => serial.
  Result<SetQueryResult> QueryImpl(std::string_view command,
                                   const SetQueryPredicate& pred,
                                   size_t num_threads, SetExplain* explain);

  Status WriteSetManifestLocked();
  // Opens (and caches) the archive of shard `index` in shards_. For an
  // unsealed shard opened for the first time since Open, refreshes the
  // advisory stats from the archive itself.
  Result<LogArchive*> OpenShardLocked(size_t index);
  // Rolls `tenant` to a fresh shard for window_start; returns its index.
  Result<size_t> RollShardLocked(const std::string& tenant, uint64_t ts_ns);
  // Runs the hook at `point`; non-null return aborts the caller.
  Status MaybeKill(SetKillPoint point) const;
  // One planned merge: build outside the lock, commit under it. Updates
  // `report` and the lifetime totals.
  Status CompactOneRun(const CompactionRun& run,
                       const std::vector<ShardInfo>& sources,
                       uint64_t planned_generation,
                       SetCompactionReport* report);
  // One background maintenance pass (retention + repair [+ compaction]).
  void JanitorPass(bool compaction);
  // Emits a structured maintenance event through options_.event_log.
  void EmitEvent(const char* what, const Status& status);

  std::string root_;
  ArchiveSetOptions options_;
  SetCommitHook hook_;

  mutable std::mutex mu_;
  uint64_t next_shard_id_ = 0;
  uint64_t next_line_base_ = 0;
  uint64_t generation_ = 0;  // bumped by every manifest rewrite
  // Manifest order == line_base order. Ids are strictly increasing between
  // rolled shards; a merged shard (allocated later, so a higher id) sits
  // immediately before its first source, which keeps line bases
  // non-decreasing.
  std::vector<ShardInfo> shards_;
  // tenant -> index into shards_ of the active (unsealed) shard.
  std::map<std::string, size_t> active_;
  // shard id -> open archive handle (lazy; sealed shards open on first
  // query, unsealed ones on first append/query).
  std::map<uint64_t, std::unique_ptr<LogArchive>> open_;
  // Unsealed shard ids whose manifest stats are stale until the archive is
  // opened and consulted (set by Open after a crash or plain restart).
  std::map<uint64_t, bool> stats_stale_;

  // Serializes concurrent Compact() calls (the build phase runs outside
  // mu_, so mu_ alone would let two compactors plan the same sources).
  std::mutex compact_mu_;
  CompactionTotals compaction_totals_;  // guarded by mu_

  // Janitor thread. The stop flag is owned per-thread (shared with the
  // thread it stops) so a Stop racing a Start can never confuse a stale
  // janitor into outliving its stop request.
  std::thread janitor_;
  mutable std::mutex janitor_mu_;
  std::condition_variable janitor_cv_;
  std::shared_ptr<bool> janitor_stop_;  // guarded by janitor_mu_
  bool janitor_running_ = false;
  uint64_t janitor_passes_ = 0;      // guarded by janitor_mu_
  uint64_t janitor_errors_ = 0;      // guarded by janitor_mu_
  std::string janitor_last_error_;   // guarded by janitor_mu_
};

}  // namespace loggrep

#endif  // SRC_STORE_ARCHIVE_SET_H_
