// LogArchive: a directory-backed store of many compressed log blocks.
//
// The paper evaluates single 64 MB blocks; in production a near-line store
// holds long sequences of them (§8 points at scaling out). The archive layer
// adds the missing block dimension: every appended block becomes one
// CapsuleBox file plus a manifest entry carrying a block-level summary — a
// token stamp and a Bloom filter over token 4-byte shingles — so a query
// prunes whole blocks before any CapsuleBox is even opened. Pruning is sound
// for the containment semantics: a keyword of length >= 4 can only occur in a
// block whose shingle filter contains all of the keyword's shingles; shorter
// or wildcard keywords fall back to the stamp check.
#ifndef SRC_STORE_LOG_ARCHIVE_H_
#define SRC_STORE_LOG_ARCHIVE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/capsule/stamp.h"
#include "src/common/bloom.h"
#include "src/core/engine.h"
#include "src/query/locator.h"
#include "src/query/query_parser.h"

namespace loggrep {

struct ArchiveOptions {
  EngineOptions engine;
  uint32_t bloom_bits_per_shingle = 10;
};

struct BlockInfo {
  uint32_t seq = 0;
  uint64_t first_line = 0;   // global line number of the block's first entry
  uint64_t line_count = 0;
  uint64_t raw_bytes = 0;
  uint64_t stored_bytes = 0;
  CapsuleStamp token_stamp;  // over all tokens of the block
  BloomFilter shingles;      // 4-byte substrings of every token
};

struct ArchiveQueryResult {
  // Hits carry global line numbers across all blocks, in ingestion order.
  QueryHits hits;
  uint32_t blocks_pruned = 0;
  uint32_t blocks_queried = 0;
  LocatorStats locator;  // summed over queried blocks
};

class LogArchive {
 public:
  // Creates an empty archive in `dir` (created if missing; must not already
  // hold a manifest).
  static Result<LogArchive> Create(std::string dir, ArchiveOptions options = {});
  // Opens an existing archive (block summaries load from the manifest).
  static Result<LogArchive> Open(std::string dir, ArchiveOptions options = {});

  // Compresses `text` as the next block and persists it + the manifest.
  Status AppendBlock(std::string_view text);

  // Runs a query command over all (non-pruned) blocks.
  Result<ArchiveQueryResult> Query(std::string_view command);

  // Same result, with non-pruned blocks queried concurrently on
  // `num_threads` workers (each with its own engine; §6 notes queries
  // parallelize trivially at block granularity).
  Result<ArchiveQueryResult> ParallelQuery(std::string_view command,
                                           size_t num_threads);

  const std::vector<BlockInfo>& blocks() const { return blocks_; }
  uint64_t total_lines() const;
  uint64_t total_raw_bytes() const;
  uint64_t total_stored_bytes() const;

 private:
  LogArchive(std::string dir, ArchiveOptions options)
      : dir_(std::move(dir)), options_(options), engine_(options_.engine) {}

  std::string BlockPath(uint32_t seq) const;
  std::string ManifestPath() const;
  Status WriteManifest() const;

  std::string dir_;
  ArchiveOptions options_;
  LogGrepEngine engine_;
  std::vector<BlockInfo> blocks_;
};

// Keywords every matching entry MUST contain, extracted from a parsed query
// (used for block pruning; exposed for tests).
std::vector<std::string> RequiredKeywords(const QueryExpr& expr);

}  // namespace loggrep

#endif  // SRC_STORE_LOG_ARCHIVE_H_
