// LogArchive: a directory-backed store of many compressed log blocks.
//
// The paper evaluates single 64 MB blocks; in production a near-line store
// holds long sequences of them (§8 points at scaling out). The archive layer
// adds the missing block dimension: every appended block becomes one
// CapsuleBox file plus a manifest entry carrying a block-level summary — a
// token stamp and a Bloom filter over token 4-byte shingles — so a query
// prunes whole blocks before any CapsuleBox is even opened. Pruning is sound
// for the containment semantics: a keyword of length >= 4 can only occur in a
// block whose shingle filter contains all of the keyword's shingles; shorter
// or wildcard keywords fall back to the stamp check.
#ifndef SRC_STORE_LOG_ARCHIVE_H_
#define SRC_STORE_LOG_ARCHIVE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/capsule/stamp.h"
#include "src/common/bloom.h"
#include "src/common/metrics.h"
#include "src/core/engine.h"
#include "src/query/box_cache.h"
#include "src/query/locator.h"
#include "src/query/query_parser.h"
#include "src/store/quarantine.h"
#include "src/store/retry.h"
#include "src/store/storage_env.h"

namespace loggrep {

struct ArchiveOptions {
  EngineOptions engine;
  uint32_t bloom_bits_per_shingle = 10;
  // Byte budget of the archive-owned BoxCache shared by Query, ParallelQuery
  // workers and the embedded engine. 0 disables the shared cache.
  size_t box_cache_budget_bytes = 256ull << 20;
  // Optional registry for query/cache counters. Borrowed.
  MetricsRegistry* metrics = nullptr;
  // Storage backend every durable read/write/rename goes through. Borrowed;
  // null means the real POSIX filesystem. Tests plug in a
  // FaultInjectingStorageEnv to exercise these exact code paths.
  StorageEnv* env = nullptr;
  // Retry policy for query-path block reads (transient backend failures are
  // re-attempted with decorrelated-jitter backoff before a block is given up
  // on). max_attempts = 1 disables retrying.
  RetryPolicy retry;
  // Per-query retry deadline: one Query/ParallelQuery/Explain call never
  // spends more than this much wall time in backoff, no matter how many
  // blocks fail. 0 means unlimited.
  uint64_t query_deadline_ns = 0;
  // When true (default), a block whose read or decode fails after retries is
  // quarantined and the query degrades (hits from healthy blocks plus a
  // PartialReport). When false, the first block failure fails the query.
  bool degraded_queries = true;
};

struct BlockInfo {
  uint32_t seq = 0;
  uint64_t first_line = 0;   // global line number of the block's first entry
  uint64_t line_count = 0;
  uint64_t raw_bytes = 0;
  uint64_t stored_bytes = 0;
  // Chained FNV-1a over every raw line plus a '\n' terminator byte
  // (unambiguous: lines never contain '\n'). Lets `loggrep_cli verify`
  // prove a block reconstructs to exactly the ingested text.
  uint64_t content_hash = 0;
  // FNV-1a over the stored CapsuleBox bytes (detects at-rest bit rot
  // without decompressing anything).
  uint64_t stored_hash = 0;
  CapsuleStamp token_stamp;  // over all tokens of the block
  BloomFilter shingles;      // 4-byte substrings of every token
};

// Chained content hash used for BlockInfo::content_hash: FNV-1a absorbed
// over each line followed by one '\n' byte. Exposed so the verifier can
// recompute it from reconstructed lines.
uint64_t HashBlockContent(std::string_view text);

// Parses serialized manifest bytes into block summaries. Exposed separately
// from Open for the manifest fuzz target and verify tooling; hostile input
// yields a clean Status, never a crash or unbounded allocation.
Result<std::vector<BlockInfo>> ParseManifestBytes(std::string_view bytes);

// Crash-safe block commit protocol (used by AppendBlock and the ingest
// pipeline). Every step goes through a tagged tmp file (pid + nonce, see
// MakeTempPath) + fsync + atomic rename, all via the injectable StorageEnv:
//   1. write+fsync  block-N.lgc.<pid>-<n>.tmp      [kBlockTmpWritten]
//   2. rename       tmp -> block-N.lgc             [kBlockRenamed]
//   3. write+fsync  archive.manifest.<pid>-<n>.tmp [kManifestTmpWritten]
//   4. rename       tmp -> archive.manifest, fsync the directory
// A crash between any two steps leaves either the old archive state or the
// new one plus sweepable garbage; `Open` recovers by trusting the manifest,
// dropping trailing entries whose block file is missing, and sweeping
// orphaned `*.tmp` / unreferenced block files (skipping temps that belong to
// a live in-flight write, this process's or another's).
enum class CommitKillPoint {
  kBlockTmpWritten,    // block temp durable, final name absent
  kBlockRenamed,       // block durable, manifest still the old one
  kManifestTmpWritten, // new manifest written to tmp, not yet renamed
};

// Fault-injection hook: invoked at each kill point during a commit; return
// true to abort mid-protocol as if the process died there. Production passes
// nullptr.
using CommitHook = std::function<bool(CommitKillPoint)>;

// Printable name for diagnostics ("block-tmp-written", ...).
const char* CommitKillPointName(CommitKillPoint point);

// Builds the block-level summary (line count, raw bytes, token stamp,
// shingle Bloom filter) for one block of text. seq / first_line /
// stored_bytes are assigned at commit time.
BlockInfo BuildBlockSummary(std::string_view text,
                            uint32_t bloom_bits_per_shingle);

struct ArchiveQueryResult {
  // Hits carry 64-bit global line numbers across all blocks, in ingestion
  // order (an archive past ~4 billion lines must not wrap).
  QueryHits hits;
  uint32_t blocks_pruned = 0;
  uint32_t blocks_queried = 0;
  // Of blocks_queried, how many were answered from the engine's command
  // cache. Cached blocks echo the cost snapshot of the execution that
  // produced them (see LogGrepEngine), so a reader of `locator` needs this
  // to tell replayed cost from fresh work: blocks_from_cache ==
  // blocks_queried means no fresh decompression happened at all.
  uint32_t blocks_from_cache = 0;
  // Blocks the query could not serve (quarantined before the query, or
  // failed during it). Empty means the result is complete; otherwise `hits`
  // is exact over every healthy block and `partial` names each hole.
  PartialReport partial;
  LocatorStats locator;  // summed over queried blocks (+ prune stage time)
};

class LogArchive {
 public:
  // Creates an empty archive in `dir` (created if missing; must not already
  // hold a manifest).
  static Result<LogArchive> Create(std::string dir, ArchiveOptions options = {});
  // Opens an existing archive (block summaries load from the manifest).
  // Recovery: trailing manifest entries whose block file is missing are
  // dropped (the manifest is re-persisted), interior holes are rejected as
  // corruption — unless the block is quarantined, in which case the hole is
  // a known, reported condition — and orphaned `*.tmp` / unreferenced block
  // files are swept.
  static Result<LogArchive> Open(std::string dir, ArchiveOptions options = {});

  // Compresses `text` as the next block and persists it + the manifest
  // (crash-safe: every file lands via tmp + atomic rename).
  Status AppendBlock(std::string_view text);

  // Commits an already-compressed block (summary pre-computed off-thread by
  // the ingest pipeline). Assigns seq / stored_bytes, then runs the
  // crash-safe protocol above. `block.first_line` is normally left 0 and
  // assigned contiguously; a caller backfilling a shard at a known global
  // offset may pre-set it to any value >= the current end of the archive
  // (the line space is allowed to be sparse). `hook` may abort at each kill
  // point (fault injection); pass nullptr in production. Not thread-safe —
  // callers serialize commits.
  Status CommitCompressedBlock(std::string_view box_bytes, BlockInfo block,
                               const CommitHook& hook = nullptr);

  // Commits a block that has no bytes on purpose: a tombstoned hole carried
  // over from another archive (shard compaction copies a source shard's
  // blocks verbatim; a source block whose file was already given up on —
  // quarantined + tombstoned — must keep occupying its global line range in
  // the merged shard so later line numbers never shift). Assigns seq like
  // CommitCompressedBlock and honors a pre-set sparse `block.first_line`,
  // records `entry` (forced tombstoned, seq remapped) in quarantine.json,
  // then persists the manifest. The sidecar lands before the manifest so a
  // torn write can never leave the manifest naming an unexplained hole.
  // Not thread-safe — callers serialize commits.
  Status CommitTombstonedBlock(BlockInfo block, QuarantineEntry entry);

  // Runs a query command over all (non-pruned) blocks. Warm blocks are
  // served from the shared BoxCache: no file read, no metadata parse, and
  // only the capsules the cache lacks are decompressed.
  Result<ArchiveQueryResult> Query(std::string_view command);

  // Same result, with non-pruned blocks queried concurrently on
  // `num_threads` workers (each with its own engine but all sharing the
  // archive's BoxCache; §6 notes queries parallelize trivially at block
  // granularity).
  Result<ArchiveQueryResult> ParallelQuery(std::string_view command,
                                           size_t num_threads);

  // Query with a full decision record: `explain` receives one BlockExplain
  // per block — archive-pruned blocks carry block_pruned plus a reason
  // naming the keyword and filter that rejected them, queried blocks carry
  // the per-variable-vector / per-Capsule fate tree recorded by the engine
  // (see src/query/explain.h). Runs serially and bypasses the command
  // cache, so the record always describes a real execution.
  Result<ArchiveQueryResult> Explain(std::string_view command,
                                     QueryExplain* explain);

  const std::vector<BlockInfo>& blocks() const { return blocks_; }
  // The shared cache (null when box_cache_budget_bytes == 0).
  BoxCache* box_cache() const { return box_cache_.get(); }
  // Blocks currently excluded from queries (loaded from quarantine.json at
  // Open, grown by failed queries, shrunk by `loggrep_cli repair`).
  const QuarantineSet& quarantine() const { return quarantine_; }
  // Re-reads quarantine.json (picks up an external repair without reopening).
  Status ReloadQuarantine();
  // Per-query knobs the serving layer adjusts between requests: the retry
  // deadline feeding each query's RetryBudget, and whether block failures
  // degrade (206/PartialReport) or abort (the `?degrade=0` switch). NOT
  // thread-safe — callers serialize with queries, as loggrepd does under
  // its per-archive lock.
  void set_query_deadline_ns(uint64_t ns) { options_.query_deadline_ns = ns; }
  void set_degraded_queries(bool on) { options_.degraded_queries = on; }
  // The storage backend in effect (never null).
  StorageEnv* storage_env() const { return EnvOrDefault(options_.env); }
  const std::string& dir() const { return dir_; }
  // "block-<seq>.lgc" — the on-disk name of one block (exposed so the shard
  // compactor can read source blocks verbatim without an archive detour).
  static std::string BlockFileName(uint32_t seq);
  uint64_t total_lines() const;
  uint64_t total_raw_bytes() const;
  uint64_t total_stored_bytes() const;

 private:
  LogArchive(std::string dir, ArchiveOptions options);

  std::string BlockPath(uint32_t seq) const;
  std::string ManifestPath() const;
  std::string SerializeManifest() const;
  Status WriteManifest() const;
  // Retrying block read through the env (the query-path loader body).
  Result<std::string> LoadBlockBytes(uint32_t seq,
                                     const RetryBudget* budget) const;
  // Runs one commit-path storage operation under the retry policy (no
  // deadline budget: ingest durability beats latency).
  Status RetryStorage(const char* op_name,
                      const std::function<Status()>& op) const;
  // Records `cause` in the quarantine set and persists the sidecar (best
  // effort: a failing sidecar write must not fail the query on top of the
  // block failure; it is counted in "storage.quarantine.persist_failures").
  void QuarantineBlock(const BlockInfo& block, const Status& cause);
  // Appends the failure of `block` to `report` (and quarantines it when the
  // failure is fresh). Returns false when the failure must abort the query
  // instead (degraded queries disabled, or a query-syntax error).
  bool DegradeOnFailure(const BlockInfo& block, const Status& cause,
                        PartialReport* report);
  // When `block` is quarantined, appends the standing hole to `report` and
  // returns true (the caller skips the block without touching storage).
  bool SkipIfQuarantined(const BlockInfo& block, PartialReport* report) const;
  // Removes block-*.lgc files whose seq has no manifest entry (droppings of
  // commits that died after the block rename but before the manifest swap).
  void SweepUnreferencedBlocks() const;

  // Identity of block `seq` inside the shared cache.
  BoxKey KeyForBlock(uint32_t seq) const;
  // Prunes blocks against `required`; appends survivors to `to_query` and
  // counts the rest. Returns elapsed nanoseconds. When `explain` is
  // non-null, appends one BlockExplain per block (pruned ones annotated
  // with the keyword/filter that rejected them).
  uint64_t PruneBlocks(const std::vector<std::string>& required,
                       std::vector<const BlockInfo*>* to_query,
                       uint32_t* pruned, QueryExplain* explain = nullptr) const;

  std::string dir_;
  ArchiveOptions options_;
  uint64_t cache_namespace_ = 0;
  // Declared before engine_: the engine borrows the cache pointer.
  std::shared_ptr<BoxCache> box_cache_;
  LogGrepEngine engine_;
  std::vector<BlockInfo> blocks_;
  // Mutated only on the calling thread (ParallelQuery quarantines during
  // the serial collection phase, never from workers).
  QuarantineSet quarantine_;
};

// Keywords every matching entry MUST contain, extracted from a parsed query
// (used for block pruning; exposed for tests).
std::vector<std::string> RequiredKeywords(const QueryExpr& expr);

}  // namespace loggrep

#endif  // SRC_STORE_LOG_ARCHIVE_H_
