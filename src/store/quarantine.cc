#include "src/store/quarantine.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

#include "src/store/fs_util.h"

namespace loggrep {

// ---------------------------------------------------------------------------
// QuarantineSet
// ---------------------------------------------------------------------------

const QuarantineEntry* QuarantineSet::Find(uint32_t seq) const {
  const auto it = std::lower_bound(
      entries.begin(), entries.end(), seq,
      [](const QuarantineEntry& e, uint32_t s) { return e.seq < s; });
  if (it == entries.end() || it->seq != seq) {
    return nullptr;
  }
  return &*it;
}

QuarantineEntry* QuarantineSet::Find(uint32_t seq) {
  return const_cast<QuarantineEntry*>(
      static_cast<const QuarantineSet*>(this)->Find(seq));
}

bool QuarantineSet::Add(QuarantineEntry entry) {
  const auto it = std::lower_bound(
      entries.begin(), entries.end(), entry.seq,
      [](const QuarantineEntry& e, uint32_t s) { return e.seq < s; });
  if (it != entries.end() && it->seq == entry.seq) {
    // Refresh: keep the first recorded error (it names the original cause)
    // and never un-tombstone via a mere re-failure.
    if (it->code.empty()) {
      it->code = std::move(entry.code);
    }
    if (it->error.empty()) {
      it->error = std::move(entry.error);
    }
    if (it->quarantined_unix == 0) {
      it->quarantined_unix = entry.quarantined_unix;
    }
    return false;
  }
  entries.insert(it, std::move(entry));
  return true;
}

bool QuarantineSet::Remove(uint32_t seq) {
  const auto it = std::lower_bound(
      entries.begin(), entries.end(), seq,
      [](const QuarantineEntry& e, uint32_t s) { return e.seq < s; });
  if (it == entries.end() || it->seq != seq) {
    return false;
  }
  entries.erase(it);
  return true;
}

size_t QuarantineSet::tombstoned_count() const {
  size_t n = 0;
  for (const QuarantineEntry& e : entries) {
    if (e.tombstoned) {
      ++n;
    }
  }
  return n;
}

std::string QuarantinePath(const std::string& dir) {
  return dir + "/quarantine.json";
}

// ---------------------------------------------------------------------------
// JSON serialization
// ---------------------------------------------------------------------------

namespace {

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

// Minimal cursor-based JSON reader, just enough for the sidecar's shape.
// Unknown keys are skipped (forward compatibility for later writers).
class JsonCursor {
 public:
  explicit JsonCursor(std::string_view text) : text_(text) {}

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Eat(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool Peek(char c) {
    SkipWs();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  bool AtEnd() {
    SkipWs();
    return pos_ >= text_.size();
  }

  bool ParseString(std::string* out) {
    SkipWs();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return false;
    }
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          return false;
        }
        const char esc = text_[pos_++];
        switch (esc) {
          case '"':
            out->push_back('"');
            break;
          case '\\':
            out->push_back('\\');
            break;
          case '/':
            out->push_back('/');
            break;
          case 'n':
            out->push_back('\n');
            break;
          case 'r':
            out->push_back('\r');
            break;
          case 't':
            out->push_back('\t');
            break;
          case 'b':
            out->push_back('\b');
            break;
          case 'f':
            out->push_back('\f');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              return false;
            }
            unsigned value = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              value <<= 4;
              if (h >= '0' && h <= '9') {
                value |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                value |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                value |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return false;
              }
            }
            // The writer only emits \u00XX for control bytes; decode the
            // low byte and ignore the (unused) non-ASCII plane.
            out->push_back(static_cast<char>(value & 0xFF));
            break;
          }
          default:
            return false;
        }
        continue;
      }
      out->push_back(c);
    }
    return false;  // unterminated
  }

  bool ParseUint64(uint64_t* out) {
    SkipWs();
    const size_t start = pos_;
    uint64_t value = 0;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      value = value * 10 + static_cast<uint64_t>(text_[pos_] - '0');
      ++pos_;
    }
    if (pos_ == start) {
      return false;
    }
    *out = value;
    return true;
  }

  bool ParseBool(bool* out) {
    SkipWs();
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      *out = true;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      *out = false;
      return true;
    }
    return false;
  }

  // Skips any JSON value (for unknown keys). Depth-capped.
  bool SkipValue(int depth = 0) {
    if (depth > 16) {
      return false;
    }
    SkipWs();
    if (pos_ >= text_.size()) {
      return false;
    }
    const char c = text_[pos_];
    if (c == '"') {
      std::string dummy;
      return ParseString(&dummy);
    }
    if (c == '{' || c == '[') {
      const char close = (c == '{') ? '}' : ']';
      ++pos_;
      if (Eat(close)) {
        return true;
      }
      while (true) {
        if (c == '{') {
          std::string key;
          if (!ParseString(&key) || !Eat(':')) {
            return false;
          }
        }
        if (!SkipValue(depth + 1)) {
          return false;
        }
        if (Eat(close)) {
          return true;
        }
        if (!Eat(',')) {
          return false;
        }
      }
    }
    if (c == 't' || c == 'f') {
      bool dummy;
      return ParseBool(&dummy);
    }
    if (c == 'n') {
      if (text_.compare(pos_, 4, "null") == 0) {
        pos_ += 4;
        return true;
      }
      return false;
    }
    // Number (allow a leading minus even though the writer never emits one).
    if (c == '-') {
      ++pos_;
    }
    uint64_t dummy;
    if (!ParseUint64(&dummy)) {
      return false;
    }
    // Fraction / exponent tails.
    while (pos_ < text_.size() &&
           (text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-' ||
            (text_[pos_] >= '0' && text_[pos_] <= '9'))) {
      ++pos_;
    }
    return true;
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

std::string SerializeQuarantineJson(const QuarantineSet& set) {
  std::string out = "{\"version\":1,\"blocks\":[";
  bool first = true;
  for (const QuarantineEntry& e : set.entries) {
    if (!first) {
      out.push_back(',');
    }
    first = false;
    out += "{\"seq\":" + std::to_string(e.seq) + ",\"code\":";
    AppendJsonString(&out, e.code);
    out += ",\"error\":";
    AppendJsonString(&out, e.error);
    out += ",\"tombstoned\":";
    out += e.tombstoned ? "true" : "false";
    out += ",\"quarantined_unix\":" + std::to_string(e.quarantined_unix);
    out.push_back('}');
  }
  out += "]}\n";
  return out;
}

Result<QuarantineSet> ParseQuarantineJson(std::string_view json) {
  JsonCursor cur(json);
  const auto corrupt = [](const char* what) {
    return Status(StatusCode::kCorruptData,
                  std::string("quarantine.json: ") + what);
  };
  if (!cur.Eat('{')) {
    return corrupt("expected top-level object");
  }
  QuarantineSet set;
  bool saw_blocks = false;
  if (!cur.Peek('}')) {
    while (true) {
      std::string key;
      if (!cur.ParseString(&key) || !cur.Eat(':')) {
        return corrupt("malformed key");
      }
      if (key == "version") {
        uint64_t version = 0;
        if (!cur.ParseUint64(&version)) {
          return corrupt("bad version");
        }
        if (version != 1) {
          return corrupt("unsupported version");
        }
      } else if (key == "blocks") {
        saw_blocks = true;
        if (!cur.Eat('[')) {
          return corrupt("blocks must be an array");
        }
        if (!cur.Eat(']')) {
          while (true) {
            if (!cur.Eat('{')) {
              return corrupt("block entry must be an object");
            }
            QuarantineEntry entry;
            bool saw_seq = false;
            if (!cur.Eat('}')) {
              while (true) {
                std::string field;
                if (!cur.ParseString(&field) || !cur.Eat(':')) {
                  return corrupt("malformed block field");
                }
                if (field == "seq") {
                  uint64_t seq = 0;
                  if (!cur.ParseUint64(&seq) || seq > UINT32_MAX) {
                    return corrupt("bad seq");
                  }
                  entry.seq = static_cast<uint32_t>(seq);
                  saw_seq = true;
                } else if (field == "code") {
                  if (!cur.ParseString(&entry.code)) {
                    return corrupt("bad code");
                  }
                } else if (field == "error") {
                  if (!cur.ParseString(&entry.error)) {
                    return corrupt("bad error");
                  }
                } else if (field == "tombstoned") {
                  if (!cur.ParseBool(&entry.tombstoned)) {
                    return corrupt("bad tombstoned");
                  }
                } else if (field == "quarantined_unix") {
                  if (!cur.ParseUint64(&entry.quarantined_unix)) {
                    return corrupt("bad quarantined_unix");
                  }
                } else if (!cur.SkipValue()) {
                  return corrupt("bad unknown field");
                }
                if (cur.Eat('}')) {
                  break;
                }
                if (!cur.Eat(',')) {
                  return corrupt("expected ',' in block entry");
                }
              }
            }
            if (!saw_seq) {
              return corrupt("block entry missing seq");
            }
            set.Add(std::move(entry));
            if (cur.Eat(']')) {
              break;
            }
            if (!cur.Eat(',')) {
              return corrupt("expected ',' in blocks array");
            }
          }
        }
      } else if (!cur.SkipValue()) {
        return corrupt("bad unknown top-level value");
      }
      if (cur.Eat('}')) {
        break;
      }
      if (!cur.Eat(',')) {
        return corrupt("expected ',' in top-level object");
      }
    }
  }
  if (!saw_blocks) {
    return corrupt("missing blocks array");
  }
  if (!cur.AtEnd()) {
    return corrupt("trailing bytes");
  }
  return set;
}

// ---------------------------------------------------------------------------
// Sidecar I/O
// ---------------------------------------------------------------------------

Result<QuarantineSet> LoadQuarantine(const std::string& dir, StorageEnv* env) {
  StorageEnv* e = EnvOrDefault(env);
  Result<std::string> bytes = ReadFileBytes(QuarantinePath(dir), e);
  if (!bytes.ok()) {
    if (bytes.status().code() == StatusCode::kNotFound) {
      return QuarantineSet{};  // healthy common case: no sidecar at all
    }
    return bytes.status();
  }
  return ParseQuarantineJson(*bytes);
}

Status SaveQuarantine(const std::string& dir, const QuarantineSet& set,
                      StorageEnv* env) {
  StorageEnv* e = EnvOrDefault(env);
  const std::string path = QuarantinePath(dir);
  if (set.empty()) {
    Status s = e->RemoveFile(path);
    if (!s.ok() && s.code() == StatusCode::kNotFound) {
      return OkStatus();
    }
    return s;
  }
  return WriteFileAtomic(path, SerializeQuarantineJson(set), e);
}

// ---------------------------------------------------------------------------
// Partial results
// ---------------------------------------------------------------------------

uint64_t PartialReport::lines_missing() const {
  uint64_t n = 0;
  for (const BlockQueryFailure& f : failures) {
    n += f.line_count;
  }
  return n;
}

std::string PartialReport::Render() const {
  if (failures.empty()) {
    return "complete";
  }
  std::string out = "partial: " + std::to_string(failures.size()) +
                    " block(s) unavailable, " +
                    std::to_string(lines_missing()) + " line(s) missing\n";
  for (const BlockQueryFailure& f : failures) {
    out += "  block " + std::to_string(f.seq) + " lines [" +
           std::to_string(f.first_line) + "," +
           std::to_string(f.first_line + f.line_count) + "): " + f.error;
    if (f.tombstoned) {
      out += " [tombstoned]";
    } else if (f.newly_quarantined) {
      out += " [newly quarantined]";
    } else {
      out += " [quarantined]";
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace loggrep
