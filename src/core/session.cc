#include "src/core/session.h"

#include "src/query/line_match.h"
#include "src/query/query_parser.h"

namespace loggrep {
namespace {

// If `command` == `previous` + " and <suffix...>" (case-insensitive "and"),
// returns the appended suffix ("<suffix...>"), else empty.
std::string_view RefinementSuffix(std::string_view previous,
                                  std::string_view command) {
  if (previous.empty() || command.size() <= previous.size() ||
      command.substr(0, previous.size()) != previous) {
    return {};
  }
  std::string_view rest = command.substr(previous.size());
  // Expect " and " (any case) next.
  if (rest.size() < 6 || rest[0] != ' ') {
    return {};
  }
  const std::string_view word = rest.substr(1, 3);
  if (!((word[0] == 'a' || word[0] == 'A') && (word[1] == 'n' || word[1] == 'N') &&
        (word[2] == 'd' || word[2] == 'D')) ||
      rest[4] != ' ') {
    return {};
  }
  return rest.substr(5);
}

}  // namespace

Result<SessionQueryResult> QuerySession::Query(std::string_view command) {
  SessionQueryResult out;
  const std::string command_key(command);
  if (auto memoized = memo_.Lookup(command_key); memoized.has_value()) {
    out.hits = std::move(memoized->hits);
    out.from_cache = true;
    last_command_ = command_key;
    last_hits_ = out.hits;
    has_last_ = true;
    return out;
  }
  const std::string_view suffix =
      has_last_ ? RefinementSuffix(last_command_, command) : std::string_view();
  if (!suffix.empty()) {
    // Parse just the appended clause; it must itself be a pure AND chain for
    // the incremental path to be sound ("a AND x AND y" refines "a", but
    // "a OR x" does not).
    Result<std::unique_ptr<QueryExpr>> appended = ParseQuery(suffix);
    bool pure_and = appended.ok();
    if (pure_and) {
      for (const QueryExpr* node = appended->get(); node != nullptr;
           node = node->left.get()) {
        if (node->kind != QueryExpr::Kind::kTerm &&
            node->kind != QueryExpr::Kind::kAnd) {
          pure_and = false;
          break;
        }
        if (node->kind == QueryExpr::Kind::kTerm) {
          break;
        }
      }
    }
    if (pure_and) {
      out.refined_incrementally = true;
      LineMatcher matcher;
      for (const auto& [line, text] : last_hits_) {
        if (matcher.MatchesQuery(text, **appended)) {
          out.hits.emplace_back(line, text);
        }
      }
      last_command_ = command_key;
      last_hits_ = out.hits;
      memo_.Insert(command_key, out.hits);
      return out;
    }
  }

  Result<QueryResult> full = engine_->Query(box_, command);
  if (!full.ok()) {
    return full.status();
  }
  out.hits = std::move(full->hits);
  out.from_cache = full->from_cache;
  last_command_ = command_key;
  last_hits_ = out.hits;
  has_last_ = true;
  memo_.Insert(command_key, out.hits);
  return out;
}

void QuerySession::Reset() {
  has_last_ = false;
  last_command_.clear();
  last_hits_.clear();
  memo_.Clear();
  // The memo fronts the engine's command cache; a reset must flush both or a
  // post-reset query could be answered with pre-reset hits.
  engine_->ClearCache();
}

void QuerySession::Rebind(std::string_view box_bytes) {
  Reset();
  box_ = box_bytes;
}

}  // namespace loggrep
