// QuerySession: the paper's *refining mode* (§3, §6.3).
//
// An engineer debugging an incident grows a command incrementally:
//   "ERROR"  ->  "ERROR and aborted"  ->  "ERROR and aborted and code:20012"
// Beyond the engine's query cache (which only replays identical commands), a
// session recognizes when a new command strictly refines the previous one by
// appending "AND <term>" clauses, and then filters the previous hit list
// directly instead of re-running the whole locate pipeline: with entry-level
// containment semantics, appending a conjunct can only shrink the result set.
#ifndef SRC_CORE_SESSION_H_
#define SRC_CORE_SESSION_H_

#include <string>
#include <string_view>
#include <unordered_map>

#include "src/core/engine.h"

namespace loggrep {

struct SessionQueryResult {
  QueryHits hits;
  // True when the result was narrowed from the previous command's hits
  // without touching the CapsuleBox.
  bool refined_incrementally = false;
  bool from_cache = false;
};

class QuerySession {
 public:
  // Borrows both; they must outlive the session.
  QuerySession(LogGrepEngine* engine, std::string_view box_bytes)
      : engine_(engine), box_(box_bytes) {}

  Result<SessionQueryResult> Query(std::string_view command);

  // Forget the refinement state and memoized results (e.g. the engineer
  // starts a new hypothesis).
  void Reset();

 private:
  LogGrepEngine* engine_;
  std::string_view box_;
  std::string last_command_;
  QueryHits last_hits_;
  bool has_last_ = false;
  // Session-local result memo: revisiting any earlier command is free even
  // when that command was answered by incremental refinement (which the
  // engine's own cache never sees).
  std::unordered_map<std::string, QueryHits> memo_;
};

}  // namespace loggrep

#endif  // SRC_CORE_SESSION_H_
