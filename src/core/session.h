// QuerySession: the paper's *refining mode* (§3, §6.3).
//
// An engineer debugging an incident grows a command incrementally:
//   "ERROR"  ->  "ERROR and aborted"  ->  "ERROR and aborted and code:20012"
// Beyond the engine's query cache (which only replays identical commands), a
// session recognizes when a new command strictly refines the previous one by
// appending "AND <term>" clauses, and then filters the previous hit list
// directly instead of re-running the whole locate pipeline: with entry-level
// containment semantics, appending a conjunct can only shrink the result set.
#ifndef SRC_CORE_SESSION_H_
#define SRC_CORE_SESSION_H_

#include <string>
#include <string_view>

#include "src/core/engine.h"
#include "src/query/query_cache.h"

namespace loggrep {

struct SessionQueryResult {
  QueryHits hits;
  // True when the result was narrowed from the previous command's hits
  // without touching the CapsuleBox.
  bool refined_incrementally = false;
  bool from_cache = false;
};

class QuerySession {
 public:
  // Byte budget for the session-local memo LRU (same budget discipline as
  // the engine's QueryCache, just smaller: one engineer's session).
  static constexpr size_t kMemoByteBudget = 16ull << 20;

  // Borrows both; they must outlive the session.
  QuerySession(LogGrepEngine* engine, std::string_view box_bytes)
      : engine_(engine), box_(box_bytes), memo_(kMemoByteBudget) {}

  Result<SessionQueryResult> Query(std::string_view command);

  // Forget the refinement state and memoized results (e.g. the engineer
  // starts a new hypothesis). Also clears the engine-level command cache the
  // memo fronts, so a reset can never serve pre-reset hits. The bound box is
  // unchanged: Reset is "same data, new hypothesis".
  void Reset();

  // Point the session at different box bytes ("same hypothesis, new data"):
  // the serving layer calls this when the archive set rolls the shard a
  // session was following mid-session. Defined as Reset + swap: every
  // refinement/memo shortcut is dropped, so no post-rebind query can ever be
  // answered from the previous box's hits. The new view must outlive the
  // session, like the constructor argument.
  void Rebind(std::string_view box_bytes);

  std::string_view box() const { return box_; }

 private:
  LogGrepEngine* engine_;
  std::string_view box_;
  std::string last_command_;
  QueryHits last_hits_;
  bool has_last_ = false;
  // Session-local result memo (bounded LRU): revisiting any earlier command
  // is free even when that command was answered by incremental refinement
  // (which the engine's own cache never sees).
  QueryCache memo_;
};

}  // namespace loggrep

#endif  // SRC_CORE_SESSION_H_
