// LogGrepEngine: the library's public API (the whole pipeline of Fig. 2).
//
// Compression: Parser (static patterns) -> Extractor (runtime patterns) ->
// Assembler (Capsules + stamps) -> Packer (CapsuleBox). Query: Locator
// (pattern + stamp filtering, fixed-length matching) -> Reconstructor, with a
// Query Cache in front.
//
// EngineOptions exposes one switch per technique so the §6.3 ablation
// versions ("w/o real", "w/o nomi", "w/o stamp", "w/o fixed", "w/o cache")
// and LogGrep-SP (§2.2) are configurations of the same engine.
#ifndef SRC_CORE_ENGINE_H_
#define SRC_CORE_ENGINE_H_

#include <string>
#include <string_view>

#include "src/capsule/assembler.h"
#include "src/codec/codec.h"
#include "src/parser/block_parser.h"
#include "src/query/locator.h"
#include "src/query/query_cache.h"

namespace loggrep {

struct EngineOptions {
  bool use_real = true;     // runtime patterns in real variable vectors
  bool use_nominal = true;  // runtime patterns in nominal variable vectors
  bool use_stamps = true;   // Capsule-stamp filtering during queries
  bool use_fixed = true;    // fixed-length padding + Boyer-Moore matching
  bool use_cache = true;    // query cache
  bool static_only = false; // LogGrep-SP: static patterns only

  const Codec* codec = nullptr;  // defaults to the LZMA stand-in (XzCodec)
  TemplateMinerOptions miner;
  TreeExtractorOptions tree;
};

struct QueryResult {
  QueryHits hits;        // (line number, original text), in block order
  LocatorStats locator;  // zeroed for cache hits
  bool from_cache = false;
};

class LogGrepEngine {
 public:
  explicit LogGrepEngine(EngineOptions options = {});

  // Compresses one log block into serialized CapsuleBox bytes.
  std::string CompressBlock(std::string_view text) const;

  // Runs a grep-like query command against a CapsuleBox.
  Result<QueryResult> Query(std::string_view box_bytes, std::string_view command);

  const EngineOptions& options() const { return options_; }
  const QueryCache& cache() const { return cache_; }
  void ClearCache() { cache_.Clear(); }

 private:
  EngineOptions options_;
  QueryCache cache_;
};

}  // namespace loggrep

#endif  // SRC_CORE_ENGINE_H_
