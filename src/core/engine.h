// LogGrepEngine: the library's public API (the whole pipeline of Fig. 2).
//
// Compression: Parser (static patterns) -> Extractor (runtime patterns) ->
// Assembler (Capsules + stamps) -> Packer (CapsuleBox). Query: Locator
// (pattern + stamp filtering, fixed-length matching) -> Reconstructor, with
// two caches in front:
//   - a command-level QueryCache (§3) memoizing whole results per
//     (box identity, command), and
//   - a shared BoxCache holding opened boxes and decompressed Capsules so
//     warm queries skip file reads, metadata parses and decompression.
// Box identity is a BoxKey (two independent 64-bit hashes + size, or an
// archive-assigned sequence key), so a hash collision between two different
// blocks can no longer serve the wrong block's hits.
//
// EngineOptions exposes one switch per technique so the §6.3 ablation
// versions ("w/o real", "w/o nomi", "w/o stamp", "w/o fixed", "w/o cache")
// and LogGrep-SP (§2.2) are configurations of the same engine.
#ifndef SRC_CORE_ENGINE_H_
#define SRC_CORE_ENGINE_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "src/capsule/assembler.h"
#include "src/codec/codec.h"
#include "src/common/metrics.h"
#include "src/parser/block_parser.h"
#include "src/query/box_cache.h"
#include "src/query/locator.h"
#include "src/query/query_cache.h"

namespace loggrep {

struct EngineOptions {
  bool use_real = true;     // runtime patterns in real variable vectors
  bool use_nominal = true;  // runtime patterns in nominal variable vectors
  bool use_stamps = true;   // Capsule-stamp filtering during queries
  bool use_fixed = true;    // fixed-length padding + Boyer-Moore matching
  bool use_cache = true;    // command-level query cache
  bool static_only = false; // LogGrep-SP: static patterns only

  // Shared box/capsule cache. When `box_cache` is null and `use_box_cache`
  // is set, the engine owns a private cache sized by
  // `box_cache_budget_bytes`; pass an external cache to share it across
  // engines (LogArchive does this for its ParallelQuery workers).
  bool use_box_cache = true;
  size_t box_cache_budget_bytes = 256ull << 20;
  BoxCache* box_cache = nullptr;  // borrowed; must outlive the engine

  // Byte budget of the command-level QueryCache LRU.
  size_t query_cache_budget_bytes = QueryCache::kDefaultByteBudget;

  // Optional registry for query-side counters ("query.*",
  // "query.box_cache.*"). Borrowed; must outlive the engine.
  MetricsRegistry* metrics = nullptr;

  const Codec* codec = nullptr;  // defaults to the LZMA stand-in (XzCodec)
  TemplateMinerOptions miner;
  TreeExtractorOptions tree;
};

struct QueryResult {
  QueryHits hits;        // (line number, original text), in block order
  // Cost accounting. For cache hits this is the snapshot of the execution
  // that originally produced the result (not zeros).
  LocatorStats locator;
  bool from_cache = false;
};

class LogGrepEngine {
 public:
  // Produces the serialized CapsuleBox bytes for `key` on a cache miss.
  using BoxLoader = std::function<Result<std::string>()>;

  explicit LogGrepEngine(EngineOptions options = {});

  // Compresses one log block into serialized CapsuleBox bytes.
  std::string CompressBlock(std::string_view text) const;

  // Runs a grep-like query command against a CapsuleBox. Box identity is
  // content-derived (BoxKey::FromBytes).
  Result<QueryResult> Query(std::string_view box_bytes, std::string_view command);

  // Same, but with an externally assigned identity and a lazy loader: on a
  // warm box-cache entry the loader is never invoked, so callers that read
  // box bytes from disk (LogArchive) skip the file read entirely.
  Result<QueryResult> QueryBox(const BoxKey& key, const BoxLoader& load,
                               std::string_view command);

  // Explain variants: run the query with a recorder attached, filling
  // `block` with the per-variable-vector, per-Capsule decision tree (see
  // src/query/explain.h). Explained executions bypass the command-level
  // QueryCache in both directions — the record must describe a real
  // execution, and a synthetic cache-bypass run must not overwrite the
  // cache's cost snapshots. `block` must be non-null.
  Result<QueryResult> ExplainQuery(std::string_view box_bytes,
                                   std::string_view command,
                                   BlockExplain* block);
  Result<QueryResult> ExplainBox(const BoxKey& key, const BoxLoader& load,
                                 std::string_view command, BlockExplain* block);

  const EngineOptions& options() const { return options_; }
  const QueryCache& cache() const { return cache_; }
  // The effective shared cache (owned or borrowed); null when disabled.
  BoxCache* box_cache() const;
  // Clears the command-level cache (sessions call this on Reset so a reset
  // can never serve pre-reset hits). The box cache keeps its entries: they
  // are identity-keyed bytes, not query answers.
  void ClearCache() { cache_.Clear(); }

 private:
  Result<QueryResult> QueryInternal(const BoxKey& key,
                                    std::string_view inline_bytes,
                                    const BoxLoader* load,
                                    std::string_view command,
                                    BlockExplain* explain);

  EngineOptions options_;
  QueryCache cache_;
  std::unique_ptr<BoxCache> owned_box_cache_;
};

}  // namespace loggrep

#endif  // SRC_CORE_ENGINE_H_
