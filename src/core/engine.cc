#include "src/core/engine.h"

#include <algorithm>
#include <optional>

#include "src/common/timer.h"
#include "src/common/trace.h"
#include "src/query/query_parser.h"
#include "src/query/reconstructor.h"

namespace loggrep {
namespace {

inline uint64_t ElapsedNanos(const WallTimer& timer) {
  return timer.ElapsedNanos();
}

// Boolean evaluation state: one RowSet per group plus one for raw outliers.
struct Evaluation {
  std::vector<RowSet> groups;
  RowSet outliers = RowSet::None(0);
};

Evaluation EvaluateTerm(BoxQuerier& querier, const SearchTerm& term) {
  const CapsuleBoxMeta& meta = querier.box().meta();
  Evaluation ev;
  ev.groups.reserve(meta.groups.size());
  for (uint32_t g = 0; g < meta.groups.size(); ++g) {
    RowSet rows = RowSet::All(meta.groups[g].row_count);
    for (const std::string& kw : term.keywords) {
      if (rows.IsEmpty()) {
        break;
      }
      rows = rows.IntersectWith(querier.MatchKeywordInGroup(g, kw));
    }
    ev.groups.push_back(std::move(rows));
  }
  const uint32_t outlier_universe =
      static_cast<uint32_t>(meta.outlier_line_numbers.size());
  ev.outliers = RowSet::All(outlier_universe);
  for (const std::string& kw : term.keywords) {
    if (ev.outliers.IsEmpty()) {
      break;
    }
    ev.outliers = ev.outliers.IntersectWith(querier.MatchKeywordInOutliers(kw));
  }
  return ev;
}

Evaluation EvaluateAll(BoxQuerier& querier) {
  const CapsuleBoxMeta& meta = querier.box().meta();
  Evaluation ev;
  for (const GroupMeta& g : meta.groups) {
    ev.groups.push_back(RowSet::All(g.row_count));
  }
  ev.outliers =
      RowSet::All(static_cast<uint32_t>(meta.outlier_line_numbers.size()));
  return ev;
}

Evaluation EvaluateExpr(BoxQuerier& querier, const QueryExpr& expr) {
  switch (expr.kind) {
    case QueryExpr::Kind::kTerm:
      return EvaluateTerm(querier, expr.term);
    case QueryExpr::Kind::kAnd: {
      Evaluation l = EvaluateExpr(querier, *expr.left);
      const Evaluation r = EvaluateExpr(querier, *expr.right);
      for (size_t g = 0; g < l.groups.size(); ++g) {
        l.groups[g] = l.groups[g].IntersectWith(r.groups[g]);
      }
      l.outliers = l.outliers.IntersectWith(r.outliers);
      return l;
    }
    case QueryExpr::Kind::kOr: {
      Evaluation l = EvaluateExpr(querier, *expr.left);
      const Evaluation r = EvaluateExpr(querier, *expr.right);
      for (size_t g = 0; g < l.groups.size(); ++g) {
        l.groups[g] = l.groups[g].UnionWith(r.groups[g]);
      }
      l.outliers = l.outliers.UnionWith(r.outliers);
      return l;
    }
    case QueryExpr::Kind::kNot: {
      Evaluation l = expr.left != nullptr ? EvaluateExpr(querier, *expr.left)
                                          : EvaluateAll(querier);
      const Evaluation r = EvaluateExpr(querier, *expr.right);
      for (size_t g = 0; g < l.groups.size(); ++g) {
        l.groups[g] = l.groups[g].IntersectWith(r.groups[g].Complement());
      }
      l.outliers = l.outliers.IntersectWith(r.outliers.Complement());
      return l;
    }
  }
  return Evaluation{};
}

}  // namespace

LogGrepEngine::LogGrepEngine(EngineOptions options)
    : options_(options), cache_(options.query_cache_budget_bytes) {
  if (options_.codec == nullptr) {
    options_.codec = &GetXzCodec();
  }
  if (options_.use_box_cache && options_.box_cache == nullptr) {
    BoxCacheOptions copts;
    copts.byte_budget = options_.box_cache_budget_bytes;
    copts.metrics = options_.metrics;
    owned_box_cache_ = std::make_unique<BoxCache>(copts);
  }
}

BoxCache* LogGrepEngine::box_cache() const {
  if (!options_.use_box_cache) {
    return nullptr;
  }
  return options_.box_cache != nullptr ? options_.box_cache
                                       : owned_box_cache_.get();
}

std::string LogGrepEngine::CompressBlock(std::string_view text) const {
  const BlockParser parser(options_.miner);
  const ParsedBlock parsed = parser.Parse(text);

  CapsuleBoxBuilder builder(*options_.codec);
  AssemblerOptions aopts;
  aopts.use_real = options_.use_real;
  aopts.use_nominal = options_.use_nominal;
  aopts.static_only = options_.static_only;
  aopts.padded = options_.use_fixed;
  aopts.tree = options_.tree;
  const Assembler assembler(aopts, &builder);

  CapsuleBoxMeta meta;
  meta.codec_id = options_.codec->id();
  meta.padded = options_.use_fixed;
  meta.total_lines = parsed.total_lines;
  meta.templates = parsed.templates;
  for (const ParsedGroup& pg : parsed.groups) {
    GroupMeta gm;
    gm.template_id = pg.template_id;
    gm.row_count = static_cast<uint32_t>(pg.line_numbers.size());
    gm.line_numbers = pg.line_numbers;
    for (const std::vector<std::string>& vv : pg.var_vectors) {
      gm.vars.push_back(assembler.AssembleVariable(vv));
    }
    meta.groups.push_back(std::move(gm));
  }
  if (!parsed.outlier_lines.empty()) {
    std::vector<std::string_view> views(parsed.outlier_lines.begin(),
                                        parsed.outlier_lines.end());
    meta.outlier_capsule = builder.AddCapsule(BuildDelimitedBlob(views));
    meta.outlier_line_numbers = parsed.outlier_line_numbers;
  }
  return std::move(builder).Finish(meta);
}

Result<QueryResult> LogGrepEngine::Query(std::string_view box_bytes,
                                         std::string_view command) {
  return QueryInternal(BoxKey::FromBytes(box_bytes), box_bytes, nullptr,
                       command, nullptr);
}

Result<QueryResult> LogGrepEngine::QueryBox(const BoxKey& key,
                                            const BoxLoader& load,
                                            std::string_view command) {
  return QueryInternal(key, std::string_view(), &load, command, nullptr);
}

Result<QueryResult> LogGrepEngine::ExplainQuery(std::string_view box_bytes,
                                                std::string_view command,
                                                BlockExplain* block) {
  return QueryInternal(BoxKey::FromBytes(box_bytes), box_bytes, nullptr,
                       command, block);
}

Result<QueryResult> LogGrepEngine::ExplainBox(const BoxKey& key,
                                              const BoxLoader& load,
                                              std::string_view command,
                                              BlockExplain* block) {
  return QueryInternal(key, std::string_view(), &load, command, block);
}

Result<QueryResult> LogGrepEngine::QueryInternal(const BoxKey& key,
                                                 std::string_view inline_bytes,
                                                 const BoxLoader* load,
                                                 std::string_view command,
                                                 BlockExplain* explain) {
  const TraceSpan query_span("engine.query", "query");
  // Cache entries are per (box identity, command): the same command against
  // another block must not serve stale hits, and the identity is a dual hash
  // plus size so a single 64-bit collision cannot alias two blocks.
  std::string command_key = key.ToString();
  command_key += '|';
  command_key += command;
  // Explained executions bypass the command cache: the decision tree must
  // describe what this run actually did.
  if (options_.use_cache && explain == nullptr) {
    if (auto cached = cache_.Lookup(command_key); cached.has_value()) {
      QueryResult result;
      result.hits = std::move(cached->hits);
      result.locator = cached->locator;  // what the original execution cost
      result.from_cache = true;
      if (options_.metrics != nullptr) {
        options_.metrics->GetOrCreate("query.command_cache_hits")->Increment();
      }
      return result;
    }
  }

  Result<std::unique_ptr<QueryExpr>> expr = ParseQuery(command);
  if (!expr.ok()) {
    return expr.status();
  }

  // Open stage: through the shared cache when enabled (a warm entry skips
  // the loader — typically a file read — and the metadata parse), otherwise
  // a local zero-copy open.
  LocatorStats open_stats;
  BoxCache* shared = box_cache();
  std::shared_ptr<const OpenedBox> opened;  // pins cache entry if used
  std::string local_bytes;                  // owns bytes on the uncached path
  std::optional<CapsuleBox> local_box;
  const CapsuleBox* box = nullptr;
  {
    const TraceSpan open_span("engine.open", "query");
    const WallTimer open_timer;
    if (shared != nullptr) {
      bool was_hit = false;
      auto loader = [&]() -> Result<std::string> {
        if (load != nullptr) {
          return (*load)();
        }
        return std::string(inline_bytes);
      };
      Result<std::shared_ptr<const OpenedBox>> entry =
          shared->GetOrOpenBox(key, loader, &was_hit);
      if (!entry.ok()) {
        return entry.status();
      }
      opened = std::move(*entry);
      box = &opened->box();
      if (was_hit) {
        ++open_stats.cache_hits;
        open_stats.bytes_saved += opened->bytes().size();
      } else {
        ++open_stats.cache_misses;
      }
    } else {
      std::string_view bytes = inline_bytes;
      if (load != nullptr) {
        Result<std::string> loaded = (*load)();
        if (!loaded.ok()) {
          return loaded.status();
        }
        local_bytes = std::move(*loaded);
        bytes = local_bytes;
      }
      Result<CapsuleBox> parsed = CapsuleBox::Open(bytes);
      if (!parsed.ok()) {
        return parsed.status();
      }
      local_box.emplace(std::move(*parsed));
      box = &*local_box;
    }
    open_stats.open_nanos = ElapsedNanos(open_timer);
  }

  LocatorOptions lopts;
  lopts.use_stamps = options_.use_stamps;
  lopts.use_bm = options_.use_fixed;
  BoxQuerier querier(*box, lopts, shared, key);
  std::optional<ExplainRecorder> recorder;
  if (explain != nullptr) {
    recorder.emplace(explain);
    querier.AttachExplain(&*recorder);
  }

  const WallTimer scan_timer;
  uint64_t scan_nanos = 0;
  Evaluation ev;
  {
    const TraceSpan scan_span("engine.scan", "query");
    ev = EvaluateExpr(querier, **expr);
    scan_nanos = ElapsedNanos(scan_timer);
  }
  if (!querier.status().ok()) {
    return querier.status();
  }

  const TraceSpan reconstruct_span("engine.reconstruct", "query");
  if (recorder.has_value()) {
    // Capsules opened from here on are for rendering matched rows, not
    // matching; attribute them to a dedicated stage.
    recorder->BeginStage("reconstruct");
  }
  const WallTimer reconstruct_timer;
  Reconstructor reconstructor(&querier);
  QueryResult result;
  const CapsuleBoxMeta& meta = box->meta();
  for (uint32_t g = 0; g < ev.groups.size(); ++g) {
    for (uint32_t row : ev.groups[g].ToRows()) {
      result.hits.emplace_back(meta.groups[g].line_numbers[row], std::string());
      reconstructor.RenderRowTo(g, row, &result.hits.back().second);
    }
  }
  for (uint32_t i : ev.outliers.ToRows()) {
    result.hits.emplace_back(meta.outlier_line_numbers[i], std::string());
    reconstructor.RenderOutlierTo(i, &result.hits.back().second);
  }
  if (!querier.status().ok()) {
    return querier.status();
  }
  // Restore global block order (entries within one group are already
  // ordered; this is the cross-group merge of §3).
  std::sort(result.hits.begin(), result.hits.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  result.locator = querier.stats();
  result.locator.Accumulate(open_stats);
  // The scan stage is the boolean evaluation minus the decompression and
  // stamp checks it triggered (those are accounted to their own stages).
  const uint64_t charged = result.locator.decompress_nanos +
                           result.locator.stamp_filter_nanos;
  result.locator.scan_nanos = scan_nanos > charged ? scan_nanos - charged : 0;
  result.locator.reconstruct_nanos = ElapsedNanos(reconstruct_timer);

  if (explain != nullptr) {
    explain->hits = result.hits.size();
  }

  if (options_.metrics != nullptr) {
    options_.metrics->GetOrCreate("query.count")->Increment();
    options_.metrics->GetOrCreate("query.bytes_decompressed")
        ->Add(result.locator.bytes_decompressed);
    // Per-query stage latencies feed histograms (p50/p95/p99 snapshots);
    // histogram sums replace the old per-stage cumulative counters.
    options_.metrics->GetOrCreateHistogram("query.open_ns")
        ->Record(result.locator.open_nanos);
    options_.metrics->GetOrCreateHistogram("query.scan_ns")
        ->Record(result.locator.scan_nanos);
    options_.metrics->GetOrCreateHistogram("query.decompress_ns")
        ->Record(result.locator.decompress_nanos);
    options_.metrics->GetOrCreateHistogram("query.stamp_filter_ns")
        ->Record(result.locator.stamp_filter_nanos);
    options_.metrics->GetOrCreateHistogram("query.reconstruct_ns")
        ->Record(result.locator.reconstruct_nanos);
  }

  if (options_.use_cache && explain == nullptr) {
    cache_.Insert(command_key, CachedQuery{result.hits, result.locator});
  }
  return result;
}

}  // namespace loggrep
