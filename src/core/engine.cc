#include "src/core/engine.h"

#include <algorithm>

#include "src/common/hash.h"
#include "src/query/query_parser.h"
#include "src/query/reconstructor.h"

namespace loggrep {
namespace {

// Boolean evaluation state: one RowSet per group plus one for raw outliers.
struct Evaluation {
  std::vector<RowSet> groups;
  RowSet outliers = RowSet::None(0);
};

Evaluation EvaluateTerm(BoxQuerier& querier, const SearchTerm& term) {
  const CapsuleBoxMeta& meta = querier.box().meta();
  Evaluation ev;
  ev.groups.reserve(meta.groups.size());
  for (uint32_t g = 0; g < meta.groups.size(); ++g) {
    RowSet rows = RowSet::All(meta.groups[g].row_count);
    for (const std::string& kw : term.keywords) {
      if (rows.IsEmpty()) {
        break;
      }
      rows = rows.IntersectWith(querier.MatchKeywordInGroup(g, kw));
    }
    ev.groups.push_back(std::move(rows));
  }
  const uint32_t outlier_universe =
      static_cast<uint32_t>(meta.outlier_line_numbers.size());
  ev.outliers = RowSet::All(outlier_universe);
  for (const std::string& kw : term.keywords) {
    if (ev.outliers.IsEmpty()) {
      break;
    }
    ev.outliers = ev.outliers.IntersectWith(querier.MatchKeywordInOutliers(kw));
  }
  return ev;
}

Evaluation EvaluateAll(BoxQuerier& querier) {
  const CapsuleBoxMeta& meta = querier.box().meta();
  Evaluation ev;
  for (const GroupMeta& g : meta.groups) {
    ev.groups.push_back(RowSet::All(g.row_count));
  }
  ev.outliers =
      RowSet::All(static_cast<uint32_t>(meta.outlier_line_numbers.size()));
  return ev;
}

Evaluation EvaluateExpr(BoxQuerier& querier, const QueryExpr& expr) {
  switch (expr.kind) {
    case QueryExpr::Kind::kTerm:
      return EvaluateTerm(querier, expr.term);
    case QueryExpr::Kind::kAnd: {
      Evaluation l = EvaluateExpr(querier, *expr.left);
      const Evaluation r = EvaluateExpr(querier, *expr.right);
      for (size_t g = 0; g < l.groups.size(); ++g) {
        l.groups[g] = l.groups[g].IntersectWith(r.groups[g]);
      }
      l.outliers = l.outliers.IntersectWith(r.outliers);
      return l;
    }
    case QueryExpr::Kind::kOr: {
      Evaluation l = EvaluateExpr(querier, *expr.left);
      const Evaluation r = EvaluateExpr(querier, *expr.right);
      for (size_t g = 0; g < l.groups.size(); ++g) {
        l.groups[g] = l.groups[g].UnionWith(r.groups[g]);
      }
      l.outliers = l.outliers.UnionWith(r.outliers);
      return l;
    }
    case QueryExpr::Kind::kNot: {
      Evaluation l = expr.left != nullptr ? EvaluateExpr(querier, *expr.left)
                                          : EvaluateAll(querier);
      const Evaluation r = EvaluateExpr(querier, *expr.right);
      for (size_t g = 0; g < l.groups.size(); ++g) {
        l.groups[g] = l.groups[g].IntersectWith(r.groups[g].Complement());
      }
      l.outliers = l.outliers.IntersectWith(r.outliers.Complement());
      return l;
    }
  }
  return Evaluation{};
}

}  // namespace

LogGrepEngine::LogGrepEngine(EngineOptions options) : options_(options) {
  if (options_.codec == nullptr) {
    options_.codec = &GetXzCodec();
  }
}

std::string LogGrepEngine::CompressBlock(std::string_view text) const {
  const BlockParser parser(options_.miner);
  const ParsedBlock parsed = parser.Parse(text);

  CapsuleBoxBuilder builder(*options_.codec);
  AssemblerOptions aopts;
  aopts.use_real = options_.use_real;
  aopts.use_nominal = options_.use_nominal;
  aopts.static_only = options_.static_only;
  aopts.padded = options_.use_fixed;
  aopts.tree = options_.tree;
  const Assembler assembler(aopts, &builder);

  CapsuleBoxMeta meta;
  meta.codec_id = options_.codec->id();
  meta.padded = options_.use_fixed;
  meta.total_lines = parsed.total_lines;
  meta.templates = parsed.templates;
  for (const ParsedGroup& pg : parsed.groups) {
    GroupMeta gm;
    gm.template_id = pg.template_id;
    gm.row_count = static_cast<uint32_t>(pg.line_numbers.size());
    gm.line_numbers = pg.line_numbers;
    for (const std::vector<std::string>& vv : pg.var_vectors) {
      gm.vars.push_back(assembler.AssembleVariable(vv));
    }
    meta.groups.push_back(std::move(gm));
  }
  if (!parsed.outlier_lines.empty()) {
    std::vector<std::string_view> views(parsed.outlier_lines.begin(),
                                        parsed.outlier_lines.end());
    meta.outlier_capsule = builder.AddCapsule(BuildDelimitedBlob(views));
    meta.outlier_line_numbers = parsed.outlier_line_numbers;
  }
  return std::move(builder).Finish(meta);
}

Result<QueryResult> LogGrepEngine::Query(std::string_view box_bytes,
                                         std::string_view command) {
  // Cache entries are per (box, command): the same command against another
  // block must not serve stale hits.
  std::string command_key = std::to_string(Fnv1a64(box_bytes));
  command_key += '|';
  command_key += command;
  if (options_.use_cache) {
    if (auto cached = cache_.Lookup(command_key); cached.has_value()) {
      QueryResult result;
      result.hits = std::move(*cached);
      result.from_cache = true;
      return result;
    }
  }

  Result<std::unique_ptr<QueryExpr>> expr = ParseQuery(command);
  if (!expr.ok()) {
    return expr.status();
  }
  Result<CapsuleBox> box = CapsuleBox::Open(box_bytes);
  if (!box.ok()) {
    return box.status();
  }

  LocatorOptions lopts;
  lopts.use_stamps = options_.use_stamps;
  lopts.use_bm = options_.use_fixed;
  BoxQuerier querier(*box, lopts);
  const Evaluation ev = EvaluateExpr(querier, **expr);
  if (!querier.status().ok()) {
    return querier.status();
  }

  Reconstructor reconstructor(&querier);
  QueryResult result;
  const CapsuleBoxMeta& meta = box->meta();
  for (uint32_t g = 0; g < ev.groups.size(); ++g) {
    for (uint32_t row : ev.groups[g].ToRows()) {
      result.hits.emplace_back(meta.groups[g].line_numbers[row],
                               reconstructor.RenderRow(g, row));
    }
  }
  for (uint32_t i : ev.outliers.ToRows()) {
    result.hits.emplace_back(meta.outlier_line_numbers[i],
                             reconstructor.RenderOutlier(i));
  }
  if (!querier.status().ok()) {
    return querier.status();
  }
  // Restore global block order (entries within one group are already
  // ordered; this is the cross-group merge of §3).
  std::sort(result.hits.begin(), result.hits.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  result.locator = querier.stats();

  if (options_.use_cache) {
    cache_.Insert(command_key, result.hits);
  }
  return result;
}

}  // namespace loggrep
