#include "src/capsule/stamp.h"

#include <algorithm>

namespace loggrep {

StampProbe ProbeForFragment(std::string_view fragment) {
  return {TypeMaskOf(fragment), static_cast<uint32_t>(fragment.size())};
}

StampProbe ProbeForKeyword(std::string_view keyword) {
  StampProbe probe;
  for (char c : keyword) {
    if (c == '*') {
      continue;
    }
    ++probe.min_len;  // '?' consumes one character of unknown class
    if (c != '?') {
      probe.mask |= CharClassOf(c);
    }
  }
  return probe;
}

CapsuleStamp CapsuleStamp::Of(const std::vector<std::string_view>& values) {
  CapsuleStamp s;
  for (std::string_view v : values) {
    s.Absorb(v);
  }
  return s;
}

void CapsuleStamp::Absorb(std::string_view value) {
  mask |= TypeMaskOf(value);
  max_len = std::max(max_len, static_cast<uint32_t>(value.size()));
}

std::string CapsuleStamp::ToString() const {
  return "typ=" + std::to_string(static_cast<int>(mask)) +
         ",len=" + std::to_string(max_len);
}

void CapsuleStamp::WriteTo(ByteWriter& out) const {
  out.PutU8(mask);
  out.PutVarint(max_len);
}

Result<CapsuleStamp> CapsuleStamp::ReadFrom(ByteReader& in) {
  Result<uint8_t> mask = in.ReadU8();
  if (!mask.ok()) {
    return mask.status();
  }
  Result<uint64_t> len = in.ReadVarint();
  if (!len.ok()) {
    return len.status();
  }
  CapsuleStamp s;
  s.mask = *mask;
  s.max_len = static_cast<uint32_t>(*len);
  return s;
}

}  // namespace loggrep
