// CapsuleBox: the compressed on-disk representation of one log block (§3).
//
// Layout:
//   [u32 magic "LGCB"][u8 version][varint meta_len][meta][capsule payloads]
// The metadata holds the static patterns, per-group variable-vector metadata
// (runtime patterns, stamps, capsule references), and a capsule directory of
// (offset, length) pairs into the payload region. Each capsule payload is an
// independently compressed blob (self-describing codec container), so a query
// can decompress exactly the Capsules it needs.
#ifndef SRC_CAPSULE_CAPSULE_BOX_H_
#define SRC_CAPSULE_CAPSULE_BOX_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "src/capsule/capsule.h"
#include "src/capsule/stamp.h"
#include "src/codec/codec.h"
#include "src/common/result.h"
#include "src/parser/static_pattern.h"
#include "src/pattern/runtime_pattern.h"

namespace loggrep {

// A real variable vector stored as per-sub-variable Capsules (§4.2, Fig. 4).
struct RealVarMeta {
  RuntimePattern pattern;
  std::vector<CapsuleStamp> subvar_stamps;    // one per sub-variable
  std::vector<uint32_t> subvar_capsules;      // one per sub-variable
  std::vector<uint32_t> outlier_rows;         // group rows stored as outliers
  uint32_t outlier_capsule = kNoCapsule;      // delimited; kNoCapsule if none
};

// One dictionary section of a nominal variable vector (§4.2, Fig. 5).
struct NominalPatternMeta {
  RuntimePattern pattern;
  CapsuleStamp stamp;   // over the section's full values; max_len = pad width
  uint32_t count = 0;   // dictionary entries in this section
};

// A nominal variable vector: dictionary Capsule + index Capsule.
struct NominalVarMeta {
  std::vector<NominalPatternMeta> patterns;
  uint32_t dict_capsule = kNoCapsule;
  uint32_t index_capsule = kNoCapsule;
  uint32_t index_width = 0;  // decimal digits per index entry ("IdxLen")
};

// Whole-vector storage: LogGrep-SP mode and ablation fallbacks (§2.2).
struct WholeVarMeta {
  CapsuleStamp stamp;
  uint32_t capsule = kNoCapsule;
};

struct VarMeta {
  std::variant<RealVarMeta, NominalVarMeta, WholeVarMeta> repr;

  bool is_real() const { return std::holds_alternative<RealVarMeta>(repr); }
  bool is_nominal() const { return std::holds_alternative<NominalVarMeta>(repr); }
  bool is_whole() const { return std::holds_alternative<WholeVarMeta>(repr); }
  const RealVarMeta& real() const { return std::get<RealVarMeta>(repr); }
  const NominalVarMeta& nominal() const { return std::get<NominalVarMeta>(repr); }
  const WholeVarMeta& whole() const { return std::get<WholeVarMeta>(repr); }
};

struct GroupMeta {
  uint32_t template_id = 0;
  uint32_t row_count = 0;
  std::vector<uint32_t> line_numbers;  // delta-encoded on disk
  std::vector<VarMeta> vars;           // one per template variable slot
};

struct CapsuleBoxMeta {
  uint8_t codec_id = 0;
  bool padded = true;  // fixed-length layout in force (§5.2)
  uint32_t total_lines = 0;
  std::vector<StaticPattern> templates;
  std::vector<GroupMeta> groups;
  uint32_t outlier_capsule = kNoCapsule;  // raw unparsed lines (delimited)
  std::vector<uint32_t> outlier_line_numbers;
};

// Accumulates compressed capsules, then serializes metadata + payload.
class CapsuleBoxBuilder {
 public:
  explicit CapsuleBoxBuilder(const Codec& codec) : codec_(codec) {}

  // Compresses `raw` and returns the new capsule id.
  uint32_t AddCapsule(std::string_view raw);

  const Codec& codec() const { return codec_; }
  // Total compressed payload bytes so far.
  size_t payload_size() const { return payload_.size(); }

  std::string Finish(const CapsuleBoxMeta& meta) &&;

 private:
  const Codec& codec_;
  std::string payload_;
  std::vector<std::pair<uint64_t, uint64_t>> directory_;  // offset, length
};

// Read-side view over serialized CapsuleBox bytes (zero-copy metadata parse;
// capsules decompress on demand).
class CapsuleBox {
 public:
  static Result<CapsuleBox> Open(std::string_view bytes);

  const CapsuleBoxMeta& meta() const { return meta_; }
  size_t CapsuleCount() const { return directory_.size(); }
  // Compressed size of one capsule (for accounting).
  Result<uint64_t> CapsuleCompressedSize(uint32_t id) const;
  Result<std::string> ReadCapsule(uint32_t id) const;

 private:
  CapsuleBoxMeta meta_;
  std::vector<std::pair<uint64_t, uint64_t>> directory_;
  std::string_view payload_;  // borrows from the bytes passed to Open
};

}  // namespace loggrep

#endif  // SRC_CAPSULE_CAPSULE_BOX_H_
