#include "src/capsule/capsule.h"

#include <cassert>

namespace loggrep {

std::string BuildPaddedBlob(const std::vector<std::string_view>& values,
                            uint32_t width) {
  std::string blob;
  blob.reserve(static_cast<size_t>(values.size()) * width);
  for (std::string_view v : values) {
    assert(v.size() <= width);
    blob.append(v.data(), v.size());
    blob.append(width - v.size(), kPadChar);
  }
  return blob;
}

std::string_view TrimCell(std::string_view cell) {
  const size_t pad = cell.find(kPadChar);
  return pad == std::string_view::npos ? cell : cell.substr(0, pad);
}

std::string BuildDelimitedBlob(const std::vector<std::string_view>& values) {
  std::string blob;
  size_t total = 0;
  for (std::string_view v : values) {
    total += v.size() + 1;
  }
  blob.reserve(total);
  for (std::string_view v : values) {
    assert(v.find('\n') == std::string_view::npos);
    blob.append(v.data(), v.size());
    blob.push_back('\n');
  }
  return blob;
}

std::vector<std::string_view> SplitDelimitedBlob(std::string_view blob) {
  std::vector<std::string_view> values;
  size_t start = 0;
  for (size_t i = 0; i < blob.size(); ++i) {
    if (blob[i] == '\n') {
      values.push_back(blob.substr(start, i - start));
      start = i + 1;
    }
  }
  return values;
}

}  // namespace loggrep
