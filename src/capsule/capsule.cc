#include "src/capsule/capsule.h"

#include <cassert>

#include "src/common/simd.h"

namespace loggrep {

std::string BuildPaddedBlob(const std::vector<std::string_view>& values,
                            uint32_t width) {
  std::string blob;
  blob.reserve(static_cast<size_t>(values.size()) * width);
  for (std::string_view v : values) {
    assert(v.size() <= width);
    blob.append(v.data(), v.size());
    blob.append(width - v.size(), kPadChar);
  }
  return blob;
}

std::string_view TrimCell(std::string_view cell) {
  const size_t pad = FindByte(cell, 0, kPadChar);
  return pad == std::string_view::npos ? cell : cell.substr(0, pad);
}

std::string BuildDelimitedBlob(const std::vector<std::string_view>& values) {
  std::string blob;
  size_t total = 0;
  for (std::string_view v : values) {
    total += v.size() + 1;
  }
  blob.reserve(total);
  for (std::string_view v : values) {
    assert(v.find('\n') == std::string_view::npos);
    blob.append(v.data(), v.size());
    blob.push_back('\n');
  }
  return blob;
}

std::vector<std::string_view> SplitDelimitedBlob(std::string_view blob) {
  std::vector<std::string_view> values;
  size_t start = 0;
  size_t pos = FindByte(blob, 0, '\n');
  while (pos != std::string_view::npos) {
    values.push_back(blob.substr(start, pos - start));
    start = pos + 1;
    pos = FindByte(blob, start, '\n');
  }
  // Producers always '\n'-terminate (BuildDelimitedBlob), but a truncated
  // Capsule can end mid-value; keep the trailing cell so every consumer
  // (splits, SearchDelimitedColumn) sees the same row count.
  if (start < blob.size()) {
    values.push_back(blob.substr(start));
  }
  return values;
}

}  // namespace loggrep
