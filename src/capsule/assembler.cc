#include "src/capsule/assembler.h"

#include <string_view>

#include "src/capsule/capsule.h"

namespace loggrep {
namespace {

std::string FixedWidthDecimal(uint32_t v, uint32_t width) {
  std::string s = std::to_string(v);
  if (s.size() < width) {
    s.insert(0, width - s.size(), '0');
  }
  return s;
}

uint32_t DecimalWidth(uint32_t max_value) {
  uint32_t w = 1;
  while (max_value >= 10) {
    max_value /= 10;
    ++w;
  }
  return w;
}

}  // namespace

uint32_t Assembler::AddColumn(const std::vector<std::string_view>& column,
                              uint32_t width) const {
  if (options_.padded) {
    return builder_->AddCapsule(BuildPaddedBlob(column, width));
  }
  return builder_->AddCapsule(BuildDelimitedBlob(column));
}

VarMeta Assembler::AssembleWhole(const std::vector<std::string>& values) const {
  WholeVarMeta wv;
  std::vector<std::string_view> views(values.begin(), values.end());
  wv.stamp = CapsuleStamp::Of(views);
  wv.capsule = AddColumn(views, wv.stamp.PadWidth());
  VarMeta var;
  var.repr = std::move(wv);
  return var;
}

VarMeta Assembler::AssembleReal(const std::vector<std::string>& values,
                                RuntimePattern pattern) const {
  const uint32_t num_subvars = pattern.SubVarCount();
  std::vector<std::vector<std::string_view>> columns(num_subvars);
  std::vector<std::string_view> outliers;
  std::vector<uint32_t> outlier_rows;
  for (uint32_t row = 0; row < values.size(); ++row) {
    auto subvalues = pattern.MatchValue(values[row]);
    if (!subvalues.has_value()) {
      outlier_rows.push_back(row);
      outliers.push_back(values[row]);
      continue;
    }
    for (uint32_t sv = 0; sv < num_subvars; ++sv) {
      columns[sv].push_back((*subvalues)[sv]);
    }
  }
  if (static_cast<double>(outliers.size()) >
      options_.max_outlier_fraction * static_cast<double>(values.size())) {
    return AssembleWhole(values);  // the sampled pattern generalizes poorly
  }

  RealVarMeta rv;
  rv.pattern = std::move(pattern);
  for (uint32_t sv = 0; sv < num_subvars; ++sv) {
    const CapsuleStamp stamp = CapsuleStamp::Of(columns[sv]);
    rv.subvar_stamps.push_back(stamp);
    rv.subvar_capsules.push_back(AddColumn(columns[sv], stamp.PadWidth()));
  }
  rv.outlier_rows = std::move(outlier_rows);
  if (!outliers.empty()) {
    rv.outlier_capsule = builder_->AddCapsule(BuildDelimitedBlob(outliers));
  }
  VarMeta var;
  var.repr = std::move(rv);
  return var;
}

VarMeta Assembler::AssembleNominal(const std::vector<std::string>& values) const {
  const MergeExtractor extractor;
  NominalExtraction ex = extractor.Extract(values);

  NominalVarMeta nv;
  // Dictionary sections: per pattern, values padded to the section width.
  std::string dict_blob;
  uint32_t dict_pos = 0;
  for (uint32_t p = 0; p < ex.patterns.size(); ++p) {
    NominalPatternMeta pm;
    pm.pattern = std::move(ex.patterns[p]);
    std::vector<std::string_view> section;
    while (dict_pos < ex.dictionary.size() && ex.pattern_of_dict[dict_pos] == p) {
      section.push_back(ex.dictionary[dict_pos]);
      ++dict_pos;
    }
    pm.count = static_cast<uint32_t>(section.size());
    pm.stamp = CapsuleStamp::Of(section);
    if (options_.padded) {
      dict_blob += BuildPaddedBlob(section, pm.stamp.PadWidth());
    } else {
      dict_blob += BuildDelimitedBlob(section);
    }
    nv.patterns.push_back(std::move(pm));
  }
  nv.dict_capsule = builder_->AddCapsule(dict_blob);

  // Index vector: fixed-width decimal entries ("IdxLen" digits).
  nv.index_width = DecimalWidth(
      ex.dictionary.empty() ? 0
                            : static_cast<uint32_t>(ex.dictionary.size() - 1));
  std::vector<std::string> index_text;
  index_text.reserve(ex.index.size());
  for (uint32_t idx : ex.index) {
    index_text.push_back(FixedWidthDecimal(idx, nv.index_width));
  }
  std::vector<std::string_view> index_views(index_text.begin(), index_text.end());
  nv.index_capsule = AddColumn(index_views, nv.index_width);

  VarMeta var;
  var.repr = std::move(nv);
  return var;
}

VarMeta Assembler::AssembleVariable(const std::vector<std::string>& values) const {
  if (options_.static_only) {
    return AssembleWhole(values);
  }
  const VectorClass cls = ClassifyVector(values, options_.dup_threshold);
  if (cls == VectorClass::kReal) {
    if (!options_.use_real) {
      return AssembleWhole(values);
    }
    const TreeExtractor extractor(options_.tree);
    RuntimePattern pattern = extractor.Extract(values);
    if (pattern.SubVarCount() == pattern.elements().size() &&
        pattern.SubVarCount() <= 1 && pattern.elements().size() <= 1) {
      return AssembleWhole(values);  // trivial pattern: no runtime structure
    }
    return AssembleReal(values, std::move(pattern));
  }
  if (!options_.use_nominal) {
    return AssembleWhole(values);
  }
  return AssembleNominal(values);
}

}  // namespace loggrep
