// Assembler (§4.2): decomposes one variable vector into Capsules according
// to its class and the extracted runtime pattern, stamps every Capsule, and
// registers the payloads with a CapsuleBoxBuilder.
//
// Paths:
//   * real vector  -> tree-expanding extraction -> one Capsule per
//     sub-variable (+ an outlier Capsule for values the pattern misses);
//   * nominal vector -> pattern merging -> dictionary + index Capsules;
//   * whole-vector storage (LogGrep-SP mode, disabled techniques, or vectors
//     with no usable runtime structure) -> a single stamped Capsule.
#ifndef SRC_CAPSULE_ASSEMBLER_H_
#define SRC_CAPSULE_ASSEMBLER_H_

#include <string>
#include <vector>

#include "src/capsule/capsule_box.h"
#include "src/pattern/merge_extractor.h"
#include "src/pattern/tree_extractor.h"

namespace loggrep {

struct AssemblerOptions {
  bool use_real = true;        // runtime patterns in real vectors (w/o real)
  bool use_nominal = true;     // runtime patterns in nominal vectors (w/o nomi)
  bool static_only = false;    // LogGrep-SP: whole-vector Capsules only
  bool padded = true;          // fixed-length padding (w/o fixed)
  double dup_threshold = 0.5;  // real/nominal split (§4.1)
  // A pattern missing more than this fraction of values is abandoned in
  // favor of whole-vector storage.
  double max_outlier_fraction = 0.5;
  TreeExtractorOptions tree;
};

class Assembler {
 public:
  Assembler(const AssemblerOptions& options, CapsuleBoxBuilder* builder)
      : options_(options), builder_(builder) {}

  VarMeta AssembleVariable(const std::vector<std::string>& values) const;

 private:
  VarMeta AssembleWhole(const std::vector<std::string>& values) const;
  VarMeta AssembleReal(const std::vector<std::string>& values,
                       RuntimePattern pattern) const;
  VarMeta AssembleNominal(const std::vector<std::string>& values) const;

  // Padded or delimited blob per options_.padded.
  uint32_t AddColumn(const std::vector<std::string_view>& column,
                     uint32_t width) const;

  AssemblerOptions options_;
  CapsuleBoxBuilder* builder_;
};

}  // namespace loggrep

#endif  // SRC_CAPSULE_ASSEMBLER_H_
