#include "src/capsule/capsule_box.h"

namespace loggrep {
namespace {

constexpr uint32_t kMagic = 0x4243474Cu;  // "LGCB" little-endian
constexpr uint8_t kVersion = 1;

constexpr uint8_t kVarReal = 0;
constexpr uint8_t kVarNominal = 1;
constexpr uint8_t kVarWhole = 2;

void WriteDeltaRows(ByteWriter& out, const std::vector<uint32_t>& rows) {
  out.PutVarint(rows.size());
  uint32_t prev = 0;
  for (uint32_t r : rows) {
    out.PutVarint(r - prev);
    prev = r;
  }
}

Result<std::vector<uint32_t>> ReadDeltaRows(ByteReader& in) {
  Result<uint64_t> n = in.ReadVarint();
  if (!n.ok()) {
    return n.status();
  }
  // The declared count cannot exceed the remaining stream bytes (every row
  // costs at least a one-byte varint), so a hostile 2^60 count is rejected
  // before the reserve instead of aborting in the allocator.
  if (*n > in.remaining()) {
    return CorruptData("capsule_box: row count exceeds stream size");
  }
  std::vector<uint32_t> rows;
  rows.reserve(static_cast<size_t>(*n));
  uint32_t prev = 0;
  for (uint64_t i = 0; i < *n; ++i) {
    Result<uint64_t> d = in.ReadVarint();
    if (!d.ok()) {
      return d.status();
    }
    prev += static_cast<uint32_t>(*d);
    rows.push_back(prev);
  }
  return rows;
}

// True iff `rows` is strictly increasing with every element < limit.
// (Delta decoding alone does not guarantee this: zero deltas produce
// duplicates and large deltas wrap uint32.)
bool StrictlyIncreasingBelow(const std::vector<uint32_t>& rows,
                             uint64_t limit) {
  uint64_t prev = 0;
  bool first = true;
  for (uint32_t r : rows) {
    if (r >= limit || (!first && r <= prev)) {
      return false;
    }
    prev = r;
    first = false;
  }
  return true;
}

// Valid capsule reference: a real directory entry or the "absent" sentinel.
bool ValidCapsuleRef(uint32_t id, size_t capsule_count) {
  return id == kNoCapsule || id < capsule_count;
}

// Varint fields that land in uint32 metadata slots. The encoder only ever
// writes 32-bit values, so anything wider is corruption — fail loudly
// instead of silently truncating to a wrong (small) number.
Result<uint32_t> CheckedU32(uint64_t v, const char* what) {
  if (v > 0xFFFFFFFFull) {
    return CorruptData(std::string("capsule_box: ") + what +
                       " exceeds 32-bit range");
  }
  return static_cast<uint32_t>(v);
}

// Referential-integrity validation of freshly parsed metadata. Everything
// the query path indexes with (template ids, capsule ids, sub-variable
// ordinals, row/line counts) is checked once here so the locator and
// reconstructor can stay branch-light; a box that passes Open never sends
// them out of bounds.
Status ValidateMeta(const CapsuleBoxMeta& meta, size_t capsule_count) {
  if (!CodecById(meta.codec_id).ok()) {
    return CorruptData("capsule_box: unknown codec id in metadata");
  }
  for (const GroupMeta& g : meta.groups) {
    if (g.template_id >= meta.templates.size()) {
      return CorruptData("capsule_box: group references missing template");
    }
    if (g.line_numbers.size() != g.row_count) {
      return CorruptData("capsule_box: line-number count != row count");
    }
    if (!StrictlyIncreasingBelow(g.line_numbers, meta.total_lines)) {
      return CorruptData("capsule_box: group line numbers not increasing");
    }
    const StaticPattern& tmpl = meta.templates[g.template_id];
    if (g.vars.size() != static_cast<size_t>(tmpl.VarCount())) {
      return CorruptData("capsule_box: var count != template slot count");
    }
    for (const VarMeta& v : g.vars) {
      if (v.is_real()) {
        const RealVarMeta& rv = v.real();
        if (!rv.pattern.WellFormed()) {
          return CorruptData("capsule_box: malformed runtime pattern");
        }
        if (rv.subvar_capsules.size() != rv.pattern.SubVarCount()) {
          return CorruptData(
              "capsule_box: sub-variable capsule count != pattern arity");
        }
        for (uint32_t cap : rv.subvar_capsules) {
          if (cap >= capsule_count) {
            return CorruptData("capsule_box: sub-variable capsule missing");
          }
        }
        if (!StrictlyIncreasingBelow(rv.outlier_rows, g.row_count)) {
          return CorruptData("capsule_box: outlier rows not increasing");
        }
        if (!ValidCapsuleRef(rv.outlier_capsule, capsule_count) ||
            (!rv.outlier_rows.empty() && rv.outlier_capsule == kNoCapsule)) {
          return CorruptData("capsule_box: bad outlier capsule reference");
        }
      } else if (v.is_nominal()) {
        const NominalVarMeta& nv = v.nominal();
        uint64_t dict_entries = 0;
        for (const NominalPatternMeta& p : nv.patterns) {
          if (!p.pattern.WellFormed()) {
            return CorruptData("capsule_box: malformed runtime pattern");
          }
          dict_entries += p.count;
        }
        // A dictionary cannot hold more distinct values than the group has
        // rows (prevents hostile counts from sizing huge scratch vectors).
        if (dict_entries > g.row_count) {
          return CorruptData("capsule_box: dictionary larger than group");
        }
        if (!ValidCapsuleRef(nv.dict_capsule, capsule_count) ||
            !ValidCapsuleRef(nv.index_capsule, capsule_count)) {
          return CorruptData("capsule_box: bad nominal capsule reference");
        }
        if (nv.index_width > 20) {  // a uint64 has at most 20 decimal digits
          return CorruptData("capsule_box: implausible index width");
        }
      } else {
        if (!ValidCapsuleRef(v.whole().capsule, capsule_count)) {
          return CorruptData("capsule_box: bad whole-vector capsule");
        }
      }
    }
  }
  if (!ValidCapsuleRef(meta.outlier_capsule, capsule_count) ||
      (!meta.outlier_line_numbers.empty() &&
       meta.outlier_capsule == kNoCapsule)) {
    return CorruptData("capsule_box: bad outlier capsule reference");
  }
  if (!StrictlyIncreasingBelow(meta.outlier_line_numbers, meta.total_lines)) {
    return CorruptData("capsule_box: outlier line numbers not increasing");
  }
  return OkStatus();
}

void WriteVarMeta(ByteWriter& out, const VarMeta& var) {
  if (var.is_real()) {
    const RealVarMeta& rv = var.real();
    out.PutU8(kVarReal);
    rv.pattern.WriteTo(out);
    out.PutVarint(rv.subvar_stamps.size());
    for (size_t i = 0; i < rv.subvar_stamps.size(); ++i) {
      rv.subvar_stamps[i].WriteTo(out);
      out.PutVarint(rv.subvar_capsules[i]);
    }
    WriteDeltaRows(out, rv.outlier_rows);
    out.PutU32(rv.outlier_capsule);
  } else if (var.is_nominal()) {
    const NominalVarMeta& nv = var.nominal();
    out.PutU8(kVarNominal);
    out.PutVarint(nv.patterns.size());
    for (const NominalPatternMeta& p : nv.patterns) {
      p.pattern.WriteTo(out);
      p.stamp.WriteTo(out);
      out.PutVarint(p.count);
    }
    out.PutU32(nv.dict_capsule);
    out.PutU32(nv.index_capsule);
    out.PutVarint(nv.index_width);
  } else {
    const WholeVarMeta& wv = var.whole();
    out.PutU8(kVarWhole);
    wv.stamp.WriteTo(out);
    out.PutU32(wv.capsule);
  }
}

Result<VarMeta> ReadVarMeta(ByteReader& in) {
  Result<uint8_t> kind = in.ReadU8();
  if (!kind.ok()) {
    return kind.status();
  }
  VarMeta var;
  switch (*kind) {
    case kVarReal: {
      RealVarMeta rv;
      Result<RuntimePattern> pattern = RuntimePattern::ReadFrom(in);
      if (!pattern.ok()) {
        return pattern.status();
      }
      rv.pattern = std::move(*pattern);
      Result<uint64_t> n = in.ReadVarint();
      if (!n.ok()) {
        return n.status();
      }
      for (uint64_t i = 0; i < *n; ++i) {
        Result<CapsuleStamp> stamp = CapsuleStamp::ReadFrom(in);
        if (!stamp.ok()) {
          return stamp.status();
        }
        rv.subvar_stamps.push_back(*stamp);
        Result<uint64_t> cap = in.ReadVarint();
        if (!cap.ok()) {
          return cap.status();
        }
        rv.subvar_capsules.push_back(static_cast<uint32_t>(*cap));
      }
      Result<std::vector<uint32_t>> outliers = ReadDeltaRows(in);
      if (!outliers.ok()) {
        return outliers.status();
      }
      rv.outlier_rows = std::move(*outliers);
      Result<uint32_t> ocap = in.ReadU32();
      if (!ocap.ok()) {
        return ocap.status();
      }
      rv.outlier_capsule = *ocap;
      var.repr = std::move(rv);
      return var;
    }
    case kVarNominal: {
      NominalVarMeta nv;
      Result<uint64_t> n = in.ReadVarint();
      if (!n.ok()) {
        return n.status();
      }
      for (uint64_t i = 0; i < *n; ++i) {
        NominalPatternMeta p;
        Result<RuntimePattern> pattern = RuntimePattern::ReadFrom(in);
        if (!pattern.ok()) {
          return pattern.status();
        }
        p.pattern = std::move(*pattern);
        Result<CapsuleStamp> stamp = CapsuleStamp::ReadFrom(in);
        if (!stamp.ok()) {
          return stamp.status();
        }
        p.stamp = *stamp;
        Result<uint64_t> count = in.ReadVarint();
        if (!count.ok()) {
          return count.status();
        }
        Result<uint32_t> count32 = CheckedU32(*count, "nominal section count");
        if (!count32.ok()) {
          return count32.status();
        }
        p.count = *count32;
        nv.patterns.push_back(std::move(p));
      }
      Result<uint32_t> dict = in.ReadU32();
      if (!dict.ok()) {
        return dict.status();
      }
      nv.dict_capsule = *dict;
      Result<uint32_t> index = in.ReadU32();
      if (!index.ok()) {
        return index.status();
      }
      nv.index_capsule = *index;
      Result<uint64_t> width = in.ReadVarint();
      if (!width.ok()) {
        return width.status();
      }
      Result<uint32_t> width32 = CheckedU32(*width, "nominal index width");
      if (!width32.ok()) {
        return width32.status();
      }
      nv.index_width = *width32;
      var.repr = std::move(nv);
      return var;
    }
    case kVarWhole: {
      WholeVarMeta wv;
      Result<CapsuleStamp> stamp = CapsuleStamp::ReadFrom(in);
      if (!stamp.ok()) {
        return stamp.status();
      }
      wv.stamp = *stamp;
      Result<uint32_t> cap = in.ReadU32();
      if (!cap.ok()) {
        return cap.status();
      }
      wv.capsule = *cap;
      var.repr = std::move(wv);
      return var;
    }
    default:
      return CorruptData("capsule_box: unknown variable encoding");
  }
}

}  // namespace

uint32_t CapsuleBoxBuilder::AddCapsule(std::string_view raw) {
  const std::string compressed = codec_.Compress(raw);
  const uint32_t id = static_cast<uint32_t>(directory_.size());
  directory_.emplace_back(payload_.size(), compressed.size());
  payload_ += compressed;
  return id;
}

std::string CapsuleBoxBuilder::Finish(const CapsuleBoxMeta& meta) && {
  ByteWriter mw;
  mw.PutU8(meta.codec_id);
  mw.PutU8(meta.padded ? 1 : 0);
  mw.PutVarint(meta.total_lines);
  mw.PutVarint(meta.templates.size());
  for (const StaticPattern& t : meta.templates) {
    t.WriteTo(mw);
  }
  mw.PutVarint(meta.groups.size());
  for (const GroupMeta& g : meta.groups) {
    mw.PutVarint(g.template_id);
    mw.PutVarint(g.row_count);
    WriteDeltaRows(mw, g.line_numbers);
    mw.PutVarint(g.vars.size());
    for (const VarMeta& v : g.vars) {
      WriteVarMeta(mw, v);
    }
  }
  mw.PutU32(meta.outlier_capsule);
  WriteDeltaRows(mw, meta.outlier_line_numbers);
  mw.PutVarint(directory_.size());
  for (const auto& [offset, length] : directory_) {
    mw.PutVarint(offset);
    mw.PutVarint(length);
  }

  ByteWriter out;
  out.PutU32(kMagic);
  out.PutU8(kVersion);
  out.PutLengthPrefixed(mw.data());
  out.PutBytes(payload_);
  return std::move(out).Take();
}

Result<CapsuleBox> CapsuleBox::Open(std::string_view bytes) {
  ByteReader in(bytes);
  Result<uint32_t> magic = in.ReadU32();
  if (!magic.ok()) {
    return magic.status();
  }
  if (*magic != kMagic) {
    return CorruptData("capsule_box: bad magic");
  }
  Result<uint8_t> version = in.ReadU8();
  if (!version.ok()) {
    return version.status();
  }
  if (*version != kVersion) {
    return CorruptData("capsule_box: unsupported version");
  }
  Result<std::string_view> meta_bytes = in.ReadLengthPrefixed();
  if (!meta_bytes.ok()) {
    return meta_bytes.status();
  }

  CapsuleBox box;
  ByteReader mr(*meta_bytes);
  Result<uint8_t> codec_id = mr.ReadU8();
  if (!codec_id.ok()) {
    return codec_id.status();
  }
  box.meta_.codec_id = *codec_id;
  Result<uint8_t> padded = mr.ReadU8();
  if (!padded.ok()) {
    return padded.status();
  }
  box.meta_.padded = (*padded != 0);
  Result<uint64_t> total = mr.ReadVarint();
  if (!total.ok()) {
    return total.status();
  }
  Result<uint32_t> total32 = CheckedU32(*total, "total line count");
  if (!total32.ok()) {
    return total32.status();
  }
  box.meta_.total_lines = *total32;

  Result<uint64_t> num_templates = mr.ReadVarint();
  if (!num_templates.ok()) {
    return num_templates.status();
  }
  for (uint64_t i = 0; i < *num_templates; ++i) {
    Result<StaticPattern> t = StaticPattern::ReadFrom(mr);
    if (!t.ok()) {
      return t.status();
    }
    box.meta_.templates.push_back(std::move(*t));
  }

  Result<uint64_t> num_groups = mr.ReadVarint();
  if (!num_groups.ok()) {
    return num_groups.status();
  }
  for (uint64_t i = 0; i < *num_groups; ++i) {
    GroupMeta g;
    Result<uint64_t> tid = mr.ReadVarint();
    if (!tid.ok()) {
      return tid.status();
    }
    g.template_id = static_cast<uint32_t>(*tid);
    Result<uint64_t> rows = mr.ReadVarint();
    if (!rows.ok()) {
      return rows.status();
    }
    Result<uint32_t> rows32 = CheckedU32(*rows, "group row count");
    if (!rows32.ok()) {
      return rows32.status();
    }
    g.row_count = *rows32;
    Result<std::vector<uint32_t>> line_numbers = ReadDeltaRows(mr);
    if (!line_numbers.ok()) {
      return line_numbers.status();
    }
    g.line_numbers = std::move(*line_numbers);
    Result<uint64_t> num_vars = mr.ReadVarint();
    if (!num_vars.ok()) {
      return num_vars.status();
    }
    for (uint64_t v = 0; v < *num_vars; ++v) {
      Result<VarMeta> var = ReadVarMeta(mr);
      if (!var.ok()) {
        return var.status();
      }
      g.vars.push_back(std::move(*var));
    }
    box.meta_.groups.push_back(std::move(g));
  }

  Result<uint32_t> outlier_cap = mr.ReadU32();
  if (!outlier_cap.ok()) {
    return outlier_cap.status();
  }
  box.meta_.outlier_capsule = *outlier_cap;
  Result<std::vector<uint32_t>> outlier_lines = ReadDeltaRows(mr);
  if (!outlier_lines.ok()) {
    return outlier_lines.status();
  }
  box.meta_.outlier_line_numbers = std::move(*outlier_lines);

  Result<uint64_t> num_capsules = mr.ReadVarint();
  if (!num_capsules.ok()) {
    return num_capsules.status();
  }
  for (uint64_t i = 0; i < *num_capsules; ++i) {
    Result<uint64_t> offset = mr.ReadVarint();
    if (!offset.ok()) {
      return offset.status();
    }
    Result<uint64_t> length = mr.ReadVarint();
    if (!length.ok()) {
      return length.status();
    }
    box.directory_.emplace_back(*offset, *length);
  }

  Result<std::string_view> payload = in.ReadBytes(in.remaining());
  if (!payload.ok()) {
    return payload.status();
  }
  box.payload_ = *payload;
  // Validate directory bounds once here so ReadCapsule stays cheap. The
  // two-step comparison is immune to the uint64 wrap a hostile
  // offset + length pair can produce (e.g. offset = 2^64 - 1, length = 2).
  for (const auto& [offset, length] : box.directory_) {
    if (length > box.payload_.size() ||
        offset > box.payload_.size() - length) {
      return CorruptData("capsule_box: directory entry out of bounds");
    }
  }
  // Referential integrity: everything the query path will index with must
  // be in range before the box is handed out.
  Status valid = ValidateMeta(box.meta_, box.directory_.size());
  if (!valid.ok()) {
    return valid;
  }
  return box;
}

Result<uint64_t> CapsuleBox::CapsuleCompressedSize(uint32_t id) const {
  if (id >= directory_.size()) {
    return NotFound("capsule_box: capsule id out of range");
  }
  return directory_[id].second;
}

Result<std::string> CapsuleBox::ReadCapsule(uint32_t id) const {
  if (id >= directory_.size()) {
    return NotFound("capsule_box: capsule id out of range");
  }
  const auto& [offset, length] = directory_[id];
  return DecompressAny(payload_.substr(offset, length));
}

}  // namespace loggrep
