// Capsule payload encodings.
//
// A Capsule is the unit of independent compression (§4.2). Its decompressed
// payload is one of two layouts:
//   * padded fixed-width column: `count` cells of `width` bytes, each value
//     left-aligned and '\0'-padded (the paper's fixed-length layout, §5.2);
//   * delimited column: values terminated by '\n' (outlier Capsules, and all
//     Capsules when fixed-length padding is disabled for the ablation study).
// Helpers here build and read both layouts; interpretation metadata (widths,
// section boundaries) lives in the CapsuleBox metadata.
#ifndef SRC_CAPSULE_CAPSULE_H_
#define SRC_CAPSULE_CAPSULE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace loggrep {

inline constexpr uint32_t kNoCapsule = 0xFFFFFFFFu;
inline constexpr char kPadChar = '\0';

// Builds a fixed-width blob; every value must satisfy size() <= width.
std::string BuildPaddedBlob(const std::vector<std::string_view>& values,
                            uint32_t width);

// Cell `row` of a padded blob (includes padding bytes). Never throws:
// out-of-range rows (a truncated or corrupt blob) yield an empty view, and a
// cell straddling the end of the blob is clipped to the bytes that exist.
inline std::string_view PaddedCell(std::string_view blob, uint32_t width,
                                   uint32_t row) {
  const size_t begin = static_cast<size_t>(row) * width;
  if (width == 0 || begin >= blob.size()) {
    return std::string_view();
  }
  return blob.substr(begin, width);
}

// The value inside a cell: the cell up to its first pad byte.
std::string_view TrimCell(std::string_view cell);

// '\n'-terminated concatenation.
std::string BuildDelimitedBlob(const std::vector<std::string_view>& values);

// Splits a delimited blob back into values.
std::vector<std::string_view> SplitDelimitedBlob(std::string_view blob);

}  // namespace loggrep

#endif  // SRC_CAPSULE_CAPSULE_H_
