// Capsule stamps (§4.3): the {six-bit type number, max length} summary
// attached to every Capsule. A keyword fragment can only occur inside a
// Capsule if its character classes are a subset of the stamp's mask and it is
// no longer than the stamp's max length; otherwise the Capsule is filtered
// without decompression (§5.1).
#ifndef SRC_CAPSULE_STAMP_H_
#define SRC_CAPSULE_STAMP_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/charclass.h"
#include "src/common/result.h"

namespace loggrep {

struct CapsuleStamp {
  TypeMask mask = 0;
  uint32_t max_len = 0;

  static CapsuleStamp Of(const std::vector<std::string_view>& values);
  void Absorb(std::string_view value);

  // The §5.1 check: K&C == K and |fragment| <= max_len.
  bool AdmitsFragment(std::string_view fragment) const {
    return fragment.size() <= max_len && MaskSubsumes(mask, TypeMaskOf(fragment));
  }

  // Cell width of the padded layout. All-empty columns still get 1-byte
  // cells so row count stays derivable from the blob size.
  uint32_t PadWidth() const { return max_len == 0 ? 1 : max_len; }

  std::string ToString() const;  // e.g. "typ=5,len=4"

  void WriteTo(ByteWriter& out) const;
  static Result<CapsuleStamp> ReadFrom(ByteReader& in);

  bool operator==(const CapsuleStamp&) const = default;
};

}  // namespace loggrep

#endif  // SRC_CAPSULE_STAMP_H_
