// Capsule stamps (§4.3): the {six-bit type number, max length} summary
// attached to every Capsule. A keyword fragment can only occur inside a
// Capsule if its character classes are a subset of the stamp's mask and it is
// no longer than the stamp's max length; otherwise the Capsule is filtered
// without decompression (§5.1).
#ifndef SRC_CAPSULE_STAMP_H_
#define SRC_CAPSULE_STAMP_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/charclass.h"
#include "src/common/result.h"

namespace loggrep {

// A keyword's side of the stamp check, precomputed once so that testing one
// keyword against many Capsule stamps (every sub-variable of every group, or
// every dictionary section of a nominal variable) batches down to two integer
// compares per stamp instead of re-classifying the keyword's characters.
struct StampProbe {
  TypeMask mask = 0;     // classes of the keyword's literal characters
  uint32_t min_len = 0;  // shortest possible expansion length
};

// Probe for a literal fragment (no wildcards).
StampProbe ProbeForFragment(std::string_view fragment);

// Wildcard-aware probe: '*' adds nothing, '?' consumes one character of
// unknown class, literals contribute their class.
StampProbe ProbeForKeyword(std::string_view keyword);

struct CapsuleStamp {
  TypeMask mask = 0;
  uint32_t max_len = 0;

  static CapsuleStamp Of(const std::vector<std::string_view>& values);
  void Absorb(std::string_view value);

  // The §5.1 check: K&C == K and |fragment| <= max_len.
  bool AdmitsFragment(std::string_view fragment) const {
    return AdmitsProbe(ProbeForFragment(fragment));
  }

  // The same check against a precomputed probe (the batched form).
  bool AdmitsProbe(const StampProbe& probe) const {
    return probe.min_len <= max_len && MaskSubsumes(mask, probe.mask);
  }

  // Cell width of the padded layout. All-empty columns still get 1-byte
  // cells so row count stays derivable from the blob size.
  uint32_t PadWidth() const { return max_len == 0 ? 1 : max_len; }

  std::string ToString() const;  // e.g. "typ=5,len=4"

  void WriteTo(ByteWriter& out) const;
  static Result<CapsuleStamp> ReadFrom(ByteReader& in);

  bool operator==(const CapsuleStamp&) const = default;
};

}  // namespace loggrep

#endif  // SRC_CAPSULE_STAMP_H_
